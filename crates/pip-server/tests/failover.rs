//! Replication failover integration tests: real `pip-serverd` processes
//! — one primary and followers over loopback TCP — killed hard (SIGKILL)
//! and promoted.
//!
//! The headline property mirrors the recovery suite's: every reply a
//! caught-up follower serves is **byte-identical** to the primary's
//! (rendered rows, variable identities, sampled f64s), and after killing
//! the primary and PROMOTE-ing a follower, no acknowledged-and-
//! replicated mutation is lost.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A line-protocol test client (mirrors `tests/recovery.rs`).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        };
        let banner = c.read_line();
        assert!(banner.starts_with("PIP server ready"), "{banner}");
        c
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    fn send(&mut self, cmd: &str) -> Vec<String> {
        self.writer
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("write");
        let first = self.read_line();
        let mut lines = vec![first.clone()];
        if first.starts_with("OK") && first.contains(" rows ") {
            loop {
                let line = self.read_line();
                let done = line == "END";
                lines.push(line);
                if done {
                    break;
                }
            }
        }
        lines
    }

    fn ok(&mut self, cmd: &str) -> Vec<String> {
        let reply = self.send(cmd);
        assert!(reply[0].starts_with("OK"), "{cmd} -> {reply:?}");
        reply
    }

    /// Pull one `key=value` integer out of the STATS line.
    fn stat(&mut self, key: &str) -> u64 {
        let line = &self.ok("STATS")[0];
        stat_field(line, key).unwrap_or_else(|| panic!("no {key}= in {line}"))
    }
}

fn stat_field(line: &str, key: &str) -> Option<u64> {
    let tail = line.split(&format!(" {key}=")).nth(1)?;
    tail.split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

struct Daemon {
    child: Child,
    addr: String,
    /// The replication listener's address (primaries only).
    repl_addr: Option<String>,
}

impl Daemon {
    fn spawn(data_dir: &std::path::Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pip-serverd"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pip-serverd");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout);
        // A replicating primary announces REPLICATING before LISTENING.
        let mut repl_addr = None;
        let addr = loop {
            let mut line = String::new();
            lines.read_line(&mut line).expect("read banner line");
            if let Some(a) = line.strip_prefix("REPLICATING ") {
                repl_addr = Some(a.trim().to_string());
            } else if let Some(a) = line.strip_prefix("LISTENING ") {
                break a.trim().to_string();
            } else {
                panic!("unexpected banner {line:?}");
            }
        };
        Daemon {
            child,
            addr,
            repl_addr,
        }
    }

    /// SIGKILL — no shutdown handling runs, exactly like a crash.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("wait");
    }
}

/// A panicking test must not leak its daemons.
impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pip-server-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Block until `follower`'s applied version reaches `version`.
fn wait_applied(follower: &mut Client, version: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if follower.stat("applied_version") >= version {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower never reached version {version}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The mixed workload: symbolic joins (fig6-style) plus deterministic
/// rows, written through the primary.
fn load_workload(c: &mut Client) {
    c.ok("QUERY CREATE TABLE orders (cust TEXT, ship_to TEXT, price SYMBOLIC)");
    c.ok("QUERY CREATE TABLE shipping (dest TEXT, duration SYMBOLIC)");
    c.ok("QUERY INSERT INTO shipping VALUES \
         ('NY', create_variable('Normal', 5, 2)), \
         ('LA', create_variable('Normal', 9, 2)), \
         ('SF', create_variable('Exponential', 0.2))");
    for i in 0..8 {
        let dest = ["NY", "LA", "SF"][i % 3];
        let mu = 50 + 10 * i;
        c.ok(&format!(
            "QUERY INSERT INTO orders VALUES \
             ('c{i}', '{dest}', create_variable('Normal', {mu}, 7))"
        ));
    }
}

/// The read side of the workload — sampling heads and plain scans —
/// returning every reply block for byte comparison. The session-local
/// `(fresh)`/`(cached)` marker is normalized away: whether a *session*
/// re-served its own result says nothing about cross-node identity.
fn run_queries(c: &mut Client) -> Vec<Vec<String>> {
    [
        "QUERY SELECT expected_sum(price) FROM orders, shipping \
         WHERE ship_to = dest AND duration >= 7",
        "QUERY SELECT ship_to, expected_avg(price) FROM orders GROUP BY ship_to",
        "QUERY SELECT conf() FROM orders, shipping WHERE ship_to = dest AND duration >= 7",
        "QUERY SELECT cust, price FROM orders WHERE ship_to = 'NY'",
    ]
    .iter()
    .map(|q| {
        let mut block = c.ok(q);
        block[0] = block[0].replace(" (cached)", "").replace(" (fresh)", "");
        block
    })
    .collect()
}

#[test]
fn two_followers_then_kill_primary_and_promote() {
    let (pd, f1d, f2d) = (tmp_dir("ha-p"), tmp_dir("ha-f1"), tmp_dir("ha-f2"));
    let primary = Daemon::spawn(&pd, &["--replication-addr", "127.0.0.1:0"]);
    let feed = primary.repl_addr.clone().expect("REPLICATING banner");
    let follower1 = Daemon::spawn(&f1d, &["--replicate-from", &feed]);
    let follower2 = Daemon::spawn(&f2d, &["--replicate-from", &feed]);

    let mut pc = Client::connect(&primary.addr);
    let mut f1 = Client::connect(&follower1.addr);
    let mut f2 = Client::connect(&follower2.addr);

    // Mixed workload lands on the primary while both followers tail it.
    load_workload(&mut pc);
    let version = pc.stat("version");
    assert!(pc.ok("STATS")[0].contains("role=primary"));
    // Follower registration (TCP connect + HELLO) races the workload —
    // wait for both to appear rather than asserting a point-in-time count.
    let deadline = Instant::now() + Duration::from_secs(30);
    while pc.stat("followers") < 2 {
        assert!(Instant::now() < deadline, "followers never registered");
        std::thread::sleep(Duration::from_millis(20));
    }
    wait_applied(&mut f1, version);
    wait_applied(&mut f2, version);

    // Every reply byte-identical across all three nodes, and the
    // followers advertise their role and staleness.
    let expect = run_queries(&mut pc);
    assert_eq!(expect, run_queries(&mut f1), "follower 1 diverges");
    assert_eq!(expect, run_queries(&mut f2), "follower 2 diverges");
    let stats = f1.ok("STATS");
    assert!(stats[0].contains("role=replica"), "{stats:?}");
    assert!(stats[0].contains("connected=true"), "{stats:?}");

    // Followers refuse writes and promotion is follower-only.
    let denied = f1.send("QUERY INSERT INTO orders VALUES ('x', 'NY', 1.0)");
    assert!(denied[0].starts_with("ERR"), "{denied:?}");
    assert!(denied[0].contains("read-only"), "{denied:?}");
    let denied = pc.send("PROMOTE");
    assert!(denied[0].starts_with("ERR"), "{denied:?}");

    // Kill the primary hard; follower 1 takes over.
    drop(pc);
    primary.kill();
    let promoted = f1.ok("PROMOTE");
    assert!(promoted[0].contains("role=primary"), "{promoted:?}");
    assert_eq!(
        stat_field(&promoted[0], "version"),
        Some(version),
        "promotion lost acknowledged mutations"
    );
    assert!(f1.ok("STATS")[0].contains("role=primary"));

    // The promoted node serves the exact pre-failover state, then
    // accepts writes.
    assert_eq!(expect, run_queries(&mut f1), "promoted node diverges");
    f1.ok("QUERY INSERT INTO orders VALUES ('post', 'LA', create_variable('Normal', 10, 1))");
    let grown = f1.ok("QUERY SELECT cust FROM orders");
    assert!(grown[0].starts_with("OK 9 rows"), "{grown:?}");

    // The un-promoted follower still serves (stale) reads.
    assert_eq!(expect, run_queries(&mut f2), "surviving follower diverges");
    drop(f1);
    drop(f2);
    follower1.kill();
    follower2.kill();
    for d in [&pd, &f1d, &f2d] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

/// Reserve a loopback port for a daemon that binds it later (the
/// promotable follower's `--replication-addr` must be known to its
/// peers before promotion happens).
fn free_port() -> String {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    format!("127.0.0.1:{}", l.local_addr().expect("addr").port())
}

/// Poll STATS until `line` satisfies `pred`.
fn wait_stats(c: &mut Client, what: &str, pred: impl Fn(&str) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let line = c.ok("STATS")[0].clone();
        if pred(&line) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {line}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sync_waits_quorum_and_wait_version_over_the_wire() {
    let (pd, fd) = (tmp_dir("sync-p"), tmp_dir("sync-f"));
    let primary = Daemon::spawn(&pd, &["--replication-addr", "127.0.0.1:0"]);
    let feed = primary.repl_addr.clone().expect("REPLICATING banner");
    let follower = Daemon::spawn(&fd, &["--replicate-from", &feed]);

    let mut pc = Client::connect(&primary.addr);
    let mut fc = Client::connect(&follower.addr);
    load_workload(&mut pc);
    wait_stats(&mut pc, "follower registration", |l| {
        stat_field(l, "followers") == Some(1)
    });

    // Synchronous mode on: the write's reply is withheld until the
    // follower ACKs the resulting version, so by the time OK arrives
    // the follower is guaranteed to hold the write.
    assert_eq!(pc.ok("SET REPLICATION WAIT 1")[0], "OK replication_wait=1");
    pc.ok("QUERY INSERT INTO orders VALUES ('sync', 'NY', 1.5)");
    let version = pc.stat("version");
    assert!(
        fc.stat("applied_version") >= version,
        "an acked WAIT-1 write must already be on the follower"
    );
    let stats = pc.ok("STATS")[0].clone();
    assert!(stats.contains(" wait=1"), "{stats}");
    assert!(stats.contains(" epoch=0"), "{stats}");
    assert!(
        stat_field(&stats, "acked_min") == Some(version),
        "acked_min should have caught the confirming ack: {stats}"
    );

    // Quorum mode: one follower means majority needs exactly one ack.
    assert_eq!(
        pc.ok("SET REPLICATION WAIT MAJORITY")[0],
        "OK replication_wait=majority"
    );
    pc.ok("QUERY INSERT INTO orders VALUES ('quorum', 'LA', 2.5)");
    assert!(pc.ok("STATS")[0].contains(" wait=majority"));

    // An unsatisfiable quorum degrades to ERR repl_timeout — and the
    // write itself still lands (locally and on the follower): only the
    // synchronous confirmation is lost, never the data.
    assert_eq!(
        pc.ok("SET REPLICATION TIMEOUT 250")[0],
        "OK replication_timeout_ms=250"
    );
    assert_eq!(pc.ok("SET REPLICATION WAIT 2")[0], "OK replication_wait=2");
    let v_before = pc.stat("version");
    // Pipeline a PING behind the doomed write: the reply order must be
    // preserved across the park (ERR first, PONG second), proving the
    // parked command neither blocks a worker nor loses its place.
    pc.writer
        .write_all(b"QUERY INSERT INTO orders VALUES ('late', 'SF', 3.5)\nPING\n")
        .expect("write");
    let err = pc.read_line();
    assert!(err.starts_with("ERR repl_timeout"), "{err}");
    assert!(err.contains("2 follower ack(s)"), "{err}");
    assert_eq!(pc.read_line(), "PONG");
    assert_eq!(pc.stat("version"), v_before + 1, "the write itself landed");
    wait_applied(&mut fc, v_before + 1);

    // Back to async: replies return immediately again.
    assert_eq!(pc.ok("SET REPLICATION WAIT 0")[0], "OK replication_wait=0");
    pc.ok("QUERY INSERT INTO orders VALUES ('async', 'NY', 4.5)");
    let version = pc.stat("version");

    // WAIT VERSION on the follower: read-your-writes routing. Already
    // applied -> immediate OK; a version still in flight parks until
    // the feed delivers it; an impossible version times out.
    wait_applied(&mut fc, version);
    let ok = fc.ok(&format!("WAIT VERSION {version}"));
    assert_eq!(stat_field(&ok[0], "version"), Some(version));
    fc.writer
        .write_all(format!("WAIT VERSION {}\n", version + 1).as_bytes())
        .expect("write");
    pc.ok("QUERY INSERT INTO orders VALUES ('rw', 'LA', 5.5)");
    let released = fc.read_line();
    assert!(released.starts_with("OK version="), "{released}");
    assert!(
        stat_field(&released, "version").expect("version field") > version,
        "{released}"
    );
    let timed_out = fc.send(&format!("WAIT VERSION {} 200", version + 999));
    assert!(
        timed_out[0].starts_with("ERR repl_timeout"),
        "{timed_out:?}"
    );

    drop(pc);
    drop(fc);
    follower.kill();
    primary.kill();
    for d in [&pd, &fd] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn promote_fences_deposed_primary_and_repoints_follower_across_processes() {
    let (ad, bd, cd) = (tmp_dir("fence-a"), tmp_dir("fence-b"), tmp_dir("fence-c"));
    let a = Daemon::spawn(&ad, &["--replication-addr", "127.0.0.1:0"]);
    let feed_a = a.repl_addr.clone().expect("REPLICATING banner");
    // B is promotable: it follows A, and on PROMOTE starts serving the
    // feed on a pre-agreed port that C already has in its candidate
    // list.
    let feed_b = free_port();
    let b = Daemon::spawn(
        &bd,
        &["--replicate-from", &feed_a, "--replication-addr", &feed_b],
    );
    let candidates = format!("{feed_a},{feed_b}");
    let c = Daemon::spawn(&cd, &["--replicate-from", &candidates]);

    let mut ac = Client::connect(&a.addr);
    let mut bc = Client::connect(&b.addr);
    let mut cc = Client::connect(&c.addr);
    load_workload(&mut ac);
    let version = ac.stat("version");
    wait_applied(&mut bc, version);
    wait_applied(&mut cc, version);

    // Failover without killing A — the live deposed-primary case.
    let promoted = bc.ok("PROMOTE");
    assert!(promoted[0].contains("role=primary"), "{promoted:?}");
    assert!(promoted[0].contains("epoch=1"), "{promoted:?}");

    // B's deposition notice fences A: read-only, writes answer
    // ERR fenced, STATS says so.
    wait_stats(&mut ac, "old primary fenced", |l| l.contains("fenced=true"));
    let denied = ac.send("QUERY INSERT INTO orders VALUES ('split', 'NY', 9.9)");
    assert!(denied[0].starts_with("ERR fenced"), "{denied:?}");
    let reads = ac.ok("QUERY SELECT cust FROM orders");
    assert!(
        reads[0].starts_with("OK"),
        "fenced != dead: reads still serve"
    );

    // C rotates off the fenced A and re-points to B on its own; B's
    // writes then flow to C under the new epoch.
    bc.ok("QUERY INSERT INTO orders VALUES ('after', 'LA', create_variable('Normal', 3, 1))");
    let grown = bc.stat("version");
    wait_applied(&mut cc, grown);
    wait_stats(&mut cc, "epoch adoption", |l| l.contains(" epoch=1"));
    assert_eq!(
        run_queries(&mut bc),
        run_queries(&mut cc),
        "re-pointed follower diverges from the promoted primary"
    );

    drop(ac);
    drop(bc);
    drop(cc);
    a.kill();
    b.kill();
    c.kill();
    for d in [&ad, &bd, &cd] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn primary_sigkill_flips_follower_connected_false() {
    let (pd, fd) = (tmp_dir("hb-p"), tmp_dir("hb-f"));
    let primary = Daemon::spawn(&pd, &["--replication-addr", "127.0.0.1:0"]);
    let feed = primary.repl_addr.clone().expect("REPLICATING banner");
    let follower = Daemon::spawn(&fd, &["--replicate-from", &feed]);

    let mut pc = Client::connect(&primary.addr);
    let mut fc = Client::connect(&follower.addr);
    load_workload(&mut pc);
    wait_applied(&mut fc, pc.stat("version"));
    wait_stats(&mut fc, "initial connection", |l| {
        l.contains("connected=true")
    });

    // SIGKILL the primary: within the heartbeat-loss horizon the
    // follower reports the loss and keeps serving reads.
    drop(pc);
    primary.kill();
    wait_stats(&mut fc, "heartbeat loss", |l| l.contains("connected=false"));
    let reads = fc.ok("QUERY SELECT cust FROM orders");
    assert!(reads[0].starts_with("OK"), "{reads:?}");

    drop(fc);
    follower.kill();
    for d in [&pd, &fd] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn follower_sigkilled_mid_catch_up_rejoins_cleanly() {
    let (pd, fd) = (tmp_dir("rejoin-p"), tmp_dir("rejoin-f"));
    let primary = Daemon::spawn(&pd, &["--replication-addr", "127.0.0.1:0"]);
    let feed = primary.repl_addr.clone().expect("REPLICATING banner");

    let mut pc = Client::connect(&primary.addr);
    load_workload(&mut pc);
    for i in 0..60 {
        pc.ok(&format!(
            "QUERY INSERT INTO orders VALUES ('k{i}', 'NY', {i}.5)"
        ));
    }

    // Attach a follower and SIGKILL it almost immediately — with ~70
    // frames to ship it dies at an arbitrary point of catch-up. Each
    // applied frame was durable before the next, so whatever prefix it
    // reached is what its data dir holds.
    let follower = Daemon::spawn(&fd, &["--replicate-from", &feed]);
    std::thread::sleep(Duration::from_millis(20));
    follower.kill();

    // More writes land while the follower is down.
    for i in 60..70 {
        pc.ok(&format!(
            "QUERY INSERT INTO orders VALUES ('k{i}', 'NY', {i}.5)"
        ));
    }
    let version = pc.stat("version");

    // Rejoin from the surviving prefix; it must converge byte-for-byte.
    let follower = Daemon::spawn(&fd, &["--replicate-from", &feed]);
    let mut fc = Client::connect(&follower.addr);
    wait_applied(&mut fc, version);
    let expect = run_queries(&mut pc);
    assert_eq!(expect, run_queries(&mut fc), "rejoined follower diverges");
    let count = fc.ok("QUERY SELECT cust FROM orders");
    assert!(count[0].starts_with("OK 78 rows"), "{count:?}");

    drop(pc);
    drop(fc);
    follower.kill();
    primary.kill();
    std::fs::remove_dir_all(&pd).unwrap();
    std::fs::remove_dir_all(&fd).unwrap();
}
