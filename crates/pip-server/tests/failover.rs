//! Replication failover integration tests: real `pip-serverd` processes
//! — one primary and followers over loopback TCP — killed hard (SIGKILL)
//! and promoted.
//!
//! The headline property mirrors the recovery suite's: every reply a
//! caught-up follower serves is **byte-identical** to the primary's
//! (rendered rows, variable identities, sampled f64s), and after killing
//! the primary and PROMOTE-ing a follower, no acknowledged-and-
//! replicated mutation is lost.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A line-protocol test client (mirrors `tests/recovery.rs`).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        };
        let banner = c.read_line();
        assert!(banner.starts_with("PIP server ready"), "{banner}");
        c
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    fn send(&mut self, cmd: &str) -> Vec<String> {
        self.writer
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("write");
        let first = self.read_line();
        let mut lines = vec![first.clone()];
        if first.starts_with("OK") && first.contains(" rows ") {
            loop {
                let line = self.read_line();
                let done = line == "END";
                lines.push(line);
                if done {
                    break;
                }
            }
        }
        lines
    }

    fn ok(&mut self, cmd: &str) -> Vec<String> {
        let reply = self.send(cmd);
        assert!(reply[0].starts_with("OK"), "{cmd} -> {reply:?}");
        reply
    }

    /// Pull one `key=value` integer out of the STATS line.
    fn stat(&mut self, key: &str) -> u64 {
        let line = &self.ok("STATS")[0];
        stat_field(line, key).unwrap_or_else(|| panic!("no {key}= in {line}"))
    }
}

fn stat_field(line: &str, key: &str) -> Option<u64> {
    let tail = line.split(&format!(" {key}=")).nth(1)?;
    tail.split(|c: char| !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

struct Daemon {
    child: Child,
    addr: String,
    /// The replication listener's address (primaries only).
    repl_addr: Option<String>,
}

impl Daemon {
    fn spawn(data_dir: &std::path::Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pip-serverd"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn pip-serverd");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = BufReader::new(stdout);
        // A replicating primary announces REPLICATING before LISTENING.
        let mut repl_addr = None;
        let addr = loop {
            let mut line = String::new();
            lines.read_line(&mut line).expect("read banner line");
            if let Some(a) = line.strip_prefix("REPLICATING ") {
                repl_addr = Some(a.trim().to_string());
            } else if let Some(a) = line.strip_prefix("LISTENING ") {
                break a.trim().to_string();
            } else {
                panic!("unexpected banner {line:?}");
            }
        };
        Daemon {
            child,
            addr,
            repl_addr,
        }
    }

    /// SIGKILL — no shutdown handling runs, exactly like a crash.
    fn kill(mut self) {
        self.child.kill().expect("kill");
        self.child.wait().expect("wait");
    }
}

/// A panicking test must not leak its daemons.
impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("pip-server-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Block until `follower`'s applied version reaches `version`.
fn wait_applied(follower: &mut Client, version: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if follower.stat("applied_version") >= version {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "follower never reached version {version}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The mixed workload: symbolic joins (fig6-style) plus deterministic
/// rows, written through the primary.
fn load_workload(c: &mut Client) {
    c.ok("QUERY CREATE TABLE orders (cust TEXT, ship_to TEXT, price SYMBOLIC)");
    c.ok("QUERY CREATE TABLE shipping (dest TEXT, duration SYMBOLIC)");
    c.ok("QUERY INSERT INTO shipping VALUES \
         ('NY', create_variable('Normal', 5, 2)), \
         ('LA', create_variable('Normal', 9, 2)), \
         ('SF', create_variable('Exponential', 0.2))");
    for i in 0..8 {
        let dest = ["NY", "LA", "SF"][i % 3];
        let mu = 50 + 10 * i;
        c.ok(&format!(
            "QUERY INSERT INTO orders VALUES \
             ('c{i}', '{dest}', create_variable('Normal', {mu}, 7))"
        ));
    }
}

/// The read side of the workload — sampling heads and plain scans —
/// returning every reply block for byte comparison. The session-local
/// `(fresh)`/`(cached)` marker is normalized away: whether a *session*
/// re-served its own result says nothing about cross-node identity.
fn run_queries(c: &mut Client) -> Vec<Vec<String>> {
    [
        "QUERY SELECT expected_sum(price) FROM orders, shipping \
         WHERE ship_to = dest AND duration >= 7",
        "QUERY SELECT ship_to, expected_avg(price) FROM orders GROUP BY ship_to",
        "QUERY SELECT conf() FROM orders, shipping WHERE ship_to = dest AND duration >= 7",
        "QUERY SELECT cust, price FROM orders WHERE ship_to = 'NY'",
    ]
    .iter()
    .map(|q| {
        let mut block = c.ok(q);
        block[0] = block[0].replace(" (cached)", "").replace(" (fresh)", "");
        block
    })
    .collect()
}

#[test]
fn two_followers_then_kill_primary_and_promote() {
    let (pd, f1d, f2d) = (tmp_dir("ha-p"), tmp_dir("ha-f1"), tmp_dir("ha-f2"));
    let primary = Daemon::spawn(&pd, &["--replication-addr", "127.0.0.1:0"]);
    let feed = primary.repl_addr.clone().expect("REPLICATING banner");
    let follower1 = Daemon::spawn(&f1d, &["--replicate-from", &feed]);
    let follower2 = Daemon::spawn(&f2d, &["--replicate-from", &feed]);

    let mut pc = Client::connect(&primary.addr);
    let mut f1 = Client::connect(&follower1.addr);
    let mut f2 = Client::connect(&follower2.addr);

    // Mixed workload lands on the primary while both followers tail it.
    load_workload(&mut pc);
    let version = pc.stat("version");
    assert!(pc.ok("STATS")[0].contains("role=primary"));
    // Follower registration (TCP connect + HELLO) races the workload —
    // wait for both to appear rather than asserting a point-in-time count.
    let deadline = Instant::now() + Duration::from_secs(30);
    while pc.stat("followers") < 2 {
        assert!(Instant::now() < deadline, "followers never registered");
        std::thread::sleep(Duration::from_millis(20));
    }
    wait_applied(&mut f1, version);
    wait_applied(&mut f2, version);

    // Every reply byte-identical across all three nodes, and the
    // followers advertise their role and staleness.
    let expect = run_queries(&mut pc);
    assert_eq!(expect, run_queries(&mut f1), "follower 1 diverges");
    assert_eq!(expect, run_queries(&mut f2), "follower 2 diverges");
    let stats = f1.ok("STATS");
    assert!(stats[0].contains("role=replica"), "{stats:?}");
    assert!(stats[0].contains("connected=true"), "{stats:?}");

    // Followers refuse writes and promotion is follower-only.
    let denied = f1.send("QUERY INSERT INTO orders VALUES ('x', 'NY', 1.0)");
    assert!(denied[0].starts_with("ERR"), "{denied:?}");
    assert!(denied[0].contains("read-only"), "{denied:?}");
    let denied = pc.send("PROMOTE");
    assert!(denied[0].starts_with("ERR"), "{denied:?}");

    // Kill the primary hard; follower 1 takes over.
    drop(pc);
    primary.kill();
    let promoted = f1.ok("PROMOTE");
    assert!(promoted[0].contains("role=primary"), "{promoted:?}");
    assert_eq!(
        stat_field(&promoted[0], "version"),
        Some(version),
        "promotion lost acknowledged mutations"
    );
    assert!(f1.ok("STATS")[0].contains("role=primary"));

    // The promoted node serves the exact pre-failover state, then
    // accepts writes.
    assert_eq!(expect, run_queries(&mut f1), "promoted node diverges");
    f1.ok("QUERY INSERT INTO orders VALUES ('post', 'LA', create_variable('Normal', 10, 1))");
    let grown = f1.ok("QUERY SELECT cust FROM orders");
    assert!(grown[0].starts_with("OK 9 rows"), "{grown:?}");

    // The un-promoted follower still serves (stale) reads.
    assert_eq!(expect, run_queries(&mut f2), "surviving follower diverges");
    drop(f1);
    drop(f2);
    follower1.kill();
    follower2.kill();
    for d in [&pd, &f1d, &f2d] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

#[test]
fn follower_sigkilled_mid_catch_up_rejoins_cleanly() {
    let (pd, fd) = (tmp_dir("rejoin-p"), tmp_dir("rejoin-f"));
    let primary = Daemon::spawn(&pd, &["--replication-addr", "127.0.0.1:0"]);
    let feed = primary.repl_addr.clone().expect("REPLICATING banner");

    let mut pc = Client::connect(&primary.addr);
    load_workload(&mut pc);
    for i in 0..60 {
        pc.ok(&format!(
            "QUERY INSERT INTO orders VALUES ('k{i}', 'NY', {i}.5)"
        ));
    }

    // Attach a follower and SIGKILL it almost immediately — with ~70
    // frames to ship it dies at an arbitrary point of catch-up. Each
    // applied frame was durable before the next, so whatever prefix it
    // reached is what its data dir holds.
    let follower = Daemon::spawn(&fd, &["--replicate-from", &feed]);
    std::thread::sleep(Duration::from_millis(20));
    follower.kill();

    // More writes land while the follower is down.
    for i in 60..70 {
        pc.ok(&format!(
            "QUERY INSERT INTO orders VALUES ('k{i}', 'NY', {i}.5)"
        ));
    }
    let version = pc.stat("version");

    // Rejoin from the surviving prefix; it must converge byte-for-byte.
    let follower = Daemon::spawn(&fd, &["--replicate-from", &feed]);
    let mut fc = Client::connect(&follower.addr);
    wait_applied(&mut fc, version);
    let expect = run_queries(&mut pc);
    assert_eq!(expect, run_queries(&mut fc), "rejoined follower diverges");
    let count = fc.ok("QUERY SELECT cust FROM orders");
    assert!(count[0].starts_with("OK 78 rows"), "{count:?}");

    drop(pc);
    drop(fc);
    follower.kill();
    primary.kill();
    std::fs::remove_dir_all(&pd).unwrap();
    std::fs::remove_dir_all(&fd).unwrap();
}
