//! End-to-end service tests: real TCP connections against a served
//! shared catalog — concurrent sessions, prepared statements, result
//! caching, thread-count determinism over the wire.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use pip_engine::Database;
use pip_sampling::SamplerConfig;
use pip_server::server::{serve, ServerOptions};

/// A line-protocol test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        };
        let banner = c.read_line();
        assert!(banner.starts_with("PIP server ready"), "{banner}");
        c
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    /// Send one command, collect the full reply (single line, or the
    /// `OK ... END` block for result sets).
    fn send(&mut self, cmd: &str) -> Vec<String> {
        self.writer
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("write");
        let first = self.read_line();
        let mut lines = vec![first.clone()];
        if first.starts_with("OK") && first.contains(" rows ") {
            loop {
                let line = self.read_line();
                let done = line == "END";
                lines.push(line);
                if done {
                    break;
                }
            }
        }
        lines
    }

    /// Scalar result of a 1×1 result set.
    fn scalar(&mut self, cmd: &str) -> f64 {
        let lines = self.send(cmd);
        assert!(lines[0].starts_with("OK 1 rows"), "{lines:?}");
        lines[2]
            .parse()
            .unwrap_or_else(|_| panic!("not a scalar: {lines:?}"))
    }
}

fn start_server() -> pip_server::ServerHandle {
    serve(
        Arc::new(Database::new()),
        "127.0.0.1:0",
        ServerOptions {
            default_config: SamplerConfig::default(),
            ..ServerOptions::default()
        },
    )
    .expect("bind server")
}

#[test]
fn query_lifecycle_over_tcp() {
    let server = start_server();
    let mut c = Client::connect(server.addr());

    assert_eq!(c.send("PING"), vec!["PONG"]);
    let r = c.send("QUERY CREATE TABLE orders (cust TEXT, price SYMBOLIC)");
    assert!(r[0].starts_with("OK"), "{r:?}");
    let r = c.send(
        "QUERY INSERT INTO orders VALUES \
         ('Joe', create_variable('Normal', 100, 10)), \
         ('Bob', create_variable('Normal', 50, 5))",
    );
    assert!(r[0].starts_with("OK"), "{r:?}");

    let v = c.scalar("QUERY SELECT expected_sum(price) FROM orders");
    assert!((v - 150.0).abs() < 1e-6, "{v}");

    // Unknown tables are an ERR line, and the connection survives.
    let r = c.send("QUERY SELECT * FROM ghost");
    assert!(r[0].starts_with("ERR"), "{r:?}");
    assert_eq!(c.send("PING"), vec!["PONG"]);

    let r = c.send("QUIT");
    assert_eq!(r, vec!["BYE"]);
}

#[test]
fn prepared_statements_and_cache_over_tcp() {
    let server = start_server();
    let mut c = Client::connect(server.addr());
    c.send("QUERY CREATE TABLE t (x SYMBOLIC)");
    c.send("QUERY INSERT INTO t VALUES (create_variable('Normal', 7, 2))");

    let r = c.send("PREPARE total AS SELECT expected_sum(x) FROM t");
    assert_eq!(r, vec!["OK prepared total"]);
    let first = c.send("EXEC total");
    assert!(first[0].contains("(fresh)"), "{first:?}");
    let second = c.send("EXEC total");
    assert!(second[0].contains("(cached)"), "{second:?}");
    assert_eq!(first[2], second[2], "cached result differs");

    // Mutation invalidates: catalog version is part of the cache key.
    c.send("QUERY INSERT INTO t VALUES (create_variable('Normal', 1, 1))");
    let third = c.send("EXEC total");
    assert!(third[0].contains("(fresh)"), "{third:?}");

    let stats = c.send("STATS");
    assert!(stats[0].contains("cache_hits=1"), "{stats:?}");

    let r = c.send("DEALLOCATE total");
    assert!(r[0].starts_with("OK"), "{r:?}");
    let r = c.send("EXEC total");
    assert!(r[0].starts_with("ERR"), "{r:?}");
}

#[test]
fn stream_and_explain_analyze_over_tcp() {
    let server = start_server();
    let mut c = Client::connect(server.addr());
    c.send("QUERY CREATE TABLE s (name TEXT, score FLOAT)");
    c.send("QUERY INSERT INTO s VALUES ('a', 3), ('b', 1), ('c', 2)");

    // STREAM: rows arrive between STREAM BEGIN and END <n> rows.
    c.writer
        .write_all(b"STREAM SELECT * FROM s ORDER BY score\n")
        .expect("write");
    assert_eq!(c.read_line(), "STREAM BEGIN");
    assert_eq!(c.read_line(), "name\tscore");
    assert_eq!(c.read_line(), "'b'\t1");
    assert_eq!(c.read_line(), "'c'\t2");
    assert_eq!(c.read_line(), "'a'\t3");
    assert_eq!(c.read_line(), "END 3 rows (fresh)");

    // A streamed result populates the shared result cache.
    let r = c.send("QUERY SELECT * FROM s ORDER BY score");
    assert!(r[0].starts_with("OK 3 rows (cached)"), "{r:?}");

    // Errors terminate the frame with ERR and keep the session alive.
    c.writer
        .write_all(b"STREAM SELECT * FROM ghost\n")
        .expect("write");
    assert!(c.read_line().starts_with("ERR"));
    assert_eq!(c.send("PING"), vec!["PONG"]);

    // EXPLAIN ANALYZE over the wire: per-operator rows and timings.
    let r = c.send("QUERY EXPLAIN ANALYZE SELECT expected_sum(score) FROM s WHERE score > 1");
    let text = r.join("\n");
    assert!(text.contains("physical plan (analyzed)"), "{text}");
    assert!(text.contains("rows="), "{text}");
    assert!(text.contains("Scan: s"), "{text}");
}

#[test]
fn sessions_share_catalog_and_isolate_settings() {
    let server = start_server();
    let mut a = Client::connect(server.addr());
    let mut b = Client::connect(server.addr());

    a.send("QUERY CREATE TABLE shared (v FLOAT)");
    a.send("QUERY INSERT INTO shared VALUES (2.5), (3.5)");
    // Session B sees A's DDL/DML through the shared catalog.
    let v = b.scalar("QUERY SELECT expected_sum(v) FROM shared");
    assert_eq!(v, 6.0);

    // SET is per-session: B's seed change must not leak into A.
    b.send("SET SEED 1234");
    let sa = a.send("STATS");
    let sb = b.send("STATS");
    assert!(sa[0].contains("seed=1364283729"), "{sa:?}"); // default 0x51515151
    assert!(sb[0].contains("seed=1234"), "{sb:?}");
    assert!(server.sessions_created() >= 2);
}

#[test]
fn thread_count_is_invisible_in_results() {
    let server = start_server();
    let mut c = Client::connect(server.addr());
    c.send("QUERY CREATE TABLE r (region TEXT, amount SYMBOLIC)");
    c.send(
        "QUERY INSERT INTO r VALUES \
         ('e', create_variable('Normal', 10, 3)), \
         ('e', create_variable('Normal', 20, 3)), \
         ('w', create_variable('Normal', 5, 1))",
    );
    let q = "QUERY SELECT region, expected_sum(amount), conf() FROM r \
             WHERE amount > 8 GROUP BY region";
    let serial = c.send(q);

    // Same query at 2/4/8 threads: the result cache is deliberately
    // keyed without the thread count, so equality here exercises both
    // the cache and (below, after clearing via seed round-trip) the
    // parallel runtime itself.
    for threads in [2, 4, 8] {
        c.send(&format!("SET THREADS {threads}"));
        let par = c.send(q);
        assert_eq!(par[1..], serial[1..], "threads={threads} diverged");
    }

    // Force re-execution through a fresh session (empty result cache)
    // at 4 threads: rows must be recomputed by the parallel runtime and
    // still match bit-for-bit.
    let mut fresh = Client::connect(server.addr());
    fresh.send("SET THREADS 4");
    let recomputed = fresh.send(q);
    assert!(recomputed[0].contains("(fresh)"), "{recomputed:?}");
    assert_eq!(recomputed[1..], serial[1..], "parallel recompute diverged");
}

#[test]
fn oversized_request_is_rejected_not_buffered() {
    let server = start_server();
    let mut c = Client::connect(server.addr());
    // 2 MiB of garbage on one line (cap is 1 MiB): the server must
    // answer with an ERR instead of buffering it, and the connection
    // must stay usable for the pipelined next request.
    let mut big = String::with_capacity(2 << 20);
    big.push_str("QUERY ");
    while big.len() < (2 << 20) {
        big.push_str("xxxxxxxxxxxxxxxx");
    }
    big.push('\n');
    big.push_str("PING\n");
    c.writer.write_all(big.as_bytes()).expect("send oversized");
    let first = c.read_line();
    assert!(
        first.starts_with("ERR request exceeds"),
        "expected oversize rejection, got: {first}"
    );
    assert_eq!(c.read_line(), "PONG", "pipelined request after oversize");
}

#[test]
fn shutdown_closes_established_connections() {
    let server = start_server();
    let mut c = Client::connect(server.addr());
    assert_eq!(c.send("PING"), vec!["PONG"]);
    // Shutdown must terminate this idle connection (blocked in read),
    // not just the accept loop: the client then observes EOF.
    server.shutdown();
    let mut line = String::new();
    let n = c.reader.read_line(&mut line).expect("read after shutdown");
    assert_eq!(n, 0, "expected EOF after shutdown, got: {line:?}");
}

#[test]
fn concurrent_clients_hammer_one_catalog() {
    let server = start_server();
    let mut setup = Client::connect(server.addr());
    setup.send("QUERY CREATE TABLE t (x SYMBOLIC)");
    setup.send("QUERY INSERT INTO t VALUES (create_variable('Normal', 42, 4))");

    let addr = server.addr();
    let answers: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                s.spawn(move || {
                    let mut c = Client::connect(addr);
                    c.send(&format!("SET THREADS {}", 1 + (i % 3)));
                    c.scalar("QUERY SELECT expected_sum(x) FROM t")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    for v in &answers {
        assert_eq!(*v, answers[0], "concurrent sessions disagreed: {answers:?}");
        assert!((v - 42.0).abs() < 1e-9);
    }
    server.shutdown();
}
