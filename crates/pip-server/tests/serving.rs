//! Serving-core tests for the nonblocking reactor + scheduler:
//! pipelined/partial-line request decoding, admission control and
//! recovery, cross-session work dedup, slow readers, drain-on-shutdown,
//! and the load-bearing property that concurrent interleaved sessions
//! produce byte-identical replies to the same statements run serially.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pip_engine::Database;
use pip_sampling::SamplerConfig;
use pip_server::server::{serve, ServerOptions};
use pip_server::SessionManager;

/// A line-protocol test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        };
        let banner = c.read_line();
        assert!(banner.starts_with("PIP server ready"), "{banner}");
        c
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        line.trim_end().to_string()
    }

    /// Read one full reply: a single line, or the `OK ... END` block
    /// for result sets. Returned with original line framing so serial
    /// and concurrent transcripts compare byte-for-byte.
    fn read_reply(&mut self) -> String {
        let first = self.read_line();
        let mut text = format!("{first}\n");
        if first.starts_with("OK") && first.contains(" rows ") {
            loop {
                let line = self.read_line();
                text.push_str(&line);
                text.push('\n');
                if line == "END" {
                    break;
                }
            }
        }
        text
    }

    fn send(&mut self, cmd: &str) -> String {
        self.writer
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("write");
        self.read_reply()
    }
}

fn start_server(options: ServerOptions) -> pip_server::ServerHandle {
    serve(Arc::new(Database::new()), "127.0.0.1:0", options).expect("bind server")
}

fn setup_catalog(c: &mut Client) {
    let r = c.send("QUERY CREATE TABLE t (g TEXT, x SYMBOLIC)");
    assert!(r.starts_with("OK"), "{r}");
    let r = c.send(
        "QUERY INSERT INTO t VALUES \
         ('a', create_variable('Normal', 10, 2)), \
         ('b', create_variable('Normal', 20, 3)), \
         ('a', create_variable('Uniform', 0, 5))",
    );
    assert!(r.starts_with("OK"), "{r}");
}

const GROUPED: &str = "QUERY SELECT g, expected_sum(x), conf() FROM t WHERE x > 8 GROUP BY g";

// ---------------------------------------------------------------------
// Pipelined / partial-line decoding.
// ---------------------------------------------------------------------

#[test]
fn requests_split_across_arbitrary_read_boundaries() {
    let server = start_server(ServerOptions::default());
    let mut setup = Client::connect(server.addr());
    setup_catalog(&mut setup);
    let reference = setup.send(GROUPED);
    assert!(reference.starts_with("OK"), "{reference}");

    let packet = format!("PING\n{GROUPED}\nSET SEED 77\nPING\n");
    for chunk in [1usize, 2, 3, 7, 16] {
        let mut c = Client::connect(server.addr());
        // Dribble the pipeline in `chunk`-byte writes: the decoder must
        // reassemble requests across any read boundary.
        for piece in packet.as_bytes().chunks(chunk) {
            c.writer.write_all(piece).expect("write chunk");
            c.writer.flush().expect("flush");
            if chunk < 3 {
                std::thread::yield_now();
            }
        }
        assert_eq!(c.read_reply(), "PONG\n", "chunk={chunk}");
        assert_eq!(c.read_reply(), reference, "chunk={chunk}");
        assert_eq!(c.read_reply(), "OK seed=77\n", "chunk={chunk}");
        assert_eq!(c.read_reply(), "PONG\n", "chunk={chunk}");
    }
}

#[test]
fn many_requests_in_one_packet_reply_in_order() {
    let server = start_server(ServerOptions::default());
    let mut c = Client::connect(server.addr());
    // 40 SET/STATS pairs in ONE write: every STATS must observe exactly
    // the seed set immediately before it — strict FIFO execution.
    let mut packet = String::new();
    for i in 0..40 {
        packet.push_str(&format!("SET SEED {i}\nSTATS\n"));
    }
    c.writer.write_all(packet.as_bytes()).expect("write");
    for i in 0..40 {
        assert_eq!(c.read_reply(), format!("OK seed={i}\n"));
        let stats = c.read_reply();
        assert!(stats.contains(&format!(" seed={i} ")), "i={i}: {stats}");
    }
}

#[test]
fn pipeline_cap_applies_backpressure_without_losing_requests() {
    let server = start_server(ServerOptions {
        max_pipeline: 4,
        ..ServerOptions::default()
    });
    let mut c = Client::connect(server.addr());
    // Far more pipelined requests than the per-connection cap: reads
    // pause and resume under the hood; every request still answers, in
    // order.
    let n = 500;
    let writer = c.writer.try_clone().expect("clone");
    let sender = std::thread::spawn(move || {
        let mut w = writer;
        for i in 0..n {
            w.write_all(format!("SET SEED {i}\n").as_bytes())
                .expect("write");
        }
    });
    for i in 0..n {
        assert_eq!(c.read_reply(), format!("OK seed={i}\n"));
    }
    sender.join().expect("sender");
}

// ---------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------

#[test]
fn admission_control_rejects_past_capacity_and_recovers() {
    let server = start_server(ServerOptions {
        queue_capacity: 1,
        workers: 1,
        ..ServerOptions::default()
    });
    let mut c = Client::connect(server.addr());
    setup_catalog(&mut c);

    // One packet: a slow query plus two more behind it. All three parse
    // before the first finishes, so with capacity 1 the trailing two
    // must bounce off admission — as clean ERR replies in FIFO order,
    // with the cheap PING behind them unaffected.
    let packet = format!("SET SAMPLES 200000\n{GROUPED}\n{GROUPED}\n{GROUPED}\nPING\n");
    c.writer.write_all(packet.as_bytes()).expect("write");
    assert_eq!(c.read_reply(), "OK samples=200000\n");
    let first = c.read_reply();
    assert!(
        first.starts_with("OK") && first.ends_with("END\n"),
        "{first}"
    );
    for _ in 0..2 {
        let busy = c.read_reply();
        assert!(busy.starts_with("ERR busy"), "{busy}");
    }
    assert_eq!(c.read_reply(), "PONG\n");

    // Capacity freed: the same query is admitted again (cached now —
    // the session result cache kept the first execution).
    let again = c.send(GROUPED);
    assert!(again.starts_with("OK"), "{again}");

    let stats = c.send("STATS");
    assert!(stats.contains(" rejected=2"), "{stats}");
    assert!(stats.contains(" capacity=1"), "{stats}");
    let s = server.serving();
    assert!(s.admitted >= 2, "{s:?}");
    assert_eq!(s.rejected, 2, "{s:?}");
    assert_eq!((s.queued, s.inflight), (0, 0), "drained: {s:?}");
}

#[test]
fn admission_flood_stays_bounded_and_recovers() {
    let server = start_server(ServerOptions {
        queue_capacity: 2,
        workers: 2,
        ..ServerOptions::default()
    });
    let mut setup = Client::connect(server.addr());
    setup_catalog(&mut setup);
    // The setup statements above were admitted queries too: measure the
    // flood as a delta.
    let before = server.serving();

    let addr = server.addr();
    let replies: Vec<String> = std::thread::scope(|s| {
        let barrier = Arc::new(Barrier::new(6));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    let mut c = Client::connect(addr);
                    let r = c.send("SET SAMPLES 100000");
                    assert!(r.starts_with("OK"), "{r}");
                    barrier.wait();
                    c.send(GROUPED)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("conn"))
            .collect()
    });
    // Every request answers promptly and cleanly — admitted or busy,
    // never hung, never garbled.
    let ok = replies.iter().filter(|r| r.starts_with("OK")).count();
    let busy = replies.iter().filter(|r| r.starts_with("ERR busy")).count();
    assert_eq!(ok + busy, 6, "{replies:?}");
    assert!(ok >= 1, "{replies:?}");
    let s = server.serving();
    assert_eq!(
        (s.admitted - before.admitted) + (s.rejected - before.rejected),
        6,
        "{s:?}"
    );
    assert_eq!((s.queued, s.inflight), (0, 0), "drained: {s:?}");
    // Recovery: with the flood done, a new query is admitted.
    let mut c = Client::connect(addr);
    let r = c.send(GROUPED);
    assert!(r.starts_with("OK"), "{r}");
}

// ---------------------------------------------------------------------
// Cross-session work dedup.
// ---------------------------------------------------------------------

#[test]
fn identical_concurrent_queries_share_one_execution() {
    let server = start_server(ServerOptions {
        workers: 4,
        ..ServerOptions::default()
    });
    let mut setup = Client::connect(server.addr());
    setup_catalog(&mut setup);
    let addr = server.addr();

    // Two sessions submit the same (statement, seed, samples) at once.
    // Determinism makes sharing invisible in the replies; the batched
    // counter proves an execution was actually shared. The overlap is
    // timing-dependent, so retry with fresh seeds until observed.
    let mut observed_batched = false;
    for attempt in 0..10 {
        let seed = 1000 + attempt;
        let pair: Vec<String> = std::thread::scope(|s| {
            let barrier = Arc::new(Barrier::new(2));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    s.spawn(move || {
                        let mut c = Client::connect(addr);
                        c.send(&format!("SET SEED {seed}"));
                        c.send("SET SAMPLES 150000");
                        barrier.wait();
                        c.send(GROUPED)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("conn"))
                .collect()
        });
        assert!(pair[0].starts_with("OK"), "{pair:?}");
        assert_eq!(pair[0], pair[1], "shared execution changed the bytes");
        if server.serving().batched >= 1 {
            observed_batched = true;
            break;
        }
    }
    assert!(observed_batched, "no overlap observed in 10 attempts");
    let stats = Client::connect(addr).send("STATS");
    assert!(stats.contains(" batched="), "{stats}");
}

// ---------------------------------------------------------------------
// Slow readers.
// ---------------------------------------------------------------------

#[test]
fn slow_reader_stalls_only_itself() {
    let server = start_server(ServerOptions {
        workers: 2,
        // Small staging buffer so the big stream actually saturates it
        // (worker blocks on the reader) instead of buffering whole.
        max_outbound_bytes: 16 * 1024,
        ..ServerOptions::default()
    });
    let mut setup = Client::connect(server.addr());
    let r = setup.send("QUERY CREATE TABLE big (s TEXT)");
    assert!(r.starts_with("OK"), "{r}");
    let cell = "x".repeat(300);
    for _ in 0..10 {
        let rows: Vec<String> = (0..30).map(|_| format!("('{cell}')")).collect();
        let r = setup.send(&format!("QUERY INSERT INTO big VALUES {}", rows.join(", ")));
        assert!(r.starts_with("OK"), "{r}");
    }

    // The slow reader asks for ~100 KB and then... reads nothing.
    let mut slow = Client::connect(server.addr());
    slow.writer
        .write_all(b"STREAM SELECT * FROM big\n")
        .expect("write");
    std::thread::sleep(Duration::from_millis(100)); // let it saturate

    // Other sessions must stay snappy throughout.
    let mut other = Client::connect(server.addr());
    let start = Instant::now();
    for _ in 0..20 {
        assert_eq!(other.send("PING"), "PONG\n");
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "slow reader stalled a healthy session: {:?}",
        start.elapsed()
    );

    // The slow reader eventually drains its complete, uncorrupted frame.
    assert_eq!(slow.read_line(), "STREAM BEGIN");
    assert_eq!(slow.read_line(), "s");
    for _ in 0..300 {
        assert_eq!(slow.read_line(), format!("'{cell}'"));
    }
    assert_eq!(slow.read_line(), "END 300 rows (fresh)");
    assert_eq!(slow.send("PING"), "PONG\n");
    // This reader was slow, not stuck: it must not count as an eviction.
    assert_eq!(server.serving().evictions, 0);
}

#[test]
fn stuck_reader_is_evicted_and_counted() {
    let server = start_server(ServerOptions {
        workers: 2,
        max_outbound_bytes: 16 * 1024,
        // A test-sized stall budget (the production default is 30s).
        write_stall_timeout: Duration::from_millis(200),
        ..ServerOptions::default()
    });
    let mut setup = Client::connect(server.addr());
    let r = setup.send("QUERY CREATE TABLE big (s TEXT)");
    assert!(r.starts_with("OK"), "{r}");
    // ~6 MB of reply: enough to overwhelm the 16 KB staging buffer AND
    // whatever the kernel's socket buffers will absorb on loopback, so
    // the producing worker really does block on the reader.
    let cell = "x".repeat(10_000);
    for _ in 0..20 {
        let rows: Vec<String> = (0..30).map(|_| format!("('{cell}')")).collect();
        let r = setup.send(&format!("QUERY INSERT INTO big VALUES {}", rows.join(", ")));
        assert!(r.starts_with("OK"), "{r}");
    }
    assert_eq!(server.serving().evictions, 0);

    // Ask for ~6 MB into a 16 KB staging buffer and never read a byte:
    // the producing worker blocks, the stall deadline passes, and the
    // connection is evicted (visible as the counter firing and the
    // socket dying) instead of pinning the worker forever.
    let stuck = Client::connect(server.addr());
    (&stuck.writer)
        .write_all(b"STREAM SELECT * FROM big\n")
        .expect("write");
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.serving().evictions == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.serving().evictions, 1, "stuck reader not evicted");

    // The fleet recovered: other sessions keep being served.
    let mut other = Client::connect(server.addr());
    assert_eq!(other.send("PING"), "PONG\n");
}

#[test]
fn oversized_request_lines_are_killed_and_counted() {
    let server = start_server(ServerOptions::default());
    let mut c = Client::connect(server.addr());
    assert_eq!(server.serving().oversize, 0);

    // One request line over the 1 MiB cap: discarded as it streams in,
    // answered with a single ERR, counted once — and the connection
    // stays usable for the next request.
    let mut line = vec![b'P'; pip_server::server::MAX_REQUEST_BYTES + 1024];
    line.push(b'\n');
    c.writer.write_all(&line).expect("write oversized");
    let reply = c.read_reply();
    assert!(reply.starts_with("ERR request exceeds"), "{reply}");
    assert_eq!(server.serving().oversize, 1);
    assert_eq!(c.send("PING"), "PONG\n");

    // A second oversized line on a fresh connection counts again.
    let mut c2 = Client::connect(server.addr());
    c2.writer.write_all(&line).expect("write oversized");
    let reply = c2.read_reply();
    assert!(reply.starts_with("ERR request exceeds"), "{reply}");
    assert_eq!(server.serving().oversize, 2);
}

// ---------------------------------------------------------------------
// Shutdown / drain.
// ---------------------------------------------------------------------

/// Regression: a graceful close (QUIT or client EOF) must always reap
/// the connection. The worker used to notify the reactor *before*
/// clearing the `running` flag on its final slice; if the reactor
/// processed that notification inside the window it saw "closing but
/// still running", skipped the reap, and — with no further wakeups
/// coming — leaked the connection (socket stuck in CLOSE-WAIT) forever.
#[test]
fn graceful_closes_always_reap_the_connection() {
    let server = start_server(ServerOptions::default());
    for round in 0..150 {
        if round % 2 == 0 {
            // QUIT path.
            let mut c = Client::connect(server.addr());
            assert_eq!(c.send("QUIT"), "BYE\n");
            let mut rest = String::new();
            c.reader.read_line(&mut rest).expect("eof");
            assert!(rest.is_empty(), "socket must close after BYE: {rest:?}");
        } else {
            // Client-EOF path, with a request racing the close so the
            // final slice and the reactor's event land close together.
            let mut c = Client::connect(server.addr());
            c.writer.write_all(b"PING\n").expect("write");
            c.writer
                .shutdown(std::net::Shutdown::Write)
                .expect("half-close");
            assert_eq!(c.read_reply(), "PONG\n");
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.active_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        server.active_connections(),
        0,
        "every gracefully-closed connection must be reaped"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_inflight_replies_before_closing() {
    let server = start_server(ServerOptions::default());
    let mut c = Client::connect(server.addr());
    setup_catalog(&mut c);
    c.writer
        .write_all(format!("SET SAMPLES 200000\n{GROUPED}\n").as_bytes())
        .expect("write");

    let reader = std::thread::spawn(move || {
        let ack = c.read_reply();
        assert_eq!(ack, "OK samples=200000\n");
        let reply = c.read_reply();
        // After the drained reply, the server closes: clean EOF.
        let mut line = String::new();
        let n = c.reader.read_line(&mut line).expect("read after drain");
        (reply, n)
    });
    // Let the query get parsed (and likely start executing), then pull
    // the plug mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    server.shutdown();
    let (reply, eof) = reader.join().expect("reader");
    assert!(
        reply.starts_with("OK") && reply.ends_with("END\n"),
        "truncated reply across shutdown: {reply:?}"
    );
    assert_eq!(eof, 0, "expected EOF after drained shutdown");
}

// ---------------------------------------------------------------------
// Concurrent sessions vs. serial replay: byte identity.
// ---------------------------------------------------------------------

/// Build client `k`'s command script from the proptest choice vector.
/// Read-only after setup (the catalog version must stay fixed so
/// fresh/cached labels replay identically), across 1/2/4 sampling
/// threads.
fn client_script(k: usize, choices: &[usize]) -> Vec<String> {
    let mut script = vec![format!("SET THREADS {}", [1, 2, 4][k % 3])];
    let per_client = choices.len() / 3;
    for j in 0..per_client {
        let c = choices[(k * per_client + j) % choices.len()];
        script.push(match c % 6 {
            0 => format!("SET SEED {}", 100 + c % 5),
            1 => format!("SET SAMPLES {}", 500 + (c % 3) * 250),
            2 => GROUPED.to_string(),
            3 => "QUERY SELECT expected_sum(x) FROM t".to_string(),
            4 => "PREPARE p AS SELECT expected_sum(x) FROM t WHERE x > 5".to_string(),
            // ERR (not prepared) until a PREPARE lands — identically in
            // both runs.
            _ => "EXEC p".to_string(),
        });
    }
    script
}

const SETUP: [&str; 2] = [
    "QUERY CREATE TABLE t (g TEXT, x SYMBOLIC)",
    "QUERY INSERT INTO t VALUES \
     ('a', create_variable('Normal', 10, 2)), \
     ('b', create_variable('Normal', 20, 3)), \
     ('a', create_variable('Uniform', 0, 5))",
];

mod concurrent_equivalence {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Interleaved QUERY/EXEC streams from many concurrent clients
        /// produce byte-identical replies to the same per-client
        /// statement scripts run serially in embedded sessions — at
        /// mixed 1/2/4 sampling threads, through admission, scheduling
        /// and cross-session dedup.
        #[test]
        fn concurrent_sessions_match_serial_replies(
            choices in prop::collection::vec(0usize..10_000, 9..18),
            nclients in 2usize..5,
        ) {
            // Serial reference: same catalog content, embedded sessions,
            // one client script after another.
            let serial_db = Arc::new(Database::new());
            let mgr = SessionManager::new(Arc::clone(&serial_db), SamplerConfig::default());
            {
                let mut s = mgr.open();
                for stmt in SETUP {
                    let line = stmt.strip_prefix("QUERY ").unwrap();
                    s.query(line).expect("setup");
                }
            }
            let mut serial: Vec<Vec<String>> = Vec::new();
            for k in 0..nclients {
                let mut session = mgr.open();
                serial.push(
                    client_script(k, &choices)
                        .iter()
                        .map(|cmd| pip_server::handle_line(&mut session, cmd).text)
                        .collect(),
                );
            }

            // Concurrent run over TCP against the reactor.
            let server = start_server(ServerOptions::default());
            let mut setup = Client::connect(server.addr());
            for stmt in SETUP {
                let r = setup.send(stmt);
                prop_assert!(r.starts_with("OK"), "{}", r);
            }
            let addr = server.addr();
            let concurrent: Vec<Vec<String>> = std::thread::scope(|s| {
                let barrier = Arc::new(Barrier::new(nclients));
                let choices = &choices;
                let handles: Vec<_> = (0..nclients)
                    .map(|k| {
                        let barrier = Arc::clone(&barrier);
                        s.spawn(move || {
                            let mut c = Client::connect(addr);
                            barrier.wait();
                            client_script(k, choices)
                                .iter()
                                .map(|cmd| c.send(cmd))
                                .collect::<Vec<String>>()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client")).collect()
            });
            server.shutdown();

            prop_assert_eq!(&serial, &concurrent);
        }
    }
}
