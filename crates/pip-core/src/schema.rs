//! Table schemas: named, typed columns.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{PipError, Result};

/// Logical column type.
///
/// `Symbolic` marks a column whose cells may hold *equations* over random
/// variables rather than deterministic values — the engine treats such
/// columns as opaque until the sampling phase (Section III-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    /// May contain a random-variable equation (a "pvar" in PIP's Postgres
    /// plugin); deterministic numeric values are also allowed.
    Symbolic,
}

impl DataType {
    /// True for the types a numeric expression may produce.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Symbolic)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "TEXT",
            DataType::Symbolic => "SYMBOLIC",
        };
        write!(f, "{s}")
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
}

impl Column {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered list of columns; cheap to clone (shared `Arc`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Arc<Vec<Column>>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(PipError::Schema(format!(
                    "duplicate column name '{}'",
                    c.name
                )));
            }
        }
        Ok(Schema {
            columns: Arc::new(columns),
        })
    }

    /// Terse constructor: `Schema::of(&[("a", DataType::Int), ...])`.
    pub fn of(cols: &[(&str, DataType)]) -> Self {
        Schema::new(
            cols.iter()
                .map(|(n, t)| Column::new(*n, *t))
                .collect::<Vec<_>>(),
        )
        .expect("Schema::of called with duplicate column names")
    }

    /// Empty schema (nullary relations — used in the paper's Section IV-A
    /// example of a condition-only table).
    pub fn empty() -> Self {
        Schema {
            columns: Arc::new(Vec::new()),
        }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of column `name`, or a schema error naming the candidates.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| {
                PipError::Schema(format!(
                    "no column '{name}' in ({})",
                    self.columns
                        .iter()
                        .map(|c| c.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Concatenate two schemas (cross product). Name clashes get a
    /// disambiguating `.right` suffix, mirroring how real engines rename.
    pub fn join(&self, other: &Schema) -> Result<Schema> {
        let mut cols = self.columns.as_ref().clone();
        for c in other.columns.iter() {
            if cols.iter().any(|p| p.name == c.name) {
                cols.push(Column::new(format!("{}.right", c.name), c.dtype));
            } else {
                cols.push(c.clone());
            }
        }
        Schema::new(cols)
    }

    /// Keep only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let cols = names
            .iter()
            .map(|n| self.column(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Float),
        ]);
        assert!(matches!(r, Err(PipError::Schema(_))));
    }

    #[test]
    fn index_and_lookup() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("c").is_err());
        assert_eq!(s.column("a").unwrap().dtype, DataType::Int);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(Schema::empty().is_empty());
    }

    #[test]
    fn join_renames_clashes() {
        let l = Schema::of(&[("a", DataType::Int)]);
        let r = Schema::of(&[("a", DataType::Float), ("b", DataType::Str)]);
        let j = l.join(&r).unwrap();
        assert_eq!(j.len(), 3);
        assert_eq!(j.columns()[1].name, "a.right");
        assert_eq!(j.columns()[2].name, "b");
    }

    #[test]
    fn project_selects_and_orders() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let p = s.project(&["b", "a"]).unwrap();
        assert_eq!(p.columns()[0].name, "b");
        assert_eq!(p.columns()[1].name, "a");
        assert!(s.project(&["zzz"]).is_err());
    }

    #[test]
    fn display() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Symbolic)]);
        assert_eq!(s.to_string(), "(a INT, b SYMBOLIC)");
        assert_eq!(DataType::Float.to_string(), "FLOAT");
    }

    #[test]
    fn numeric_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Symbolic.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }
}
