//! The error type shared by every PIP crate.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, PipError>;

/// Errors produced anywhere in the PIP stack.
///
/// The engine is layered (values → equations → c-tables → sampling →
/// query engine), and all layers surface failures through this single type
/// so that callers of the public API only handle one error enum.
#[derive(Debug, Clone, PartialEq)]
pub enum PipError {
    /// A value had the wrong runtime type for the requested operation.
    Type(String),
    /// Schema construction or column resolution failed.
    Schema(String),
    /// Expression evaluation failed (division by zero, unbound variable, ...).
    Eval(String),
    /// The sampling / integration layer could not produce an estimate.
    Sampling(String),
    /// A catalog object (table, distribution class, ...) was not found.
    NotFound(String),
    /// The operation is valid SQL/algebra but not supported by this engine.
    Unsupported(String),
    /// SQL lexing/parsing/binding failed.
    Sql(String),
    /// A c-table condition was detected to be unsatisfiable where a
    /// satisfiable one was required.
    Inconsistent,
    /// Invalid distribution parameters (e.g. negative variance).
    InvalidParameter(String),
    /// Durable-storage failure (WAL append, snapshot write, recovery).
    Io(String),
    /// A stored catalog payload failed to decode (corrupt or from an
    /// incompatible format version).
    Corrupt(String),
    /// A deposed replication primary refusing writes: a newer epoch
    /// holds the feed. Renders with a bare `fenced` prefix so clients
    /// (and the wire protocol's `ERR fenced` contract) can match on it.
    Fenced(String),
}

impl fmt::Display for PipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipError::Type(m) => write!(f, "type error: {m}"),
            PipError::Schema(m) => write!(f, "schema error: {m}"),
            PipError::Eval(m) => write!(f, "evaluation error: {m}"),
            PipError::Sampling(m) => write!(f, "sampling error: {m}"),
            PipError::NotFound(m) => write!(f, "not found: {m}"),
            PipError::Unsupported(m) => write!(f, "unsupported: {m}"),
            PipError::Sql(m) => write!(f, "SQL error: {m}"),
            PipError::Inconsistent => write!(f, "inconsistent condition"),
            PipError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            PipError::Io(m) => write!(f, "I/O error: {m}"),
            PipError::Corrupt(m) => write!(f, "corrupt store: {m}"),
            PipError::Fenced(m) => write!(f, "fenced: {m}"),
        }
    }
}

impl std::error::Error for PipError {}

impl PipError {
    /// Build a [`PipError::Type`] from anything printable.
    pub fn type_err(msg: impl fmt::Display) -> Self {
        PipError::Type(msg.to_string())
    }

    /// Build a [`PipError::Eval`] from anything printable.
    pub fn eval(msg: impl fmt::Display) -> Self {
        PipError::Eval(msg.to_string())
    }

    /// Build a [`PipError::Sampling`] from anything printable.
    pub fn sampling(msg: impl fmt::Display) -> Self {
        PipError::Sampling(msg.to_string())
    }

    /// Build a [`PipError::Io`] from anything printable.
    pub fn io(msg: impl fmt::Display) -> Self {
        PipError::Io(msg.to_string())
    }

    /// Build a [`PipError::Corrupt`] from anything printable.
    pub fn corrupt(msg: impl fmt::Display) -> Self {
        PipError::Corrupt(msg.to_string())
    }

    /// Build a [`PipError::Fenced`] from anything printable.
    pub fn fenced(msg: impl fmt::Display) -> Self {
        PipError::Fenced(msg.to_string())
    }
}

impl From<std::io::Error> for PipError {
    fn from(e: std::io::Error) -> Self {
        PipError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed_by_category() {
        assert_eq!(PipError::Type("bad".into()).to_string(), "type error: bad");
        assert_eq!(PipError::Inconsistent.to_string(), "inconsistent condition");
        assert_eq!(
            PipError::Sql("near token".into()).to_string(),
            "SQL error: near token"
        );
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert!(matches!(PipError::type_err("x"), PipError::Type(_)));
        assert!(matches!(PipError::eval("x"), PipError::Eval(_)));
        assert!(matches!(PipError::sampling("x"), PipError::Sampling(_)));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(PipError::Inconsistent);
        assert!(e.to_string().contains("inconsistent"));
    }
}
