//! Deterministic tuples (rows of [`Value`]s).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{PipError, Result};
use crate::schema::Schema;
use crate::value::Value;

/// A deterministic row. Symbolic rows (cells holding random-variable
/// equations) live in `pip-ctable`; this type is what a possible world, a
/// sample instantiation, or a fully deterministic query produces.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `i`, with a bounds-checked error.
    pub fn get(&self, i: usize) -> Result<&Value> {
        self.values
            .get(i)
            .ok_or_else(|| PipError::Eval(format!("tuple index {i} out of range ({})", self.len())))
    }

    /// Value of the column named `name` under `schema`.
    pub fn get_named(&self, schema: &Schema, name: &str) -> Result<&Value> {
        self.get(schema.index_of(name)?)
    }

    /// Concatenate two tuples (cross product row).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }

    /// Keep positions `idx`, in order (projection).
    pub fn project(&self, idx: &[usize]) -> Result<Tuple> {
        let values = idx
            .iter()
            .map(|&i| self.get(i).cloned())
            .collect::<Result<Vec<_>>>()?;
        Ok(Tuple { values })
    }

    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Build a tuple from a heterogeneous list: `tuple![1i64, 2.5, "x"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;

    #[test]
    fn get_and_named_access() {
        let s = Schema::of(&[("a", DataType::Int), ("b", DataType::Str)]);
        let t = tuple![4i64, "hello"];
        assert_eq!(t.get(0).unwrap(), &Value::Int(4));
        assert_eq!(t.get_named(&s, "b").unwrap(), &Value::str("hello"));
        assert!(t.get(5).is_err());
        assert!(t.get_named(&s, "zz").is_err());
    }

    #[test]
    fn concat_and_project() {
        let t = tuple![1i64, 2i64].concat(&tuple![3i64]);
        assert_eq!(t.len(), 3);
        let p = t.project(&[2, 0]).unwrap();
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
        assert!(t.project(&[9]).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1i64, "x"].to_string(), "(1, 'x')");
        assert_eq!(Tuple::new(vec![]).to_string(), "()");
        assert!(Tuple::new(vec![]).is_empty());
    }

    #[test]
    fn macro_mixes_types() {
        let t = tuple![true, 2i64, 2.5, "s"];
        assert_eq!(t.values().len(), 4);
        assert_eq!(t.get(3).unwrap(), &Value::str("s"));
        let vs = t.into_values();
        assert_eq!(vs[0], Value::Bool(true));
    }
}
