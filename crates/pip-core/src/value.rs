//! Deterministic runtime values.
//!
//! PIP treats random variables as *opaque* during relational processing;
//! the deterministic value type below is what those symbolic expressions
//! eventually evaluate to once a sample assigns every variable a number.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{PipError, Result};

/// A deterministic value stored in (or produced from) a PIP table.
///
/// `Float` uses IEEE-754 `f64`; ordering and hashing use a total order
/// (`f64::total_cmp` / bit patterns) so values can serve as group-by and
/// sort keys. `Null` sorts before everything, mirroring `NULLS FIRST`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// Immutable UTF-8 string (cheaply clonable).
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: `Int` and `Float` (and `Bool` as 0/1) convert, others fail.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            other => Err(PipError::Type(format!("{other} is not numeric"))),
        }
    }

    /// Integer view; floats convert only when they are integral.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Ok(*f as i64),
            other => Err(PipError::Type(format!("{other} is not an integer"))),
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(PipError::Type(format!("{other} is not a boolean"))),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(PipError::Type(format!("{other} is not a string"))),
        }
    }

    /// True if the value is `Int` or `Float` (or `Bool`, which coerces).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_) | Value::Bool(_))
    }

    /// Total order used for sorting and group-by keys.
    ///
    /// `Null < Bool < Int/Float (numeric order) < Str`. `Int` and `Float`
    /// compare numerically against each other so `Int(1) == Float(1.0)`
    /// as a key; NaN sorts above all other floats via `total_cmp`.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL-style equality used by joins and `distinct`.
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_total(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when numerically equal,
            // because cmp_total treats Int(1) == Float(1.0).
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn null_sorts_first() {
        let mut vs = [
            Value::str("a"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[3], Value::str("a"));
    }

    #[test]
    fn nan_has_a_home_in_the_total_order() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp_total(&nan), Ordering::Equal);
        assert_eq!(nan.cmp_total(&Value::Float(1.0)), Ordering::Greater);
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(7).as_f64().unwrap(), 7.0);
        assert_eq!(Value::Float(7.0).as_i64().unwrap(), 7);
        assert!(Value::Float(7.5).as_i64().is_err());
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert!(Value::str("x").as_f64().is_err());
        assert_eq!(Value::str("x").as_str().unwrap(), "x");
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::str("hi").to_string(), "'hi'");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from("s".to_string()), Value::str("s"));
    }
}
