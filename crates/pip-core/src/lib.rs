//! # pip-core
//!
//! Deterministic substrate of the PIP probabilistic database system
//! (Kennedy & Koch, *PIP: A database system for great and small
//! expectations*, ICDE 2010): typed values, schemas, tuples and the shared
//! error type.
//!
//! Everything probabilistic (random variables, symbolic equations,
//! c-tables, samplers) is layered on top of this crate; nothing here knows
//! about probabilities.

pub mod error;
pub mod schema;
pub mod tuple;
pub mod value;

pub use error::{PipError, Result};
pub use schema::{Column, DataType, Schema};
pub use tuple::Tuple;
pub use value::Value;
