//! Row conditions: conjunctions of atoms, plus the DNF view used by
//! `distinct` and set difference.
//!
//! PIP stores every c-table row with a condition that is a *conjunction*
//! of atoms; disjunction is represented by bag semantics (one row per
//! disjunct). This module provides that conjunction type, simplification
//! of trivially-true/false atoms, and DNF manipulation (negation of a
//! DNF back into DNF) for the difference operator.

use std::fmt;

use pip_core::Result;

use crate::atom::{Atom, CmpOp};
use crate::equation::Equation;
use crate::vars::{Assignment, RandomVar};

/// Outcome of constant-level simplification of a condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Condition simplified to `true` (row exists in every world).
    True,
    /// Condition simplified to `false` (row can be dropped).
    False,
    /// Truth depends on random variables.
    Unknown,
}

/// A conjunction of constraint atoms — the canonical PIP row condition.
///
/// The empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Conjunction {
    atoms: Vec<Atom>,
}

impl Conjunction {
    /// The trivially-true condition.
    pub fn top() -> Self {
        Conjunction { atoms: Vec::new() }
    }

    pub fn of(atoms: Vec<Atom>) -> Self {
        Conjunction { atoms }
    }

    pub fn single(atom: Atom) -> Self {
        Conjunction { atoms: vec![atom] }
    }

    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    pub fn is_trivially_true(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Conjoin another atom.
    pub fn and_atom(&self, atom: Atom) -> Conjunction {
        let mut atoms = self.atoms.clone();
        atoms.push(atom);
        Conjunction { atoms }
    }

    /// Conjoin two conditions (cross product of rows).
    pub fn and(&self, other: &Conjunction) -> Conjunction {
        let mut atoms = self.atoms.clone();
        atoms.extend_from_slice(&other.atoms);
        Conjunction { atoms }
    }

    /// Constant-level simplification (paper Section III-C, cases 1–3):
    ///
    /// * deterministic atoms are evaluated and dropped (or kill the row);
    /// * `Y = (·)` over continuous variables is treated as false
    ///   (zero probability mass), `Y ≠ (·)` as true;
    /// * `X = c₁ ∧ X = c₂` with `c₁ ≠ c₂` over a discrete variable is
    ///   recognized as inconsistent.
    ///
    /// Returns the simplified condition and its truth status. A `False`
    /// status means the caller should drop the row.
    pub fn simplify(&self) -> (Conjunction, Truth) {
        let mut kept: Vec<Atom> = Vec::with_capacity(self.atoms.len());
        for atom in &self.atoms {
            let atom = Atom {
                left: atom.left.simplify(),
                op: atom.op,
                right: atom.right.simplify(),
            };
            if let Some(t) = atom.const_truth() {
                if t {
                    continue; // true atom contributes nothing
                }
                return (Conjunction::top(), Truth::False);
            }
            if atom.is_almost_surely_true_ne() {
                continue;
            }
            if atom.is_zero_measure_eq() {
                return (Conjunction::top(), Truth::False);
            }
            kept.push(atom);
        }
        // Discrete contradiction: X = c1 AND X = c2, c1 != c2.
        for (i, a) in kept.iter().enumerate() {
            if a.op != CmpOp::Eq {
                continue;
            }
            if let (Equation::Var(v), Some(c1)) = (&a.left, a.right.as_const()) {
                for b in &kept[i + 1..] {
                    if b.op != CmpOp::Eq {
                        continue;
                    }
                    if let (Equation::Var(w), Some(c2)) = (&b.left, b.right.as_const()) {
                        if v.key == w.key && !c1.sql_eq(c2) {
                            return (Conjunction::top(), Truth::False);
                        }
                    }
                }
            }
        }
        let truth = if kept.is_empty() {
            Truth::True
        } else {
            Truth::Unknown
        };
        (Conjunction { atoms: kept }, truth)
    }

    /// Evaluate the condition under a full assignment.
    pub fn eval(&self, assignment: &Assignment) -> Result<bool> {
        for atom in &self.atoms {
            if !atom.eval(assignment)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// All distinct variables across all atoms.
    pub fn variables(&self) -> Vec<RandomVar> {
        let mut out = Vec::new();
        for a in &self.atoms {
            a.left.collect_vars(&mut out);
            a.right.collect_vars(&mut out);
        }
        out.dedup_by(|a, b| a.key == b.key);
        // dedup_by only removes consecutive duplicates; do it properly.
        let mut seen = std::collections::HashSet::new();
        out.retain(|v| seen.insert(v.key));
        out
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl From<Atom> for Conjunction {
    fn from(atom: Atom) -> Self {
        Conjunction::single(atom)
    }
}

/// Disjunctive normal form: an OR of conjunctions.
///
/// Used transiently by `distinct` (the disjunction of all duplicate rows'
/// conditions) and by difference (negating the matching rows' DNF).
/// The empty DNF is `false`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dnf {
    disjuncts: Vec<Conjunction>,
}

impl Dnf {
    /// The trivially-false condition (empty disjunction).
    pub fn bottom() -> Self {
        Dnf {
            disjuncts: Vec::new(),
        }
    }

    pub fn of(disjuncts: Vec<Conjunction>) -> Self {
        Dnf { disjuncts }
    }

    pub fn disjuncts(&self) -> &[Conjunction] {
        &self.disjuncts
    }

    pub fn or(&mut self, c: Conjunction) {
        self.disjuncts.push(c);
    }

    pub fn is_trivially_false(&self) -> bool {
        self.disjuncts.is_empty()
    }

    pub fn is_trivially_true(&self) -> bool {
        self.disjuncts.iter().any(|c| c.is_trivially_true())
    }

    /// Evaluate: true iff some disjunct holds.
    pub fn eval(&self, assignment: &Assignment) -> Result<bool> {
        for c in &self.disjuncts {
            if c.eval(assignment)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Negate into DNF.
    ///
    /// `¬(C₁ ∨ … ∨ Cₖ)` = `¬C₁ ∧ … ∧ ¬Cₖ`; each `¬Cᵢ` is a disjunction of
    /// negated atoms, so the conjunction distributes into (at most)
    /// `Π |Cᵢ|` conjuncts. This exponential worst case is inherent to the
    /// difference operator on c-tables; trivially-false products are
    /// pruned as we go.
    pub fn negate(&self) -> Dnf {
        // Start from the single empty conjunction (true).
        let mut acc: Vec<Conjunction> = vec![Conjunction::top()];
        for conj in &self.disjuncts {
            let mut next: Vec<Conjunction> = Vec::new();
            for partial in &acc {
                for atom in conj.atoms() {
                    let cand = partial.and_atom(atom.negate());
                    let (c, t) = cand.simplify();
                    match t {
                        Truth::False => {}
                        _ => next.push(c),
                    }
                }
                // A trivially-true conjunct (empty) negates to false and
                // contributes nothing, killing every partial: handled
                // naturally because the inner loop never runs.
            }
            acc = next;
            if acc.is_empty() {
                break;
            }
        }
        Dnf { disjuncts: acc }
    }

    /// All distinct variables across all disjuncts.
    pub fn variables(&self) -> Vec<RandomVar> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for d in &self.disjuncts {
            for v in d.variables() {
                if seen.insert(v.key) {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "false");
        }
        for (i, c) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

/// Helper for code that conditionally drops rows: fold a freshly built
/// condition, returning `None` when the row is statically dead.
pub fn simplify_row_condition(cond: Conjunction) -> Option<Conjunction> {
    let (c, t) = cond.simplify();
    match t {
        Truth::False => None,
        _ => Some(c),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atoms::*;
    use crate::vars::RandomVar;
    use pip_dist::prelude::builtin;

    fn y() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    fn x_disc() -> RandomVar {
        RandomVar::create(builtin::discrete_uniform(), &[0.0, 9.0]).unwrap()
    }

    #[test]
    fn empty_conjunction_is_true() {
        let c = Conjunction::top();
        assert!(c.is_trivially_true());
        assert!(c.eval(&Assignment::new()).unwrap());
        assert_eq!(c.to_string(), "true");
    }

    #[test]
    fn simplify_drops_true_atoms_and_kills_false() {
        let v = y();
        let cond = Conjunction::of(vec![lt(1.0, 2.0), gt(Equation::from(v.clone()), 0.0)]);
        let (c, t) = cond.simplify();
        assert_eq!(t, Truth::Unknown);
        assert_eq!(c.atoms().len(), 1);

        let dead = Conjunction::of(vec![gt(1.0, 2.0), gt(Equation::from(v), 0.0)]);
        let (_, t) = dead.simplify();
        assert_eq!(t, Truth::False);
    }

    #[test]
    fn simplify_zero_measure_equalities() {
        let v = y();
        let (_, t) = Conjunction::single(eq(Equation::from(v.clone()), 3.0)).simplify();
        assert_eq!(t, Truth::False);
        let (c, t) = Conjunction::single(ne(Equation::from(v), 3.0)).simplify();
        assert_eq!(t, Truth::True);
        assert!(c.is_trivially_true());
    }

    #[test]
    fn simplify_discrete_contradiction() {
        let x = x_disc();
        let cond = Conjunction::of(vec![
            eq(Equation::from(x.clone()), 1.0),
            eq(Equation::from(x.clone()), 2.0),
        ]);
        let (_, t) = cond.simplify();
        assert_eq!(t, Truth::False);
        // Same constant twice is fine.
        let cond = Conjunction::of(vec![
            eq(Equation::from(x.clone()), 1.0),
            eq(Equation::from(x), 1.0),
        ]);
        let (_, t) = cond.simplify();
        assert_eq!(t, Truth::Unknown);
    }

    #[test]
    fn eval_conjunction() {
        let v = y();
        let mut a = Assignment::new();
        a.set(v.key, 5.0);
        let cond = Conjunction::of(vec![
            gt(Equation::from(v.clone()), 0.0),
            lt(Equation::from(v.clone()), 10.0),
        ]);
        assert!(cond.eval(&a).unwrap());
        a.set(v.key, 20.0);
        assert!(!cond.eval(&a).unwrap());
    }

    #[test]
    fn variables_deduplicated() {
        let v = y();
        let w = y();
        let cond = Conjunction::of(vec![
            gt(Equation::from(v.clone()), 0.0),
            lt(Equation::from(v.clone()), Equation::from(w.clone())),
        ]);
        let vars = cond.variables();
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn dnf_eval_and_negate_agree() {
        let v = y();
        let w = y();
        // (v > 1) OR (w < -1)
        let dnf = Dnf::of(vec![
            Conjunction::single(gt(Equation::from(v.clone()), 1.0)),
            Conjunction::single(lt(Equation::from(w.clone()), -1.0)),
        ]);
        let neg = dnf.negate();
        let mut a = Assignment::new();
        for (vv, wv) in [(0.0, 0.0), (2.0, 0.0), (0.0, -2.0), (2.0, -2.0)] {
            a.set(v.key, vv);
            a.set(w.key, wv);
            assert_eq!(
                dnf.eval(&a).unwrap(),
                !neg.eval(&a).unwrap(),
                "at v={vv}, w={wv}"
            );
        }
    }

    #[test]
    fn negate_prunes_contradictions() {
        let v = y();
        // (v > 1 AND v <= 1) is unsatisfiable; its negation is `true`.
        // Negating [(v>1) OR (v<=1)] gives (v<=1 AND v>1) -> pruned? The
        // pruning here only covers *statically* detectable falsity, and
        // cross-atom interval reasoning lives in pip-ctable; so we just
        // check the negation of a deterministic-true DNF is false.
        let dnf = Dnf::of(vec![Conjunction::top()]);
        assert!(dnf.is_trivially_true());
        let neg = dnf.negate();
        assert!(neg.is_trivially_false());
        // And ¬false = true.
        let t = Dnf::bottom().negate();
        assert!(t.is_trivially_true());
        let _ = v;
    }

    #[test]
    fn simplify_row_condition_helper() {
        assert!(simplify_row_condition(Conjunction::single(gt(2.0, 1.0))).is_some());
        assert!(simplify_row_condition(Conjunction::single(gt(1.0, 2.0))).is_none());
    }

    #[test]
    fn display_forms() {
        let v = y();
        let c = Conjunction::of(vec![gt(Equation::from(v), 0.0), lt(1.0, 2.0)]);
        assert!(c.to_string().contains(" AND "));
        assert_eq!(Dnf::bottom().to_string(), "false");
    }
}
