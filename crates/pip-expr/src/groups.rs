//! Minimal independent subsets of condition atoms (paper Section IV-A(c)).
//!
//! Before sampling, PIP partitions a conjunction's atoms into *minimal
//! independent subsets*: groups of atoms sharing no variables. Each group
//! can then be sampled (and its acceptance probability estimated)
//! independently, which both shrinks the rejection space and lets the
//! expectation operator skip groups that don't touch the target
//! expression. Components of one multivariate distribution (same
//! [`crate::vars::VarId`], different subscripts) are statistically
//! dependent, so grouping unifies on `VarId`, not `VarKey`.

use std::collections::HashMap;

use crate::atom::Atom;
use crate::condition::Conjunction;
use crate::vars::{RandomVar, VarId};

/// A minimal independent subset: the atoms plus every variable they touch.
#[derive(Debug, Clone)]
pub struct VarGroup {
    pub atoms: Vec<Atom>,
    pub vars: Vec<RandomVar>,
}

impl VarGroup {
    /// True if the group mentions any of the given variable ids.
    pub fn touches(&self, ids: &[VarId]) -> bool {
        self.vars.iter().any(|v| ids.contains(&v.key.id))
    }
}

/// Union-find over a dense index space.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Partition `condition` into minimal independent subsets.
///
/// Extra variables that the caller needs grouped but that appear in no
/// atom (e.g. variables in the target expression of an expectation) can be
/// passed in `extra_vars`; each lands in its own singleton group unless an
/// atom connects it.
pub fn independent_groups(condition: &Conjunction, extra_vars: &[RandomVar]) -> Vec<VarGroup> {
    // Map each distinct VarId to a dense index.
    let mut id_index: HashMap<VarId, usize> = HashMap::new();
    let mut id_vars: Vec<Vec<RandomVar>> = Vec::new(); // all keys per id
    let intern =
        |v: &RandomVar, id_index: &mut HashMap<VarId, usize>, id_vars: &mut Vec<Vec<RandomVar>>| {
            let idx = *id_index.entry(v.key.id).or_insert_with(|| {
                id_vars.push(Vec::new());
                id_vars.len() - 1
            });
            if !id_vars[idx].iter().any(|o| o.key == v.key) {
                id_vars[idx].push(v.clone());
            }
            idx
        };

    let atom_vars: Vec<Vec<usize>> = condition
        .atoms()
        .iter()
        .map(|a| {
            a.variables()
                .iter()
                .map(|v| intern(v, &mut id_index, &mut id_vars))
                .collect()
        })
        .collect();
    for v in extra_vars {
        intern(v, &mut id_index, &mut id_vars);
    }

    let n = id_vars.len();
    let mut dsu = Dsu::new(n);
    for vars in &atom_vars {
        for w in vars.windows(2) {
            dsu.union(w[0], w[1]);
        }
    }

    // Collect groups keyed by DSU root.
    let mut root_to_group: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<VarGroup> = Vec::new();
    for (idx, vars) in id_vars.iter().enumerate().take(n) {
        let root = dsu.find(idx);
        let g = *root_to_group.entry(root).or_insert_with(|| {
            groups.push(VarGroup {
                atoms: Vec::new(),
                vars: Vec::new(),
            });
            groups.len() - 1
        });
        groups[g].vars.extend(vars.iter().cloned());
    }
    for (atom, vars) in condition.atoms().iter().zip(&atom_vars) {
        if let Some(&first) = vars.first() {
            let root = dsu.find(first);
            let g = root_to_group[&root];
            groups[g].atoms.push(atom.clone());
        }
        // Atoms with no variables were simplified away upstream; if one
        // survives (caller skipped simplify) it holds in every world and
        // can be ignored for grouping purposes.
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::atoms::*;
    use crate::equation::Equation;
    use crate::vars::RandomVar;
    use pip_dist::prelude::builtin;

    fn y() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    #[test]
    fn paper_section_4a_example() {
        // (Y1 > 4) ∧ (Y1·Y2 > Y3) ∧ (A < 6) — two groups.
        let y1 = y();
        let y2 = y();
        let y3 = y();
        let a = y();
        let cond = Conjunction::of(vec![
            gt(Equation::from(y1.clone()), 4.0),
            gt(
                Equation::from(y1.clone()) * Equation::from(y2.clone()),
                Equation::from(y3.clone()),
            ),
            lt(Equation::from(a.clone()), 6.0),
        ]);
        let groups = independent_groups(&cond, &[]);
        assert_eq!(groups.len(), 2);
        let big = groups.iter().find(|g| g.vars.len() == 3).unwrap();
        assert_eq!(big.atoms.len(), 2);
        let small = groups.iter().find(|g| g.vars.len() == 1).unwrap();
        assert_eq!(small.atoms.len(), 1);
        assert!(small.vars[0].key == a.key);
    }

    #[test]
    fn multivariate_components_share_a_group() {
        let base = y();
        let c0 = base.component(0);
        let c1 = base.component(1);
        let other = y();
        let cond = Conjunction::of(vec![
            gt(Equation::from(c0), 0.0),
            lt(Equation::from(c1), 5.0),
            gt(Equation::from(other), 1.0),
        ]);
        let groups = independent_groups(&cond, &[]);
        // c0 and c1 share VarId → same group despite disjoint atoms.
        assert_eq!(groups.len(), 2);
        let mv = groups.iter().find(|g| g.vars.len() == 2).unwrap();
        assert_eq!(mv.atoms.len(), 2);
    }

    #[test]
    fn extra_vars_form_singletons() {
        let v = y();
        let w = y();
        let cond = Conjunction::single(gt(Equation::from(v.clone()), 0.0));
        let groups = independent_groups(&cond, std::slice::from_ref(&w));
        assert_eq!(groups.len(), 2);
        let lonely = groups.iter().find(|g| g.atoms.is_empty()).unwrap();
        assert_eq!(lonely.vars[0].key, w.key);
        assert!(lonely.touches(&[w.key.id]));
        assert!(!lonely.touches(&[v.key.id]));
    }

    #[test]
    fn empty_condition_no_groups() {
        assert!(independent_groups(&Conjunction::top(), &[]).is_empty());
    }

    #[test]
    fn chain_merges_transitively() {
        let a = y();
        let b = y();
        let c = y();
        // a-b and b-c connect all three.
        let cond = Conjunction::of(vec![
            lt(Equation::from(a.clone()), Equation::from(b.clone())),
            lt(Equation::from(b.clone()), Equation::from(c.clone())),
        ]);
        let groups = independent_groups(&cond, &[]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].vars.len(), 3);
        assert_eq!(groups[0].atoms.len(), 2);
    }
}
