//! # pip-expr
//!
//! Symbolic layer of PIP: random-variable references, the *equation*
//! datatype (arithmetic over variables and constants, paper Section
//! III-B), constraint atoms, and row conditions (conjunctions, with a DNF
//! view for `distinct`/difference).
//!
//! ```
//! use pip_expr::prelude::*;
//! use pip_dist::prelude::builtin;
//!
//! // [Y => Normal(5, 10)]
//! let y = RandomVar::create(builtin::normal(), &[5.0, 10.0]).unwrap();
//! // Price * 2 + 1
//! let price = Equation::from(y.clone()) * 2.0 + 1.0;
//! // Condition (Y > -3) AND (Y < 2)
//! let cond = Conjunction::of(vec![
//!     atoms::gt(Equation::from(y.clone()), -3.0),
//!     atoms::lt(Equation::from(y.clone()), 2.0),
//! ]);
//! let mut a = Assignment::new();
//! a.set(y.key, 0.0);
//! assert!(cond.eval(&a).unwrap());
//! assert_eq!(price.eval_f64(&a).unwrap(), 1.0);
//! ```

pub mod atom;
pub mod condition;
pub mod equation;
pub mod groups;
pub mod slots;
pub mod vars;

pub use atom::{atoms, Atom, CmpOp};
pub use condition::{simplify_row_condition, Conjunction, Dnf, Truth};
pub use equation::{BinOp, Equation, UnOp};
pub use groups::{independent_groups, VarGroup};
pub use slots::SlotMap;
pub use vars::{Assignment, RandomVar, VarId, VarKey};

/// Glob-import surface.
pub mod prelude {
    pub use crate::atom::{atoms, Atom, CmpOp};
    pub use crate::condition::{simplify_row_condition, Conjunction, Dnf, Truth};
    pub use crate::equation::{BinOp, Equation, UnOp};
    pub use crate::groups::{independent_groups, VarGroup};
    pub use crate::slots::SlotMap;
    pub use crate::vars::{Assignment, RandomVar, VarId, VarKey};
}
