//! Dense slot indices for variable keys.
//!
//! The sampling compiler in `pip-sampling` flattens equation/condition
//! trees into evaluation tapes whose operands are *slot indices* into a
//! flat `f64` buffer instead of [`crate::vars::VarKey`]s resolved through
//! an [`crate::vars::Assignment`] hash map. A [`SlotMap`] is the bridge:
//! it interns every variable a prepared query can touch (in a
//! deterministic first-come order) and hands out the dense indices the
//! tapes and sample blocks are built around.

use std::collections::HashMap;

use crate::vars::{RandomVar, VarKey};

/// Interned `VarKey → dense index` mapping for one compiled query.
///
/// Slots are allocated in insertion order, so building the map by
/// iterating variable groups in group order gives every thread and every
/// run the same layout — a prerequisite for reusing cached sample blocks
/// across evaluations.
#[derive(Debug, Clone, Default)]
pub struct SlotMap {
    keys: Vec<VarKey>,
    index: HashMap<VarKey, u32>,
}

impl SlotMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `key`, returning its slot (existing or freshly allocated).
    pub fn intern(&mut self, key: VarKey) -> u32 {
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let i = self.keys.len() as u32;
        self.keys.push(key);
        self.index.insert(key, i);
        i
    }

    /// Slot of an already-interned key.
    pub fn slot_of(&self, key: VarKey) -> Option<u32> {
        self.index.get(&key).copied()
    }

    /// Number of slots allocated so far (the scratch-buffer width).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Keys in slot order (`keys()[i]` owns slot `i`).
    pub fn keys(&self) -> &[VarKey] {
        &self.keys
    }

    /// Intern every variable of `vars` in order.
    pub fn intern_all(&mut self, vars: &[RandomVar]) {
        for v in vars {
            self.intern(v.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_dist::prelude::builtin;

    #[test]
    fn interning_is_dense_and_stable() {
        let a = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let b = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let mut m = SlotMap::new();
        assert!(m.is_empty());
        assert_eq!(m.intern(a.key), 0);
        assert_eq!(m.intern(b.key), 1);
        assert_eq!(m.intern(a.key), 0, "re-interning returns the old slot");
        assert_eq!(m.len(), 2);
        assert_eq!(m.slot_of(b.key), Some(1));
        assert_eq!(m.slot_of(a.component(7).key), None);
        assert_eq!(m.keys(), &[a.key, b.key]);
    }

    #[test]
    fn intern_all_preserves_order() {
        let vars: Vec<RandomVar> = (0..5)
            .map(|_| RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap())
            .collect();
        let mut m = SlotMap::new();
        m.intern_all(&vars);
        for (i, v) in vars.iter().enumerate() {
            assert_eq!(m.slot_of(v.key), Some(i as u32));
        }
    }
}
