//! The *equation* datatype (paper Section III-B): a flattened parse tree
//! of an arithmetic expression whose leaves are random variables or
//! constants. An equation itself describes a (composite) random variable,
//! so the paper — and this crate — uses "equation" and "random variable"
//! interchangeably.

use std::fmt;
use std::ops;
use std::sync::Arc;

use pip_core::{PipError, Result, Value};

use crate::vars::{Assignment, RandomVar, VarKey};

/// Binary arithmetic operators admitted in equations.
///
/// The paper's implementation "limits users to simple algebraic
/// operators, thus all variable expressions are polynomial" — we admit
/// division too (used by its own examples), which keeps expressions
/// rational; the consistency checker simply skips non-degree-1 atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl BinOp {
    pub fn apply(self, l: f64, r: f64) -> Result<f64> {
        Ok(match self {
            BinOp::Add => l + r,
            BinOp::Sub => l - r,
            BinOp::Mul => l * r,
            BinOp::Div => {
                if r == 0.0 {
                    return Err(PipError::Eval("division by zero".into()));
                }
                l / r
            }
        })
    }

    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
}

/// A symbolic arithmetic expression over random variables and constants.
///
/// Shared subtrees use `Arc` so that relational operators can copy cells
/// between tuples for free — exactly the property that makes PIP's
/// "evaluate the query first, sample later" strategy cheap.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Equation {
    /// A deterministic constant (any [`Value`], including strings).
    Const(Value),
    /// A reference to a random variable.
    Var(RandomVar),
    /// `left op right`.
    Binary {
        op: BinOp,
        left: Arc<Equation>,
        right: Arc<Equation>,
    },
    /// `op expr`.
    Unary { op: UnOp, expr: Arc<Equation> },
}

impl Equation {
    /// Constant constructor.
    pub fn val(v: impl Into<Value>) -> Self {
        Equation::Const(v.into())
    }

    /// Variable constructor.
    pub fn var(v: RandomVar) -> Self {
        Equation::Var(v)
    }

    pub fn binary(op: BinOp, left: Equation, right: Equation) -> Self {
        Equation::Binary {
            op,
            left: Arc::new(left),
            right: Arc::new(right),
        }
    }

    pub fn neg(self) -> Self {
        Equation::Unary {
            op: UnOp::Neg,
            expr: Arc::new(self),
        }
    }

    /// The constant value, if this equation is deterministic *at the root*
    /// (after [`Equation::simplify`], any deterministic tree is a root
    /// constant).
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Equation::Const(v) => Some(v),
            _ => None,
        }
    }

    /// True if no random variable occurs anywhere in the tree.
    pub fn is_deterministic(&self) -> bool {
        match self {
            Equation::Const(_) => true,
            Equation::Var(_) => false,
            Equation::Binary { left, right, .. } => {
                left.is_deterministic() && right.is_deterministic()
            }
            Equation::Unary { expr, .. } => expr.is_deterministic(),
        }
    }

    /// Append every distinct variable occurring in the tree to `out`.
    pub fn collect_vars(&self, out: &mut Vec<RandomVar>) {
        match self {
            Equation::Const(_) => {}
            Equation::Var(v) => {
                if !out.iter().any(|o| o.key == v.key) {
                    out.push(v.clone());
                }
            }
            Equation::Binary { left, right, .. } => {
                left.collect_vars(out);
                right.collect_vars(out);
            }
            Equation::Unary { expr, .. } => expr.collect_vars(out),
        }
    }

    /// All distinct variables in the tree.
    pub fn variables(&self) -> Vec<RandomVar> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Evaluate to a numeric value under `assignment`.
    ///
    /// Errors if a variable is unassigned or a non-numeric constant is
    /// reached by an arithmetic operator.
    pub fn eval_f64(&self, assignment: &Assignment) -> Result<f64> {
        match self {
            Equation::Const(v) => v.as_f64(),
            Equation::Var(v) => assignment
                .get(v.key)
                .ok_or_else(|| PipError::Eval(format!("variable {} not assigned", v.key.id))),
            Equation::Binary { op, left, right } => {
                op.apply(left.eval_f64(assignment)?, right.eval_f64(assignment)?)
            }
            Equation::Unary {
                op: UnOp::Neg,
                expr,
            } => Ok(-expr.eval_f64(assignment)?),
        }
    }

    /// Evaluate to a [`Value`]: constants pass through (so string cells
    /// survive), anything with variables goes down the numeric path.
    pub fn eval_value(&self, assignment: &Assignment) -> Result<Value> {
        match self {
            Equation::Const(v) => Ok(v.clone()),
            other => Ok(Value::Float(other.eval_f64(assignment)?)),
        }
    }

    /// Bottom-up constant folding plus neutral-element elimination
    /// (`x+0`, `x*1`, `x*0 → 0`, `--x → x`).
    pub fn simplify(&self) -> Equation {
        match self {
            Equation::Const(_) | Equation::Var(_) => self.clone(),
            Equation::Unary {
                op: UnOp::Neg,
                expr,
            } => {
                let e = expr.simplify();
                match e {
                    Equation::Const(v) => match v.as_f64() {
                        Ok(x) => Equation::val(-x),
                        Err(_) => Equation::Const(v).neg(),
                    },
                    Equation::Unary {
                        op: UnOp::Neg,
                        expr,
                    } => (*expr).clone(),
                    other => other.neg(),
                }
            }
            Equation::Binary { op, left, right } => {
                let l = left.simplify();
                let r = right.simplify();
                // Constant folding when both sides folded to numerics.
                if let (Some(lv), Some(rv)) = (l.as_const(), r.as_const()) {
                    if let (Ok(lf), Ok(rf)) = (lv.as_f64(), rv.as_f64()) {
                        if let Ok(folded) = op.apply(lf, rf) {
                            return Equation::val(folded);
                        }
                    }
                }
                let is_zero = |e: &Equation| matches!(e.as_const().and_then(|v| v.as_f64().ok()), Some(x) if x == 0.0);
                let is_one = |e: &Equation| matches!(e.as_const().and_then(|v| v.as_f64().ok()), Some(x) if x == 1.0);
                match op {
                    BinOp::Add if is_zero(&l) => r,
                    BinOp::Add | BinOp::Sub if is_zero(&r) => l,
                    BinOp::Mul if is_one(&l) => r,
                    BinOp::Mul | BinOp::Div if is_one(&r) => l,
                    BinOp::Mul if is_zero(&l) || is_zero(&r) => Equation::val(0.0),
                    _ => Equation::binary(*op, l, r),
                }
            }
        }
    }

    /// If the equation is an *affine* (degree-1) polynomial
    /// `c + Σ aᵢ·Xᵢ`, return `(coefficients, constant)`; otherwise `None`.
    ///
    /// This is what `tighten1` in Algorithm 3.2 consumes. Products of two
    /// variable-bearing subtrees, or division *by* a variable, make the
    /// expression non-affine.
    pub fn linear_coeffs(&self) -> Option<(std::collections::HashMap<VarKey, f64>, f64)> {
        use std::collections::HashMap;
        fn go(eq: &Equation, scale: f64, coeffs: &mut HashMap<VarKey, f64>, c: &mut f64) -> bool {
            match eq {
                Equation::Const(v) => match v.as_f64() {
                    Ok(x) => {
                        *c += scale * x;
                        true
                    }
                    Err(_) => false,
                },
                Equation::Var(v) => {
                    *coeffs.entry(v.key).or_insert(0.0) += scale;
                    true
                }
                Equation::Unary {
                    op: UnOp::Neg,
                    expr,
                } => go(expr, -scale, coeffs, c),
                Equation::Binary { op, left, right } => match op {
                    BinOp::Add => go(left, scale, coeffs, c) && go(right, scale, coeffs, c),
                    BinOp::Sub => go(left, scale, coeffs, c) && go(right, -scale, coeffs, c),
                    BinOp::Mul => {
                        // One side must be deterministic.
                        if left.is_deterministic() {
                            match left.simplify().as_const().and_then(|v| v.as_f64().ok()) {
                                Some(k) => go(right, scale * k, coeffs, c),
                                None => false,
                            }
                        } else if right.is_deterministic() {
                            match right.simplify().as_const().and_then(|v| v.as_f64().ok()) {
                                Some(k) => go(left, scale * k, coeffs, c),
                                None => false,
                            }
                        } else {
                            false
                        }
                    }
                    BinOp::Div => {
                        if right.is_deterministic() {
                            match right.simplify().as_const().and_then(|v| v.as_f64().ok()) {
                                Some(k) if k != 0.0 => go(left, scale / k, coeffs, c),
                                _ => false,
                            }
                        } else {
                            false
                        }
                    }
                },
            }
        }
        let mut coeffs = HashMap::new();
        let mut c = 0.0;
        if go(self, 1.0, &mut coeffs, &mut c) {
            coeffs.retain(|_, v| *v != 0.0);
            Some((coeffs, c))
        } else {
            None
        }
    }

    /// Polynomial degree in the random variables: 0 for deterministic,
    /// 1 for affine, 2+ for products; `None` when the expression is not
    /// polynomial (division by a variable).
    pub fn degree(&self) -> Option<u32> {
        match self {
            Equation::Const(_) => Some(0),
            Equation::Var(_) => Some(1),
            Equation::Unary { expr, .. } => expr.degree(),
            Equation::Binary { op, left, right } => {
                let l = left.degree()?;
                let r = right.degree()?;
                match op {
                    BinOp::Add | BinOp::Sub => Some(l.max(r)),
                    BinOp::Mul => Some(l + r),
                    BinOp::Div => {
                        if r == 0 {
                            Some(l)
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }
}

impl fmt::Display for Equation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Equation::Const(v) => write!(f, "{v}"),
            Equation::Var(v) => write!(f, "{}", v.key.id),
            Equation::Binary { op, left, right } => {
                write!(f, "({} {} {})", left, op.symbol(), right)
            }
            Equation::Unary {
                op: UnOp::Neg,
                expr,
            } => write!(f, "(-{expr})"),
        }
    }
}

impl From<RandomVar> for Equation {
    fn from(v: RandomVar) -> Self {
        Equation::Var(v)
    }
}

impl From<f64> for Equation {
    fn from(v: f64) -> Self {
        Equation::val(v)
    }
}

impl From<i64> for Equation {
    fn from(v: i64) -> Self {
        Equation::val(v)
    }
}

impl From<Value> for Equation {
    fn from(v: Value) -> Self {
        Equation::Const(v)
    }
}

// Operator overloading so query/workload code reads like arithmetic:
// `price * Equation::from(x) + 3.0`.
macro_rules! impl_bin {
    ($trait:ident, $method:ident, $op:expr) => {
        impl ops::$trait for Equation {
            type Output = Equation;
            fn $method(self, rhs: Equation) -> Equation {
                Equation::binary($op, self, rhs)
            }
        }
        impl ops::$trait<f64> for Equation {
            type Output = Equation;
            fn $method(self, rhs: f64) -> Equation {
                Equation::binary($op, self, Equation::val(rhs))
            }
        }
        impl ops::$trait<Equation> for f64 {
            type Output = Equation;
            fn $method(self, rhs: Equation) -> Equation {
                Equation::binary($op, Equation::val(self), rhs)
            }
        }
    };
}

impl_bin!(Add, add, BinOp::Add);
impl_bin!(Sub, sub, BinOp::Sub);
impl_bin!(Mul, mul, BinOp::Mul);
impl_bin!(Div, div, BinOp::Div);

impl ops::Neg for Equation {
    type Output = Equation;
    fn neg(self) -> Equation {
        Equation::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_dist::prelude::builtin;

    fn x() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    #[test]
    fn eval_arithmetic() {
        let v = x();
        let mut a = Assignment::new();
        a.set(v.key, 4.0);
        let eq = (Equation::from(v.clone()) * 3.0 + 1.0) / 2.0;
        assert_eq!(eq.eval_f64(&a).unwrap(), 6.5);
        let neg = -Equation::from(v);
        assert_eq!(neg.eval_f64(&a).unwrap(), -4.0);
    }

    #[test]
    fn eval_errors() {
        let v = x();
        let a = Assignment::new();
        assert!(Equation::from(v).eval_f64(&a).is_err());
        let div0 = Equation::val(1.0) / Equation::val(0.0);
        assert!(div0.eval_f64(&a).is_err());
        let s = Equation::val(Value::str("hi")) + Equation::val(1.0);
        assert!(s.eval_f64(&a).is_err());
    }

    #[test]
    fn eval_value_passes_strings_through() {
        let a = Assignment::new();
        assert_eq!(
            Equation::val(Value::str("NY")).eval_value(&a).unwrap(),
            Value::str("NY")
        );
        assert_eq!(
            (Equation::val(2.0) * 2.0).eval_value(&a).unwrap(),
            Value::Float(4.0)
        );
    }

    #[test]
    fn variables_dedup() {
        let v = x();
        let w = x();
        let eq = Equation::from(v.clone()) + Equation::from(w.clone()) * Equation::from(v.clone());
        let vars = eq.variables();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&v) && vars.contains(&w));
    }

    #[test]
    fn simplify_folds_constants() {
        let e = (Equation::val(2.0) + Equation::val(3.0)) * Equation::val(4.0);
        assert_eq!(e.simplify().as_const().unwrap().as_f64().unwrap(), 20.0);
        let v = x();
        let e = Equation::from(v.clone()) + Equation::val(0.0);
        assert_eq!(e.simplify(), Equation::from(v.clone()));
        let e = Equation::from(v.clone()) * Equation::val(0.0);
        assert_eq!(e.simplify().as_const().unwrap().as_f64().unwrap(), 0.0);
        let e = Equation::val(1.0) * Equation::from(v.clone());
        assert_eq!(e.simplify(), Equation::from(v.clone()));
        let e = -(-Equation::from(v.clone()));
        assert_eq!(e.simplify(), Equation::from(v));
    }

    #[test]
    fn simplify_preserves_semantics() {
        let v = x();
        let mut a = Assignment::new();
        a.set(v.key, 2.5);
        let e = (Equation::from(v.clone()) * 2.0 + 0.0) * (Equation::val(3.0) - 1.0);
        assert_eq!(e.simplify().eval_f64(&a).unwrap(), e.eval_f64(&a).unwrap());
    }

    #[test]
    fn linear_coefficients_of_affine() {
        let v = x();
        let w = x();
        // 3v - 2w/4 + 7
        let eq = Equation::from(v.clone()) * 3.0 - Equation::from(w.clone()) * 2.0 / 4.0 + 7.0;
        let (coeffs, c) = eq.linear_coeffs().unwrap();
        assert_eq!(coeffs[&v.key], 3.0);
        assert_eq!(coeffs[&w.key], -0.5);
        assert_eq!(c, 7.0);
    }

    #[test]
    fn nonlinear_rejected_by_linear_coeffs() {
        let v = x();
        let w = x();
        let prod = Equation::from(v.clone()) * Equation::from(w.clone());
        assert!(prod.linear_coeffs().is_none());
        let div = Equation::val(1.0) / Equation::from(v.clone());
        assert!(div.linear_coeffs().is_none());
        // but (v * deterministic) is fine
        let scaled = Equation::from(v) * (Equation::val(2.0) + Equation::val(1.0));
        assert!(scaled.linear_coeffs().is_some());
    }

    #[test]
    fn degree_computation() {
        let v = x();
        let w = x();
        assert_eq!(Equation::val(3.0).degree(), Some(0));
        assert_eq!(Equation::from(v.clone()).degree(), Some(1));
        let sq = Equation::from(v.clone()) * Equation::from(v.clone());
        assert_eq!(sq.degree(), Some(2));
        let mixed = sq.clone() + Equation::from(w.clone());
        assert_eq!(mixed.degree(), Some(2));
        let rational = Equation::val(1.0) / Equation::from(w);
        assert_eq!(rational.degree(), None);
        assert_eq!((Equation::from(v) / 2.0).degree(), Some(1));
    }

    #[test]
    fn display() {
        let v = x();
        let e = Equation::from(v.clone()) * 3.0;
        let s = e.to_string();
        assert!(s.contains('*') && s.contains('3'), "{s}");
    }
}
