//! Constraint atoms: comparisons between equations.
//!
//! C-table conditions are boolean formulas over atoms of the form
//! `eq₁ θ eq₂` with θ ∈ {<, ≤, >, ≥, =, ≠} (paper Section II-A). PIP
//! keeps per-row conditions in conjunctive form; disjunction is encoded
//! by bag semantics (one row per disjunct) and re-coalesced by DISTINCT.

use std::fmt;

use pip_core::{Result, Value};

use crate::equation::Equation;
use crate::vars::{Assignment, RandomVar};

/// Comparison operator of an atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// The operator satisfied exactly when `self` is not.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Mirror image: `a θ b  ⇔  b θ' a`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    pub fn eval_f64(self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }

    pub fn eval_value(self, l: &Value, r: &Value) -> bool {
        let ord = l.cmp_total(r);
        match self {
            CmpOp::Lt => ord.is_lt(),
            CmpOp::Le => ord.is_le(),
            CmpOp::Gt => ord.is_gt(),
            CmpOp::Ge => ord.is_ge(),
            CmpOp::Eq => ord.is_eq(),
            CmpOp::Ne => ord.is_ne(),
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
        }
    }
}

/// One constraint atom `left θ right`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    pub left: Equation,
    pub op: CmpOp,
    pub right: Equation,
}

impl Atom {
    pub fn new(left: impl Into<Equation>, op: CmpOp, right: impl Into<Equation>) -> Self {
        Atom {
            left: left.into(),
            op,
            right: right.into(),
        }
    }

    /// Logical negation (`¬(a < b)` is `a ≥ b`).
    pub fn negate(&self) -> Atom {
        Atom {
            left: self.left.clone(),
            op: self.op.negate(),
            right: self.right.clone(),
        }
    }

    /// True if no random variables occur on either side.
    pub fn is_deterministic(&self) -> bool {
        self.left.is_deterministic() && self.right.is_deterministic()
    }

    /// For a deterministic atom, its truth value; `None` otherwise.
    ///
    /// String comparisons are honoured; mixed string/number comparisons
    /// use the total value order.
    pub fn const_truth(&self) -> Option<bool> {
        let l = self.left.as_const()?;
        let r = self.right.as_const()?;
        Some(self.op.eval_value(l, r))
    }

    /// Evaluate under a variable assignment.
    pub fn eval(&self, assignment: &Assignment) -> Result<bool> {
        // Deterministic (possibly string-valued) comparisons go through
        // Value ordering; variable-bearing ones through numeric eval.
        if let (Some(l), Some(r)) = (self.left.as_const(), self.right.as_const()) {
            return Ok(self.op.eval_value(l, r));
        }
        Ok(self.op.eval_f64(
            self.left.eval_f64(assignment)?,
            self.right.eval_f64(assignment)?,
        ))
    }

    /// All distinct variables mentioned by the atom.
    pub fn variables(&self) -> Vec<RandomVar> {
        let mut out = Vec::new();
        self.left.collect_vars(&mut out);
        self.right.collect_vars(&mut out);
        out
    }

    /// Rewrite as `expr θ 0` (left minus right), simplified. The
    /// normalized form feeds the linear bounds propagation.
    pub fn normalized(&self) -> (Equation, CmpOp) {
        ((self.left.clone() - self.right.clone()).simplify(), self.op)
    }

    /// Equality atom over continuous variables carries zero probability
    /// mass (paper Section III-C case 3): `Y = c` can be *treated as*
    /// inconsistent, `Y ≠ c` as true — unless the two sides are
    /// syntactically identical.
    pub fn is_zero_measure_eq(&self) -> bool {
        self.op == CmpOp::Eq
            && !self.is_deterministic()
            && self.left != self.right
            && self.variables().iter().any(|v| !v.is_discrete())
    }

    /// Dual of [`Atom::is_zero_measure_eq`]: `Y ≠ (·)` is almost surely
    /// true for continuous `Y` (unless trivially `Y ≠ Y`).
    pub fn is_almost_surely_true_ne(&self) -> bool {
        self.op == CmpOp::Ne
            && !self.is_deterministic()
            && self.left != self.right
            && self.variables().iter().any(|v| !v.is_discrete())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op.symbol(), self.right)
    }
}

/// Shorthand constructors used all over the tests and workloads.
pub mod atoms {
    use super::*;

    pub fn lt(l: impl Into<Equation>, r: impl Into<Equation>) -> Atom {
        Atom::new(l, CmpOp::Lt, r)
    }
    pub fn le(l: impl Into<Equation>, r: impl Into<Equation>) -> Atom {
        Atom::new(l, CmpOp::Le, r)
    }
    pub fn gt(l: impl Into<Equation>, r: impl Into<Equation>) -> Atom {
        Atom::new(l, CmpOp::Gt, r)
    }
    pub fn ge(l: impl Into<Equation>, r: impl Into<Equation>) -> Atom {
        Atom::new(l, CmpOp::Ge, r)
    }
    pub fn eq(l: impl Into<Equation>, r: impl Into<Equation>) -> Atom {
        Atom::new(l, CmpOp::Eq, r)
    }
    pub fn ne(l: impl Into<Equation>, r: impl Into<Equation>) -> Atom {
        Atom::new(l, CmpOp::Ne, r)
    }
}

#[cfg(test)]
mod tests {
    use super::atoms::*;
    use super::*;
    use crate::vars::RandomVar;
    use pip_dist::prelude::builtin;

    fn y() -> RandomVar {
        RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
    }

    fn d() -> RandomVar {
        RandomVar::create(builtin::bernoulli(), &[0.5]).unwrap()
    }

    #[test]
    fn negate_and_flip_are_involutions_through_eval() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            for (l, r) in [(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)] {
                assert_eq!(op.eval_f64(l, r), !op.negate().eval_f64(l, r));
                assert_eq!(op.eval_f64(l, r), op.flip().eval_f64(r, l));
                assert_eq!(op.negate().negate(), op);
            }
        }
    }

    #[test]
    fn const_truth_for_deterministic_atoms() {
        assert_eq!(lt(1.0, 2.0).const_truth(), Some(true));
        assert_eq!(ge(1.0, 2.0).const_truth(), Some(false));
        let v = y();
        assert_eq!(gt(Equation::from(v), 0.0).const_truth(), None);
        // strings compare lexicographically
        let s = Atom::new(
            Equation::val(Value::str("LA")),
            CmpOp::Lt,
            Equation::val(Value::str("NY")),
        );
        assert_eq!(s.const_truth(), Some(true));
    }

    #[test]
    fn eval_under_assignment() {
        let v = y();
        let mut a = Assignment::new();
        a.set(v.key, 7.5);
        let atom = ge(Equation::from(v.clone()), 7.0);
        assert!(atom.eval(&a).unwrap());
        assert!(!atom.negate().eval(&a).unwrap());
        let unbound = gt(Equation::from(y()), 0.0);
        assert!(unbound.eval(&a).is_err());
    }

    #[test]
    fn zero_measure_equalities() {
        let v = y();
        let eq_atom = eq(Equation::from(v.clone()), 3.0);
        assert!(eq_atom.is_zero_measure_eq());
        let identity = Atom::new(
            Equation::from(v.clone()),
            CmpOp::Eq,
            Equation::from(v.clone()),
        );
        assert!(!identity.is_zero_measure_eq());
        let ne_atom = ne(Equation::from(v), 3.0);
        assert!(ne_atom.is_almost_surely_true_ne());
        // Discrete equality has mass — not zero-measure.
        let disc = eq(Equation::from(d()), 1.0);
        assert!(!disc.is_zero_measure_eq());
        // Deterministic equality untouched.
        assert!(!eq(3.0, 3.0).is_zero_measure_eq());
    }

    #[test]
    fn normalization_moves_everything_left() {
        let v = y();
        let atom = gt(Equation::from(v.clone()) * 2.0, 6.0);
        let (expr, op) = atom.normalized();
        assert_eq!(op, CmpOp::Gt);
        let (coeffs, c) = expr.linear_coeffs().unwrap();
        assert_eq!(coeffs[&v.key], 2.0);
        assert_eq!(c, -6.0);
    }

    #[test]
    fn display() {
        let s = le(1.0, 2.0).to_string();
        assert!(s.contains("<="), "{s}");
    }
}
