//! Random-variable identities (paper Section III-B).
//!
//! A PIP random variable is a *reference*: a unique identifier plus a
//! subscript (for multivariate distributions), a distribution class, and
//! that class's parameters. The identifier — not the struct instance — is
//! a variable's identity: the same variable may appear at many points in a
//! database, and any sample must assign it one consistent value.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pip_core::Result;
use pip_dist::{DistRef, DistributionRegistry};

/// Unique variable identifier, allocated by [`VarId::fresh`] or assigned
/// explicitly by test/workload code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u64);

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

impl VarId {
    /// Allocate a process-unique id (the `CREATE_VARIABLE` counter).
    pub fn fresh() -> Self {
        VarId(NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Ensure future [`VarId::fresh`] calls return ids `> id`.
    ///
    /// The next id [`VarId::fresh`] would hand out. Checkpoints persist
    /// this watermark so recovery can re-reserve the full allocated
    /// range, including variables that no longer appear in any table.
    pub fn watermark() -> u64 {
        NEXT_VAR_ID.load(Ordering::Relaxed)
    }

    /// Catalog recovery re-materializes variables with their *original*
    /// ids (sampling seeds derive from the id, so identity must round
    /// trip); afterwards the allocator must be advanced past every
    /// recovered id or fresh variables would collide with stored ones.
    pub fn reserve_through(id: u64) {
        let floor = id.saturating_add(1);
        let mut cur = NEXT_VAR_ID.load(Ordering::Relaxed);
        while cur < floor {
            match NEXT_VAR_ID.compare_exchange_weak(
                cur,
                floor,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// `(id, subscript)` pair — the key under which samplers store assigned
/// values. Two [`RandomVar`]s with equal keys *are* the same variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarKey {
    pub id: VarId,
    pub subscript: u32,
}

/// A symbolic random variable: identity plus its distribution class and
/// parameters.
///
/// Equality and hashing are by [`VarKey`] only; the class/params are
/// carried along so the sampling layer never needs a side lookup, but the
/// id fully determines them (one `CREATE_VARIABLE` call per id).
#[derive(Debug, Clone)]
pub struct RandomVar {
    pub key: VarKey,
    pub class: DistRef,
    pub params: Arc<[f64]>,
}

impl RandomVar {
    /// Create a fresh univariate variable of the given class.
    pub fn create(class: DistRef, params: &[f64]) -> Result<Self> {
        class.check_params(params)?;
        Ok(RandomVar {
            key: VarKey {
                id: VarId::fresh(),
                subscript: 0,
            },
            class,
            params: Arc::from(params),
        })
    }

    /// Create via the registry, mirroring SQL `CREATE_VARIABLE('Normal', …)`.
    pub fn create_named(
        registry: &DistributionRegistry,
        name: &str,
        params: &[f64],
    ) -> Result<Self> {
        let class = registry.resolve(name, params)?;
        Ok(Self::create(class, params).expect("params already validated"))
    }

    /// A sibling component of the same joint (multivariate) variable.
    ///
    /// Components share the id — the independence analysis in
    /// `pip-sampling` treats all subscripts of one id as one dependent
    /// block, exactly as the paper prescribes for `MVNormal`-style
    /// distributions (Section IV-A(c)).
    pub fn component(&self, subscript: u32) -> Self {
        RandomVar {
            key: VarKey {
                id: self.key.id,
                subscript,
            },
            class: Arc::clone(&self.class),
            params: Arc::clone(&self.params),
        }
    }

    pub fn id(&self) -> VarId {
        self.key.id
    }

    pub fn is_discrete(&self) -> bool {
        self.class.is_discrete()
    }
}

impl PartialEq for RandomVar {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for RandomVar {}

impl Hash for RandomVar {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key.hash(state);
    }
}

impl fmt::Display for RandomVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key.id)?;
        if self.key.subscript != 0 {
            write!(f, "[{}]", self.key.subscript)?;
        }
        write!(f, "~{}(", self.class.name())?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// An assignment of concrete values to variables — one sampled world
/// restricted to the variables a query mentions.
#[derive(Debug, Clone, Default)]
pub struct Assignment {
    map: std::collections::HashMap<VarKey, f64>,
}

impl Assignment {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, key: VarKey, value: f64) {
        self.map.insert(key, value);
    }

    pub fn get(&self, key: VarKey) -> Option<f64> {
        self.map.get(&key).copied()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn clear(&mut self) {
        self.map.clear()
    }

    /// Merge `other` into `self` (later wins on conflicts).
    pub fn extend(&mut self, other: &Assignment) {
        for (k, v) in &other.map {
            self.map.insert(*k, *v);
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&VarKey, &f64)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_dist::prelude::builtin;

    #[test]
    fn fresh_ids_are_unique() {
        let a = VarId::fresh();
        let b = VarId::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn reserve_through_advances_the_allocator() {
        let a = VarId::fresh();
        let target = a.0 + 1000;
        VarId::reserve_through(target);
        assert!(VarId::fresh().0 > target);
        // Reserving backwards never rewinds.
        VarId::reserve_through(1);
        assert!(VarId::fresh().0 > target);
    }

    #[test]
    fn create_validates_params() {
        assert!(RandomVar::create(builtin::normal(), &[0.0, 1.0]).is_ok());
        assert!(RandomVar::create(builtin::normal(), &[0.0, -1.0]).is_err());
    }

    #[test]
    fn create_named_resolves_registry() {
        let reg = DistributionRegistry::with_builtins();
        let v = RandomVar::create_named(&reg, "Exponential", &[2.0]).unwrap();
        assert_eq!(v.class.name(), "Exponential");
        assert!(RandomVar::create_named(&reg, "Nope", &[]).is_err());
    }

    #[test]
    fn equality_is_by_key_not_params() {
        let v = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let mut w = v.clone();
        w.params = Arc::from(&[9.0, 9.0][..]); // same key, different params
        assert_eq!(v, w);
        let c = v.component(1);
        assert_ne!(v, c);
        assert_eq!(c.id(), v.id());
    }

    #[test]
    fn display_forms() {
        let v = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
        let s = v.to_string();
        assert!(s.contains("~Normal(0,1)"), "{s}");
        let c = v.component(2);
        assert!(c.to_string().contains("[2]~Normal"));
    }

    #[test]
    fn assignment_set_get_extend() {
        let v = RandomVar::create(builtin::uniform(), &[0.0, 1.0]).unwrap();
        let mut a = Assignment::new();
        assert!(a.is_empty());
        a.set(v.key, 0.25);
        assert_eq!(a.get(v.key), Some(0.25));
        let mut b = Assignment::new();
        b.set(v.key, 0.75);
        a.extend(&b);
        assert_eq!(a.get(v.key), Some(0.75));
        assert_eq!(a.len(), 1);
        a.clear();
        assert!(a.get(v.key).is_none());
    }
}
