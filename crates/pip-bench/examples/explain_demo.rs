fn main() {
    use pip_engine::{sql, Database};
    use pip_sampling::SamplerConfig;
    let db = Database::new();
    let cfg = SamplerConfig::default();
    sql::run(&db, "CREATE TABLE f (fa INT, fb INT, amount FLOAT)", &cfg).unwrap();
    sql::run(&db, "CREATE TABLE da (ak INT, aw FLOAT)", &cfg).unwrap();
    sql::run(&db, "CREATE TABLE dbt (bk INT, bw SYMBOLIC)", &cfg).unwrap();
    for i in 0..50i64 {
        sql::run(
            &db,
            &format!("INSERT INTO f VALUES ({}, {}, {})", i % 10, i % 5, i),
            &cfg,
        )
        .unwrap();
    }
    for i in 0..10i64 {
        sql::run(&db, &format!("INSERT INTO da VALUES ({}, {})", i, i), &cfg).unwrap();
    }
    for i in 0..5i64 {
        sql::run(
            &db,
            &format!(
                "INSERT INTO dbt VALUES ({}, create_variable('Normal', {}, 1))",
                i, i
            ),
            &cfg,
        )
        .unwrap();
    }
    let t = sql::run(&db, "EXPLAIN ANALYZE SELECT expected_sum(amount) FROM f, da, dbt WHERE fa = ak AND fb = bk AND ak < 4", &cfg).unwrap();
    for r in t.rows() {
        println!("{}", r.cells[0].as_const().unwrap().as_str().unwrap());
    }
    println!("---- ANALYZE ----");
    let t = sql::run(&db, "ANALYZE", &cfg).unwrap();
    for r in t.rows() {
        let cells: Vec<String> = r.cells.iter().map(|c| format!("{c}")).collect();
        println!("{}", cells.join("\t"));
    }
}
