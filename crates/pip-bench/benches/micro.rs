//! Criterion micro-benchmarks for PIP's hot paths: special functions,
//! the consistency checker (Algorithm 3.2), independence decomposition,
//! the expectation operator's strategies, `expected_max` early exit, and
//! the c-table algebra. One group per ablation called out in DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use pip_core::{DataType, Schema};
use pip_ctable::{algebra, consistency_check, CRow, CTable};
use pip_dist::prelude::builtin;
use pip_dist::special;
use pip_expr::{atoms, independent_groups, Conjunction, Equation, RandomVar};
use pip_sampling::{conf, expectation, expected_max_const, SamplerConfig};

fn normal_var() -> RandomVar {
    RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap()
}

fn bench_special(c: &mut Criterion) {
    let mut g = c.benchmark_group("special");
    g.bench_function("erf", |b| b.iter(|| special::erf(black_box(1.234))));
    g.bench_function("inverse_normal_cdf", |b| {
        b.iter(|| special::inverse_normal_cdf(black_box(0.7)))
    });
    g.bench_function("ln_gamma", |b| b.iter(|| special::ln_gamma(black_box(7.5))));
    g.bench_function("gamma_p", |b| {
        b.iter(|| special::gamma_p(black_box(3.0), black_box(2.5)))
    });
    g.finish();
}

fn chain_condition(n: usize) -> Conjunction {
    // v0 > 0, v1 > v0, v2 > v1, ... — one long dependent chain.
    let vars: Vec<RandomVar> = (0..n).map(|_| normal_var()).collect();
    let mut atoms_v = vec![atoms::gt(Equation::from(vars[0].clone()), 0.0)];
    for w in vars.windows(2) {
        atoms_v.push(atoms::gt(
            Equation::from(w[1].clone()),
            Equation::from(w[0].clone()),
        ));
    }
    Conjunction::of(atoms_v)
}

fn bench_consistency(c: &mut Criterion) {
    let mut g = c.benchmark_group("consistency");
    for n in [4usize, 16, 64] {
        let cond = chain_condition(n);
        g.bench_function(format!("alg3.2_chain_{n}"), |b| {
            b.iter(|| consistency_check(black_box(&cond)))
        });
    }
    g.finish();
}

fn bench_groups(c: &mut Criterion) {
    let mut g = c.benchmark_group("independence");
    // 32 disjoint single-variable atoms → 32 groups.
    let disjoint = Conjunction::of(
        (0..32)
            .map(|_| atoms::gt(Equation::from(normal_var()), 0.0))
            .collect(),
    );
    g.bench_function("decompose_disjoint_32", |b| {
        b.iter(|| independent_groups(black_box(&disjoint), &[]))
    });
    let chained = chain_condition(32);
    g.bench_function("decompose_chain_32", |b| {
        b.iter(|| independent_groups(black_box(&chained), &[]))
    });
    g.finish();
}

fn bench_expectation(c: &mut Criterion) {
    let mut g = c.benchmark_group("expectation");
    g.sample_size(20);
    let y = normal_var();
    let cond = Conjunction::of(vec![
        atoms::gt(Equation::from(y.clone()), -1.0),
        atoms::lt(Equation::from(y.clone()), 1.0),
    ]);
    let expr = Equation::from(y);
    let cdf_cfg = SamplerConfig::fixed_samples(500);
    g.bench_function("cdf_bounded_500", |b| {
        b.iter(|| expectation(black_box(&expr), black_box(&cond), false, &cdf_cfg, 0))
    });
    let naive = SamplerConfig::naive(500);
    g.bench_function("rejection_500", |b| {
        b.iter(|| expectation(black_box(&expr), black_box(&cond), false, &naive, 0))
    });
    g.bench_function("conf_exact_cdf", |b| {
        b.iter(|| conf(black_box(&cond), &cdf_cfg, 0))
    });
    g.finish();
}

fn max_table(n_rows: usize) -> CTable {
    let schema = Schema::of(&[("v", DataType::Symbolic)]);
    let mut t = CTable::empty(schema);
    for i in 0..n_rows {
        let y = normal_var();
        let p = 0.9 / (1.0 + i as f64 * 0.1);
        let z = special::inverse_normal_cdf(1.0 - p);
        t.push(CRow::new(
            vec![Equation::val((n_rows - i) as f64)],
            Conjunction::single(atoms::gt(Equation::from(y), z)),
        ))
        .unwrap();
    }
    t
}

fn bench_expected_max(c: &mut Criterion) {
    let mut g = c.benchmark_group("expected_max");
    g.sample_size(20);
    let t = max_table(200);
    let cfg = SamplerConfig::default();
    g.bench_function("full_scan", |b| {
        b.iter(|| expected_max_const(black_box(&t), "v", &cfg, 0.0))
    });
    g.bench_function("early_exit_p0.1", |b| {
        b.iter(|| expected_max_const(black_box(&t), "v", &cfg, 0.1))
    });
    g.finish();
}

fn bench_algebra(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctable_algebra");
    let schema = Schema::of(&[("v", DataType::Symbolic)]);
    let mut t = CTable::empty(schema);
    for _ in 0..256 {
        let y = normal_var();
        t.push(CRow::new(
            vec![Equation::from(y.clone())],
            Conjunction::single(atoms::gt(Equation::from(y), 0.0)),
        ))
        .unwrap();
    }
    g.bench_function("select_symbolic_256", |b| {
        b.iter(|| {
            algebra::select(black_box(&t), |cells| {
                Ok(algebra::SelectOutcome::Conditional(vec![atoms::lt(
                    cells[0].clone(),
                    5.0,
                )]))
            })
        })
    });
    g.bench_function("product_16x16", |b| {
        let small = CTable::new(t.schema().clone(), t.rows()[..16].to_vec()).unwrap();
        b.iter(|| algebra::product(black_box(&small), black_box(&small)))
    });
    g.bench_function("distinct_256", |b| {
        b.iter(|| algebra::distinct(black_box(&t)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_special,
    bench_consistency,
    bench_groups,
    bench_expectation,
    bench_expected_max,
    bench_algebra
);
criterion_main!(benches);
