//! **Figure 6** — query evaluation times for Q1–Q4 in PIP (split into
//! query and sample phases) and Sample-First (sample count adjusted to
//! match PIP's accuracy: ×1 for Q1/Q2 where nothing is discarded, ×10
//! for Q3 at selectivity 0.1, ×200 for Q4 at selectivity 0.005 — the
//! paper's "(2985 s)" off-the-chart bar).
//!
//! PIP runs with the exact-CDF shortcut disabled so that both systems
//! genuinely draw the same number of samples, as in the paper's setup;
//! the `ablation_exact` binary shows what the exact paths buy on top.

use serde::Serialize;
use std::time::Instant;

use pip_engine::{
    execute_materialized_with_stats, execute_with_stats, optimize, optimize_with, scalar_result,
    Database, OptimizerConfig, Plan,
};
use pip_sampling::SamplerConfig;
use pip_workloads::plans::{self, StarShape};
use pip_workloads::queries::{self, Timed};
use pip_workloads::tpch::{generate, TpchConfig};

#[derive(Serialize)]
struct Row {
    query: &'static str,
    pip_query_secs: f64,
    pip_sample_secs: f64,
    pip_total_secs: f64,
    sf_total_secs: f64,
    sf_worlds: usize,
}

fn emit(query: &'static str, pip: Timed, sf: Timed, sf_worlds: usize) {
    let r = Row {
        query,
        pip_query_secs: pip.query_secs,
        pip_sample_secs: pip.sample_secs,
        pip_total_secs: pip.query_secs + pip.sample_secs,
        sf_total_secs: sf.query_secs + sf.sample_secs,
        sf_worlds,
    };
    pip_bench::row(
        &[
            query.to_string(),
            format!("{:.3}", r.pip_query_secs),
            format!("{:.3}", r.pip_sample_secs),
            format!("{:.3}", r.pip_total_secs),
            format!("{:.3}", r.sf_total_secs),
            format!("{sf_worlds}"),
        ],
        &r,
    );
}

/// One timed executor run: (query-phase secs, result value).
fn timed_exec(db: &Database, plan: &Plan, cfg: &SamplerConfig, materialized: bool) -> (f64, f64) {
    let (table, stats) = if materialized {
        execute_materialized_with_stats(db, plan, cfg).expect("materialized exec")
    } else {
        execute_with_stats(db, plan, cfg).expect("streaming exec")
    };
    (stats.query_secs, scalar_result(&table).expect("scalar"))
}

/// Best-of-`trials` query-phase seconds, plus the (deterministic, hence
/// trial-invariant) result value for the cross-variant bit check.
fn best_of(
    trials: usize,
    db: &Database,
    plan: &Plan,
    cfg: &SamplerConfig,
    materialized: bool,
) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut value = f64::NAN;
    for _ in 0..trials {
        let (secs, v) = timed_exec(db, plan, cfg, materialized);
        best = best.min(secs);
        value = v;
    }
    (best, value)
}

#[derive(Serialize)]
struct ExecSummary {
    workload: &'static str,
    customers: usize,
    suppliers: usize,
    selectivity: f64,
    /// Legacy materializing executor on the predicate-pushdown-only plan
    /// (the pre-refactor engine configuration).
    materialized_query_secs: f64,
    /// Materializing executor plus projection pushdown: isolates what
    /// column pruning buys when intermediates are cloned wholesale.
    materialized_pushdown_query_secs: f64,
    /// Pipelined executor, predicate pushdown only.
    streaming_query_secs: f64,
    /// Pipelined executor plus projection pushdown (the shipped default).
    streaming_pushdown_query_secs: f64,
    executor_speedup: f64,
    pushdown_speedup_materialized: f64,
    pushdown_speedup_streaming: f64,
    total_speedup: f64,
    bit_identical: bool,
}

/// The fig6 join workload (Q3's selective join as a full engine plan),
/// run through the materializing executor and the pipelined executor
/// before/after cost-gated projection pushdown. Each executor gets the
/// plan its own cost target produces (`OptimizerConfig::materializing`
/// prunes aggressively; the streaming default prunes only where the
/// narrower rows repay the extra stage).
fn exec_comparison(scale: f64) -> (ExecSummary, Vec<PlanShape>) {
    let data = generate(&TpchConfig::scaled(scale, 0x33));
    let sel = 0.1;
    let db = plans::join_db(&data, sel).expect("join db");
    let raw = plans::join_plan();
    let pred_only = pip_engine::optimize::push_selects(&db, raw.clone()).expect("push_selects");
    let full_mat = optimize_with(&db, raw.clone(), &OptimizerConfig::materializing())
        .expect("optimize for materializing");
    let full_stream = optimize(&db, raw).expect("optimize");
    // A fixed sampling budget keeps the sample phase identical across
    // variants; only the query phase is under test.
    let cfg = SamplerConfig::fixed_samples(200);
    let trials = 9;

    println!("\n# Executor comparison on the fig6 join workload (Q3 shape, sel {sel}):");
    println!("# materializing (pre-refactor) vs pipelined, before/after cost-gated pushdown.");
    pip_bench::header(&["variant", "query_secs", "value"]);
    let (mat_secs, mat_v) = best_of(trials, &db, &pred_only, &cfg, true);
    println!("materialized\t{mat_secs:.4}\t{mat_v:.3}");
    let (mat_push_secs, mat_push_v) = best_of(trials, &db, &full_mat, &cfg, true);
    println!("materialized+pushdown\t{mat_push_secs:.4}\t{mat_push_v:.3}");
    let (stream_secs, stream_v) = best_of(trials, &db, &pred_only, &cfg, false);
    println!("streaming\t{stream_secs:.4}\t{stream_v:.3}");
    let (push_secs, push_v) = best_of(trials, &db, &full_stream, &cfg, false);
    println!("streaming+pushdown\t{push_secs:.4}\t{push_v:.3}");

    let bit_identical = [mat_push_v, stream_v, push_v]
        .iter()
        .all(|v| v.to_bits() == mat_v.to_bits());
    assert!(
        bit_identical,
        "executor variants disagree: {mat_v} / {mat_push_v} / {stream_v} / {push_v}"
    );
    let summary = ExecSummary {
        workload: "fig6_q3_join",
        customers: data.customers.len(),
        suppliers: data.suppliers.len(),
        selectivity: sel,
        materialized_query_secs: mat_secs,
        materialized_pushdown_query_secs: mat_push_secs,
        streaming_query_secs: stream_secs,
        streaming_pushdown_query_secs: push_secs,
        executor_speedup: mat_secs / stream_secs,
        pushdown_speedup_materialized: mat_secs / mat_push_secs,
        pushdown_speedup_streaming: stream_secs / push_secs,
        total_speedup: mat_secs / push_secs,
        bit_identical,
    };
    println!(
        "# speedup: executor {:.2}x, pushdown (materialized) {:.2}x, pushdown (streaming) {:.2}x, total {:.2}x",
        summary.executor_speedup,
        summary.pushdown_speedup_materialized,
        summary.pushdown_speedup_streaming,
        summary.total_speedup
    );
    let shapes = vec![
        PlanShape {
            name: "fig6_join_pred_only",
            shape: pred_only.shape_json(),
        },
        PlanShape {
            name: "fig6_join_materializing",
            shape: full_mat.shape_json(),
        },
        PlanShape {
            name: "fig6_join_streaming",
            shape: full_stream.shape_json(),
        },
    ];
    (summary, shapes)
}

#[derive(Serialize)]
struct JoinOrderSummary {
    workload: &'static str,
    fact_rows: usize,
    dim_a_rows: usize,
    dim_b_rows: usize,
    dim_c_rows: usize,
    c_selectivity: f64,
    /// Query phase of the plan executed in written order (predicate +
    /// projection pushdown only — the pre-cost-based-optimizer engine).
    written_query_secs: f64,
    /// Query phase of the cost-based plan (join graph reordered by
    /// estimated cardinality).
    cost_based_query_secs: f64,
    reorder_speedup: f64,
    values_identical: bool,
}

/// The join-order workload: a 4-table star with skewed cardinalities,
/// written in FROM-clause product order. Compares written-order
/// execution against the cost-based optimizer's plan on the pipelined
/// executor, and FAILS (panics → non-zero exit, caught by CI's bench
/// smoke) if the optimizer's plan is measurably worse than written
/// order.
fn join_order_comparison(scale: f64) -> (JoinOrderSummary, Vec<PlanShape>) {
    let shape = StarShape::of(((2400.0 * scale) as usize).max(60));
    let db = plans::star_db(&shape).expect("star db");
    let raw = plans::star_plan_written(&shape);
    let written_cfg = OptimizerConfig {
        reorder_joins: false,
        ..OptimizerConfig::default()
    };
    let written = optimize_with(&db, raw.clone(), &written_cfg).expect("written-order plan");
    let cost_based = optimize(&db, raw).expect("cost-based plan");
    let cfg = SamplerConfig::fixed_samples(50);
    let trials = 9;

    println!("\n# Join-order workload: 4-table star, skewed cardinalities, written as products.");
    println!(
        "# fact={} dim_a={} dim_b={} dim_c={} (filter keeps {:.0}%)",
        shape.fact,
        shape.dim_a,
        shape.dim_b,
        shape.dim_c,
        shape.c_selectivity * 100.0
    );
    pip_bench::header(&["variant", "query_secs", "value"]);
    let (written_secs, written_v) = best_of(trials, &db, &written, &cfg, false);
    println!("written-order\t{written_secs:.4}\t{written_v:.3}");
    let (cost_secs, cost_v) = best_of(trials, &db, &cost_based, &cfg, false);
    println!("cost-based\t{cost_secs:.4}\t{cost_v:.3}");

    // The aggregate sums integer-valued doubles, so the total is exact
    // and must match bit-for-bit across plan shapes.
    let values_identical = written_v.to_bits() == cost_v.to_bits();
    assert!(
        values_identical,
        "plans disagree: written {written_v} vs cost-based {cost_v}"
    );
    let summary = JoinOrderSummary {
        workload: "star_join_order",
        fact_rows: shape.fact,
        dim_a_rows: shape.dim_a,
        dim_b_rows: shape.dim_b,
        dim_c_rows: shape.dim_c,
        c_selectivity: shape.c_selectivity,
        written_query_secs: written_secs,
        cost_based_query_secs: cost_secs,
        reorder_speedup: written_secs / cost_secs,
        values_identical,
    };
    println!(
        "# cost-based plan speedup over written order: {:.2}x",
        summary.reorder_speedup
    );
    // The CI gate: a cost-based optimizer that picks a plan worse than
    // the written order is a regression, not a tuning matter.
    assert!(
        cost_secs <= written_secs * 1.1,
        "cost-based plan ({cost_secs:.4}s) is worse than written order ({written_secs:.4}s)"
    );
    let shapes = vec![
        PlanShape {
            name: "star_written_order",
            shape: written.shape_json(),
        },
        PlanShape {
            name: "star_cost_based",
            shape: cost_based.shape_json(),
        },
    ];
    (summary, shapes)
}

/// One workload query's optimizer-chosen plan shape (the logical
/// operator tree as JSON — what `EXPLAIN (FORMAT JSON)` reports under
/// `logical`, minus the volatile row estimates).
#[derive(Serialize, Clone, PartialEq)]
struct PlanShape {
    name: &'static str,
    shape: String,
}

/// Everything recorded into `BENCH_exec.json`.
#[derive(Serialize)]
struct BenchRecord {
    exec: ExecSummary,
    join_order: JoinOrderSummary,
    /// Workload scale the plan shapes were captured at (shapes are only
    /// diffed between runs at the same scale — statistics, and thus
    /// cost-based choices, legitimately change with scale).
    plan_scale: String,
    /// The plan-shape regression corpus: every workload query's
    /// optimizer output. The guard fails the run when a shape changes
    /// against the previously recorded file on the same inputs.
    plans: Vec<PlanShape>,
}

/// Compare freshly captured plan shapes against the previously recorded
/// `BENCH_exec.json` (if it exists, has a plan corpus, and was captured
/// at the same scale). An unexpected shape change panics — a cost-model
/// tweak that silently flips a workload plan is exactly the regression
/// this corpus exists to catch. Re-baseline deliberate changes with
/// `PIP_BENCH_ACCEPT_PLANS=1`.
fn guard_plan_shapes(previous_path: &str, scale_tag: &str, plans: &[PlanShape]) {
    let Ok(old) = std::fs::read_to_string(previous_path) else {
        println!("# plan guard: no previous {previous_path}, recording baseline shapes");
        return;
    };
    if !old.contains("\"plans\":") {
        println!("# plan guard: previous record predates the plan corpus, recording baseline");
        return;
    }
    let scale_needle = format!(
        "\"plan_scale\":{}",
        serde_json::to_string(scale_tag).expect("scale json")
    );
    if !old.contains(&scale_needle) {
        println!("# plan guard: previous record at a different scale, recording baseline");
        return;
    }
    let mut changed: Vec<&str> = Vec::new();
    for p in plans {
        let entry = serde_json::to_string(p).expect("plan entry json");
        if !old.contains(&entry) {
            changed.push(p.name);
        }
    }
    if changed.is_empty() {
        println!(
            "# plan guard: all {} workload plan shapes unchanged",
            plans.len()
        );
        return;
    }
    if std::env::var("PIP_BENCH_ACCEPT_PLANS").as_deref() == Ok("1") {
        println!(
            "# plan guard: accepting changed shapes for {changed:?} (PIP_BENCH_ACCEPT_PLANS=1)"
        );
        return;
    }
    panic!(
        "optimizer plan shape changed for {changed:?} on unchanged inputs; \
         inspect the new shapes in the run output and re-baseline with PIP_BENCH_ACCEPT_PLANS=1 if intended"
    );
}

fn main() {
    let quick = pip_bench::quick();
    let scale = pip_bench::scale() * if quick { 0.05 } else { 1.0 };
    let data = generate(&TpchConfig::scaled(scale, 0x66));
    let n = ((1000.0 * scale) as usize).max(20);

    println!("# Figure 6: query evaluation times, PIP (query+sample) vs Sample-First.");
    println!("# SF sample counts adjusted to match PIP accuracy (x10 for Q3, x200 for Q4).");
    pip_bench::header(&[
        "query",
        "pip_query_secs",
        "pip_sample_secs",
        "pip_total_secs",
        "sf_total_secs",
        "sf_worlds",
    ]);

    // Force genuine sampling in PIP for an apples-to-apples "n samples"
    // comparison (the paper's PIP also sampled these).
    let mut cfg = SamplerConfig::fixed_samples(n);
    cfg.use_exact_cdf = false;

    // Q1 / Q2: no selection — SF needs no extra worlds.
    let pip = queries::q1_pip(&data, &cfg).expect("q1 pip");
    let sf = queries::q1_sf(&data, n, 1).expect("q1 sf");
    emit("Q1", pip, sf, n);

    let pip = queries::q2_pip(&data, &cfg, n).expect("q2 pip");
    let sf = queries::q2_sf(&data, n, 2).expect("q2 sf");
    emit("Q2", pip, sf, n);

    // Q3: selectivity 0.1 → SF at 10×n.
    let sel3 = 0.1;
    let pip = queries::q3_pip(&data, sel3, &cfg).expect("q3 pip");
    let sf_worlds = n * 10;
    let sf = queries::q3_sf(&data, sel3, sf_worlds, 3).expect("q3 sf");
    emit("Q3", pip, sf, sf_worlds);

    // Q4: selectivity 0.005 → SF at 200×n (the paper's 2985 s outlier).
    // Run Q4 over a reduced part table so the SF bar finishes in minutes
    // rather than hours; the cap is printed, never silent.
    let sel4 = 0.005;
    let data4 = generate(&TpchConfig::scaled(0.2 * scale, 0x66));
    let t0 = Instant::now();
    let pip4 = queries::q4_pip(&data4, sel4, &cfg).expect("q4 pip");
    let _ = t0;
    let sf_worlds = ((n as f64 / sel4) as usize).min(100_000);
    if sf_worlds < (n as f64 / sel4) as usize {
        println!(
            "# note: Q4 SF world count capped at {sf_worlds} (uncapped would be {}).",
            (n as f64 / sel4) as usize
        );
    }
    println!("# note: Q4 row uses a 0.2x part table for both systems.");
    let sf4 = queries::q4_sf(&data4, sel4, sf_worlds, 4).expect("q4 sf");
    emit(
        "Q4",
        Timed {
            value: f64::NAN,
            query_secs: pip4.query_secs,
            sample_secs: pip4.sample_secs,
        },
        Timed {
            value: f64::NAN,
            query_secs: sf4.query_secs,
            sample_secs: sf4.sample_secs,
        },
        sf_worlds,
    );

    // The join workload runs 4x the figure scale: query-phase cost is
    // what the executor comparison measures, so give it enough rows.
    let (exec, mut plans) = exec_comparison(4.0 * scale);
    let (join_order, star_plans) = join_order_comparison(scale);
    plans.extend(star_plans);

    // The plan-shape regression guard: same inputs must produce the
    // same optimizer output as the previously recorded run.
    let plan_scale = format!("{scale}");
    let path = std::env::var("PIP_BENCH_EXEC_OUT").unwrap_or_else(|_| "BENCH_exec.json".into());
    guard_plan_shapes(&path, &plan_scale, &plans);

    let record = BenchRecord {
        exec,
        join_order,
        plan_scale,
        plans,
    };
    let json = serde_json::to_string(&record).expect("record json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_exec.json");
    println!("# wrote {path}");
}
