//! **Figure 6** — query evaluation times for Q1–Q4 in PIP (split into
//! query and sample phases) and Sample-First (sample count adjusted to
//! match PIP's accuracy: ×1 for Q1/Q2 where nothing is discarded, ×10
//! for Q3 at selectivity 0.1, ×200 for Q4 at selectivity 0.005 — the
//! paper's "(2985 s)" off-the-chart bar).
//!
//! PIP runs with the exact-CDF shortcut disabled so that both systems
//! genuinely draw the same number of samples, as in the paper's setup;
//! the `ablation_exact` binary shows what the exact paths buy on top.

use serde::Serialize;
use std::time::Instant;

use pip_sampling::SamplerConfig;
use pip_workloads::queries::{self, Timed};
use pip_workloads::tpch::{generate, TpchConfig};

#[derive(Serialize)]
struct Row {
    query: &'static str,
    pip_query_secs: f64,
    pip_sample_secs: f64,
    pip_total_secs: f64,
    sf_total_secs: f64,
    sf_worlds: usize,
}

fn emit(query: &'static str, pip: Timed, sf: Timed, sf_worlds: usize) {
    let r = Row {
        query,
        pip_query_secs: pip.query_secs,
        pip_sample_secs: pip.sample_secs,
        pip_total_secs: pip.query_secs + pip.sample_secs,
        sf_total_secs: sf.query_secs + sf.sample_secs,
        sf_worlds,
    };
    pip_bench::row(
        &[
            query.to_string(),
            format!("{:.3}", r.pip_query_secs),
            format!("{:.3}", r.pip_sample_secs),
            format!("{:.3}", r.pip_total_secs),
            format!("{:.3}", r.sf_total_secs),
            format!("{sf_worlds}"),
        ],
        &r,
    );
}

fn main() {
    let scale = pip_bench::scale();
    let data = generate(&TpchConfig::scaled(scale, 0x66));
    let n = (1000.0 * scale) as usize;

    println!("# Figure 6: query evaluation times, PIP (query+sample) vs Sample-First.");
    println!("# SF sample counts adjusted to match PIP accuracy (x10 for Q3, x200 for Q4).");
    pip_bench::header(&[
        "query",
        "pip_query_secs",
        "pip_sample_secs",
        "pip_total_secs",
        "sf_total_secs",
        "sf_worlds",
    ]);

    // Force genuine sampling in PIP for an apples-to-apples "n samples"
    // comparison (the paper's PIP also sampled these).
    let mut cfg = SamplerConfig::fixed_samples(n);
    cfg.use_exact_cdf = false;

    // Q1 / Q2: no selection — SF needs no extra worlds.
    let pip = queries::q1_pip(&data, &cfg).expect("q1 pip");
    let sf = queries::q1_sf(&data, n, 1).expect("q1 sf");
    emit("Q1", pip, sf, n);

    let pip = queries::q2_pip(&data, &cfg, n).expect("q2 pip");
    let sf = queries::q2_sf(&data, n, 2).expect("q2 sf");
    emit("Q2", pip, sf, n);

    // Q3: selectivity 0.1 → SF at 10×n.
    let sel3 = 0.1;
    let pip = queries::q3_pip(&data, sel3, &cfg).expect("q3 pip");
    let sf_worlds = n * 10;
    let sf = queries::q3_sf(&data, sel3, sf_worlds, 3).expect("q3 sf");
    emit("Q3", pip, sf, sf_worlds);

    // Q4: selectivity 0.005 → SF at 200×n (the paper's 2985 s outlier).
    // Run Q4 over a reduced part table so the SF bar finishes in minutes
    // rather than hours; the cap is printed, never silent.
    let sel4 = 0.005;
    let data4 = generate(&TpchConfig::scaled(0.2 * scale, 0x66));
    let t0 = Instant::now();
    let pip4 = queries::q4_pip(&data4, sel4, &cfg).expect("q4 pip");
    let _ = t0;
    let sf_worlds = ((n as f64 / sel4) as usize).min(100_000);
    if sf_worlds < (n as f64 / sel4) as usize {
        println!(
            "# note: Q4 SF world count capped at {sf_worlds} (uncapped would be {}).",
            (n as f64 / sel4) as usize
        );
    }
    println!("# note: Q4 row uses a 0.2x part table for both systems.");
    let sf4 = queries::q4_sf(&data4, sel4, sf_worlds, 4).expect("q4 sf");
    emit(
        "Q4",
        Timed {
            value: f64::NAN,
            query_secs: pip4.query_secs,
            sample_secs: pip4.sample_secs,
        },
        Timed {
            value: f64::NAN,
            query_secs: sf4.query_secs,
            sample_secs: sf4.sample_secs,
        },
        sf_worlds,
    );
}
