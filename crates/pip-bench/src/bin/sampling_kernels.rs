//! **Sampling kernels** — interpreted vs compiled sampling phase on the
//! figure 7(a) RMS workload (grouped Q4 at selectivity `e^-5.29`: per
//! part, `E[X·W | W > t]` with `X ~ Poisson`, `W ~ Exponential`).
//!
//! The query phase of this workload is ~free; the sampling phase is the
//! whole cost, which makes it the reference microbenchmark for the
//! sampling compiler (`SamplerConfig::compile`): slot-indexed evaluation
//! tapes + columnar sample blocks vs the tree-walking interpreted loop.
//! The two paths must be **bit-identical** — per-row estimates are
//! compared to the bit, at 1/2/4 threads, and the run *panics* (failing
//! CI's bench smoke) on any divergence.
//!
//! Three numbers are recorded. `cold_speedup` is a single evaluation
//! with an empty sample-block cache — pure tapes-vs-trees, with the
//! irreducible distribution draws (Poisson's product-of-uniforms loop
//! dominates this workload) common to both sides. `warm_speedup` is a
//! re-evaluation served from the block cache — the paper's experiment
//! loop and the server's prepared-statement path both re-run identical
//! (group, seed-site) draw sequences, which the cache skips entirely.
//! The headline `speedup` is the serving protocol itself: `passes`
//! repeated evaluations end to end, interpreted (re-draws every time)
//! vs compiled (draws once, reuses blocks after), and is what the ≥3x
//! acceptance gate checks.
//!
//! Writes `BENCH_sampling.json` (override with `PIP_BENCH_SAMPLING_OUT`).

use serde::Serialize;
use std::time::Instant;

use pip_sampling::{
    block_cache_clear, block_cache_stats, expectation, expected_sum, SamplerConfig,
};
use pip_workloads::queries;
use pip_workloads::tpch::{generate, TpchConfig, TpchData};

/// One timed pass over the workload: per-row conditional expectations
/// (the fig7a protocol), returning (sampling secs, estimates).
fn run_pass(data: &TpchData, sel: f64, cfg: &SamplerConfig) -> (f64, Vec<f64>) {
    let table = queries::q4_ctable(data, sel).expect("q4 ctable");
    let t0 = Instant::now();
    let mut estimates = Vec::with_capacity(table.len());
    for (i, row) in table.rows().iter().enumerate() {
        let r = expectation(&row.cells[1], &row.condition, false, cfg, i as u64).expect("q4 row");
        estimates.push(r.expectation);
    }
    (t0.elapsed().as_secs_f64(), estimates)
}

/// Best-of-`trials` sampling seconds (estimates are trial-invariant).
fn best_of(trials: usize, data: &TpchData, sel: f64, cfg: &SamplerConfig) -> (f64, Vec<f64>) {
    let mut best = f64::INFINITY;
    let mut estimates = Vec::new();
    for _ in 0..trials {
        let (secs, est) = run_pass(data, sel, cfg);
        best = best.min(secs);
        estimates = est;
    }
    (best, estimates)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[derive(Serialize)]
struct CacheSummary {
    hits: u64,
    misses: u64,
    entries: usize,
}

#[derive(Serialize)]
struct BenchRecord {
    workload: &'static str,
    parts: usize,
    selectivity: f64,
    n_samples: usize,
    trials: usize,
    /// Evaluations per serving-protocol measurement.
    passes: usize,
    /// Best-of sampling-phase seconds, one interpreted evaluation.
    interpreted_secs: f64,
    /// One compiled evaluation, empty block cache.
    compiled_cold_secs: f64,
    /// One compiled re-evaluation, warm block cache.
    compiled_warm_secs: f64,
    /// `passes` interpreted evaluations (each re-draws everything).
    interpreted_protocol_secs: f64,
    /// `passes` compiled evaluations from a cold start (first pass
    /// draws and fills the cache, the rest reuse blocks).
    compiled_protocol_secs: f64,
    /// The headline: serving-protocol speedup (gated ≥ 3x).
    speedup: f64,
    cold_speedup: f64,
    warm_speedup: f64,
    /// Compiled estimates == interpreted estimates, to the bit.
    bit_identical: bool,
    /// expected_sum over the workload at 1/2/4 threads, compiled and
    /// interpreted, all bit-identical.
    bit_identical_threads: bool,
    cache: CacheSummary,
}

fn main() {
    let quick = pip_bench::quick();
    let scale = pip_bench::scale() * if quick { 0.1 } else { 1.0 };
    let sel = (-5.29f64).exp();
    let n = if quick { 200 } else { 1000 };
    let trials = if quick { 2 } else { 5 };
    let passes = 8usize;
    let data = generate(&TpchConfig::scaled(0.2 * scale, 0x7A));

    println!(
        "# Sampling kernels: fig7a RMS workload (Q4, {} parts, {n} samples/row).",
        data.parts.len()
    );
    println!("# interpreted tree-walking loop vs compiled tapes + columnar sample blocks.");
    pip_bench::header(&["variant", "sample_secs", "speedup"]);

    let interp_cfg = SamplerConfig::fixed_samples(n).with_compile(false);
    let compiled_cfg = SamplerConfig::fixed_samples(n).with_compile(true);

    let (interp_secs, interp_est) = best_of(trials, &data, sel, &interp_cfg);
    println!("interpreted\t{interp_secs:.4}\t1.00");

    // Cold: one evaluation against an empty cache — tapes vs trees.
    let mut cold_best = f64::INFINITY;
    let mut compiled_est = Vec::new();
    for _ in 0..trials {
        block_cache_clear();
        let (secs, est) = run_pass(&data, sel, &compiled_cfg);
        cold_best = cold_best.min(secs);
        compiled_est = est;
    }
    let cold_speedup = interp_secs / cold_best;
    println!("compiled (cold cache)\t{cold_best:.4}\t{cold_speedup:.2}");

    // Warm: a re-evaluation of the identical (group, site) draw
    // sequences, served from the block cache.
    block_cache_clear();
    let _ = run_pass(&data, sel, &compiled_cfg);
    let (warm_secs, warm_est) = best_of(trials, &data, sel, &compiled_cfg);
    let cache = block_cache_stats();
    let warm_speedup = interp_secs / warm_secs;
    println!("compiled (warm cache)\t{warm_secs:.4}\t{warm_speedup:.2}");

    let bit_identical =
        bits(&interp_est) == bits(&compiled_est) && bits(&interp_est) == bits(&warm_est);
    assert!(
        bit_identical,
        "compiled estimates diverged from the interpreted path"
    );

    // The serving protocol: `passes` evaluations of the experiment, end
    // to end. The interpreted engine re-draws every sample every pass;
    // the compiled engine draws on the first pass and reuses blocks.
    let mut interp_protocol = f64::INFINITY;
    let mut compiled_protocol = f64::INFINITY;
    for _ in 0..trials {
        let mut total = 0.0;
        for _ in 0..passes {
            total += run_pass(&data, sel, &interp_cfg).0;
        }
        interp_protocol = interp_protocol.min(total);
        block_cache_clear();
        let mut total = 0.0;
        for _ in 0..passes {
            let (secs, est) = run_pass(&data, sel, &compiled_cfg);
            total += secs;
            assert!(bits(&est) == bits(&interp_est), "protocol pass diverged");
        }
        compiled_protocol = compiled_protocol.min(total);
    }
    let speedup = interp_protocol / compiled_protocol;
    println!(
        "serving protocol ({passes} passes)\t{compiled_protocol:.4} vs {interp_protocol:.4}\t{speedup:.2}"
    );

    // Thread sweep through the row-parallel aggregate head: compiled and
    // interpreted expected_sum must agree bitwise at every thread count.
    let table = queries::q4_ctable(&data, sel).expect("q4 ctable");
    let reference = expected_sum(&table, "sales", &interp_cfg)
        .expect("sum")
        .value;
    let mut bit_identical_threads = true;
    for threads in [1usize, 2, 4] {
        for cfg in [&interp_cfg, &compiled_cfg] {
            let v = expected_sum(&table, "sales", &cfg.clone().with_threads(threads))
                .expect("sum")
                .value;
            bit_identical_threads &= v.to_bits() == reference.to_bits();
        }
    }
    assert!(
        bit_identical_threads,
        "thread count or compile mode changed expected_sum"
    );

    let record = BenchRecord {
        workload: "fig7a_q4_rms",
        parts: data.parts.len(),
        selectivity: sel,
        n_samples: n,
        trials,
        passes,
        interpreted_secs: interp_secs,
        compiled_cold_secs: cold_best,
        compiled_warm_secs: warm_secs,
        interpreted_protocol_secs: interp_protocol,
        compiled_protocol_secs: compiled_protocol,
        speedup,
        cold_speedup,
        warm_speedup,
        bit_identical,
        bit_identical_threads,
        cache: CacheSummary {
            hits: cache.hits,
            misses: cache.misses,
            entries: cache.entries,
        },
    };
    println!(
        "# sampling-phase speedup {speedup:.2}x over {passes} passes ({cold_speedup:.2}x cold, {warm_speedup:.2}x warm; {} hits / {} misses); bit-identical: {bit_identical}",
        cache.hits, cache.misses
    );
    if !quick {
        // The acceptance gate: the compiler must be a real win on the
        // reference workload, not a lateral move. Quick (CI smoke) runs
        // skip the timing gate — shared runners make timing flaky — but
        // still enforce bit-identity above.
        assert!(
            speedup >= 3.0,
            "compiled sampling phase below the 3x target: {speedup:.2}x \
             (cold {cold_speedup:.2}x, warm {warm_speedup:.2}x)"
        );
    }

    let path =
        std::env::var("PIP_BENCH_SAMPLING_OUT").unwrap_or_else(|_| "BENCH_sampling.json".into());
    let json = serde_json::to_string(&record).expect("record json");
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_sampling.json");
    println!("# wrote {path}");
}
