//! **Ablations** — what each PIP optimization buys (DESIGN.md §3):
//!
//! 1. exact-CDF paths on/off (Q1: linearity of expectation; Q3/iceberg:
//!    exact interval probabilities);
//! 2. CDF-bounded sampling on/off (Q4 at selectivity 0.005);
//! 3. independence decomposition on/off (Q3: profit ⊥ delivery);
//! 4. `expected_max` early-exit precision sweep (Example 4.4).

use serde::Serialize;
use std::time::Instant;

use pip_core::{DataType, Schema};
use pip_ctable::{CRow, CTable};
use pip_dist::prelude::builtin;
use pip_dist::special;
use pip_expr::{atoms, Conjunction, Equation, RandomVar};
use pip_sampling::{expected_max_const, SamplerConfig};
use pip_workloads::queries;
use pip_workloads::tpch::{generate, TpchConfig};

#[derive(Serialize)]
struct Row {
    experiment: String,
    variant: String,
    secs: f64,
    rms_or_value: f64,
}

fn emit(experiment: &str, variant: &str, secs: f64, x: f64) {
    let r = Row {
        experiment: experiment.into(),
        variant: variant.into(),
        secs,
        rms_or_value: x,
    };
    pip_bench::row(
        &[
            experiment.to_string(),
            variant.to_string(),
            format!("{secs:.4}"),
            format!("{x:.5}"),
        ],
        &r,
    );
}

fn main() {
    let scale = pip_bench::scale();
    let data = generate(&TpchConfig::scaled(0.2 * scale, 0xAB));
    let n = (500.0 * scale) as usize;

    println!("# Ablations: effect of individual PIP optimizations.");
    pip_bench::header(&["experiment", "variant", "secs", "rms_or_value"]);

    // 1. Exact paths: Q1 via linearity vs forced sampling.
    {
        let exact = queries::q1_exact(&data);
        let t0 = Instant::now();
        let on = queries::q1_pip(&data, &SamplerConfig::fixed_samples(n)).unwrap();
        emit(
            "exact_paths(q1)",
            "on",
            t0.elapsed().as_secs_f64(),
            ((on.value - exact) / exact).abs(),
        );
        let mut cfg = SamplerConfig::fixed_samples(n);
        cfg.use_exact_cdf = false;
        let t1 = Instant::now();
        let off = queries::q1_pip(&data, &cfg).unwrap();
        emit(
            "exact_paths(q1)",
            "off",
            t1.elapsed().as_secs_f64(),
            ((off.value - exact) / exact).abs(),
        );
    }

    // 2. CDF-bounded sampling: Q4 at selectivity 0.005.
    {
        let sel = 0.005;
        let exact = queries::q4_exact(&data, sel);
        for (variant, use_cdf) in [("on", true), ("off", false)] {
            let mut cfg = SamplerConfig::fixed_samples((n / 5).max(20));
            cfg.use_cdf_sampling = use_cdf;
            cfg.use_exact_cdf = use_cdf;
            let t = Instant::now();
            let run = queries::q4_pip(&data, sel, &cfg).unwrap();
            emit(
                "cdf_sampling(q4)",
                variant,
                t.elapsed().as_secs_f64(),
                queries::normalized_rms(&run.estimates, &exact),
            );
        }
    }

    // 3. Independence decomposition: Q3.
    {
        let sel = 0.1;
        let exact = queries::q3_exact(&data, sel);
        for (variant, indep) in [("on", true), ("off", false)] {
            let mut cfg = SamplerConfig::fixed_samples(n / 2);
            cfg.use_independence = indep;
            cfg.use_exact_cdf = false; // keep P estimation by sampling
            let t = Instant::now();
            let run = queries::q3_pip(&data, sel, &cfg).unwrap();
            emit(
                "independence(q3)",
                variant,
                t.elapsed().as_secs_f64(),
                ((run.value - exact) / exact).abs(),
            );
        }
    }

    // 4. expected_max early exit (Example 4.4 at table scale).
    {
        // Constant-valued rows with Normal-tail conditions of decreasing
        // probability.
        let schema = Schema::of(&[("v", DataType::Symbolic)]);
        let mut t = CTable::empty(schema);
        let n_rows = (400.0 * scale) as usize;
        for i in 0..n_rows {
            let y = RandomVar::create(builtin::normal(), &[0.0, 1.0]).unwrap();
            let p = 0.9 / (1.0 + i as f64 * 0.1);
            let z = special::inverse_normal_cdf(1.0 - p);
            t.push(CRow::new(
                vec![Equation::val((n_rows - i) as f64)],
                Conjunction::single(atoms::gt(Equation::from(y), z)),
            ))
            .unwrap();
        }
        let cfg = SamplerConfig::default();
        for precision in [0.0, 0.01, 0.1, 1.0] {
            let t0 = Instant::now();
            let r = expected_max_const(&t, "v", &cfg, precision).unwrap();
            emit(
                "expected_max_early_exit",
                &format!("precision={precision}"),
                t0.elapsed().as_secs_f64(),
                r.value,
            );
        }
    }
}
