//! **Index access paths** — what ordered secondary indexes buy over the
//! pre-index engine, and proof they change nothing but speed.
//!
//! Three workloads over an indexed fact table:
//!
//! * `selective_point` — a tight range on the indexed key. The cost
//!   model must pick `IndexScan`, and (full mode) the seek must beat
//!   the sequential scan by ≥5x in query-phase time — the CI gate.
//! * `non_selective` — a range the histogram prices near the whole
//!   table. The cost model must *keep* the sequential scan.
//! * `index_join` — a small dimension table probing the fact table.
//!   The cost model must pick `IndexJoin` over the hash build.
//!
//! Every timed pair also compares result values bit-for-bit
//! (`bit_identical` in the record): index paths emit candidates in
//! ascending base-row order, so estimates are the same f64s the
//! full-scan plans produce.
//!
//! Output lands in `BENCH_index.json` (override: `PIP_BENCH_INDEX_OUT`).
//! `PIP_BENCH_QUICK=1` shrinks the workload and skips the timing gate
//! while still asserting plan choices and bit-identity.

use serde::Serialize;

use pip_core::{tuple, DataType, Schema};
use pip_engine::AggFunc;
use pip_engine::{
    execute_with_stats, optimize, optimize_with, scalar_result, Database, OptimizerConfig, Plan,
    PlanBuilder, ScalarExpr,
};
use pip_sampling::SamplerConfig;

fn no_index_cfg() -> OptimizerConfig {
    OptimizerConfig {
        use_indexes: false,
        ..OptimizerConfig::default()
    }
}

/// Indexed fact table of `n` rows (keys uniform over `0..n/10`) plus a
/// 32-row dimension table, statistics collected.
fn build_db(n: usize) -> Database {
    let db = Database::new();
    db.create_table(
        "fact",
        Schema::of(&[("k", DataType::Int), ("v", DataType::Float)]),
    )
    .expect("create fact");
    db.create_table(
        "dim",
        Schema::of(&[("dk", DataType::Int), ("dv", DataType::Float)]),
    )
    .expect("create dim");
    let span = (n / 10).max(10) as i64;
    let rows: Vec<_> = (0..n as i64)
        .map(|i| tuple![(i * 7919) % span, (i % 1000) as f64 * 0.5])
        .collect();
    db.insert_tuples("fact", &rows).expect("fill fact");
    let rows: Vec<_> = (0..32i64).map(|i| tuple![i * 3, i as f64]).collect();
    db.insert_tuples("dim", &rows).expect("fill dim");
    db.create_index("idx_k", "fact", "k").expect("create index");
    db.analyze_all().expect("analyze");
    db
}

/// Best-of-`trials` query-phase seconds plus the (deterministic) value.
fn best_of(trials: usize, db: &Database, plan: &Plan, cfg: &SamplerConfig) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut value = f64::NAN;
    for _ in 0..trials {
        let (table, stats) = execute_with_stats(db, plan, cfg).expect("exec");
        best = best.min(stats.query_secs);
        value = scalar_result(&table).expect("scalar");
    }
    (best, value)
}

#[derive(Serialize)]
struct WorkloadRow {
    workload: &'static str,
    scan_query_secs: f64,
    index_query_secs: f64,
    speedup: f64,
    /// Operator the cost model chose (from the optimized plan text).
    chosen: String,
    bit_identical: bool,
}

/// Run one workload through the pre-index config and the shipped
/// pipeline; assert the expected access path and value bit-identity.
fn run_workload(
    db: &Database,
    name: &'static str,
    plan: Plan,
    cfg: &SamplerConfig,
    trials: usize,
    expect_op: &str,
) -> WorkloadRow {
    let scan_plan = optimize_with(db, plan.clone(), &no_index_cfg()).expect("scan plan");
    let index_plan = optimize(db, plan).expect("index plan");
    let text = index_plan.explain();
    assert!(
        text.contains(expect_op),
        "{name}: cost model did not choose {expect_op}:\n{text}"
    );
    let chosen = text
        .lines()
        .find(|l| l.contains(expect_op))
        .unwrap_or("?")
        .trim()
        .to_string();
    let (scan_secs, scan_v) = best_of(trials, db, &scan_plan, cfg);
    let (index_secs, index_v) = best_of(trials, db, &index_plan, cfg);
    let bit_identical = scan_v.to_bits() == index_v.to_bits();
    assert!(
        bit_identical,
        "{name}: index path changed the answer: {scan_v} vs {index_v}"
    );
    let row = WorkloadRow {
        workload: name,
        scan_query_secs: scan_secs,
        index_query_secs: index_secs,
        speedup: scan_secs / index_secs,
        chosen,
        bit_identical,
    };
    pip_bench::row(
        &[
            name.to_string(),
            format!("{scan_secs:.5}"),
            format!("{index_secs:.5}"),
            format!("{:.2}", row.speedup),
            row.chosen.clone(),
            format!("{bit_identical}"),
        ],
        &row,
    );
    row
}

#[derive(Serialize)]
struct BenchRecord {
    fact_rows: usize,
    quick: bool,
    selective_point: WorkloadRow,
    non_selective_kept_scan: bool,
    index_join: WorkloadRow,
    bit_identical: bool,
}

fn main() {
    let quick = pip_bench::quick();
    let scale = pip_bench::scale() * if quick { 0.05 } else { 1.0 };
    let n = ((40_000.0 * scale) as usize).max(2_000);
    let db = build_db(n);
    let cfg = SamplerConfig::fixed_samples(50);
    let trials = if quick { 3 } else { 9 };
    let span = (n / 10).max(10) as i64;

    println!("# Index access paths: ordered secondary index vs the pre-index engine.");
    println!("# fact={n} rows, keys 0..{span}, index idx_k on fact(k).");
    pip_bench::header(&[
        "workload",
        "scan_query_secs",
        "index_query_secs",
        "speedup",
        "chosen",
        "bit_identical",
    ]);

    // Selective point: one key value out of `span` — the seek's home turf.
    let point = PlanBuilder::scan("fact")
        .select(
            ScalarExpr::col("k")
                .ge(ScalarExpr::lit(7i64))
                .and(ScalarExpr::col("k").le(ScalarExpr::lit(7i64))),
        )
        .unwrap()
        .aggregate(vec![], vec![AggFunc::ExpectedSum("v".into())])
        .build();
    let selective = run_workload(&db, "selective_point", point, &cfg, trials, "IndexScan");

    // Non-selective: the histogram prices `k >= 0` at ~every row; the
    // cost model must keep the sequential scan.
    let wide = PlanBuilder::scan("fact")
        .select(ScalarExpr::col("k").ge(ScalarExpr::lit(0i64)))
        .unwrap()
        .aggregate(vec![], vec![AggFunc::ExpectedSum("v".into())])
        .build();
    let wide_plan = optimize(&db, wide).expect("wide plan");
    let wide_text = wide_plan.explain();
    let non_selective_kept_scan = !wide_text.contains("IndexScan");
    assert!(
        non_selective_kept_scan,
        "non-selective range took the index path:\n{wide_text}"
    );
    println!("# non_selective: full scan kept (histogram prices the range at ~all rows)");

    // Index-nested-loop join: 32 dimension rows probing the fact table.
    let join = PlanBuilder::scan("dim")
        .equi_join(PlanBuilder::scan("fact"), vec![("dk", "k")])
        .aggregate(vec![], vec![AggFunc::ExpectedSum("v".into())])
        .build();
    let join_row = run_workload(&db, "index_join", join, &cfg, trials, "IndexJoin");

    // The CI gate: in full mode the selective seek must repay ≥5x.
    if !quick {
        assert!(
            selective.speedup >= 5.0,
            "selective point speedup {:.2}x is below the 5x gate",
            selective.speedup
        );
    } else {
        println!("# quick mode: timing gate skipped");
    }

    let record = BenchRecord {
        fact_rows: n,
        quick,
        bit_identical: selective.bit_identical && join_row.bit_identical,
        selective_point: selective,
        non_selective_kept_scan,
        index_join: join_row,
    };
    let json = serde_json::to_string(&record).expect("record json");
    let path = std::env::var("PIP_BENCH_INDEX_OUT").unwrap_or_else(|_| "BENCH_index.json".into());
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_index.json");
    println!("# wrote {path}");
}
