//! **Figure 7(b)** — RMS error vs number of samples for the complex
//! selection query Q5 (demand vs supply, average selectivity ≈ 0.05).
//!
//! The condition compares *two* random variables, so no CDF bound
//! applies and PIP must fall back to rejection sampling — but it rejects
//! per candidate and keeps drawing until it has `n` *useful* samples,
//! while Sample-First is stuck with whatever worlds survive.

use serde::Serialize;

use pip_sampling::SamplerConfig;
use pip_workloads::queries;
use pip_workloads::tpch::{generate, TpchConfig};

#[derive(Serialize)]
struct Row {
    n_samples: usize,
    pip_rms: f64,
    pip_rms_std: f64,
    sf_rms: f64,
    sf_rms_std: f64,
}

fn main() {
    let scale = pip_bench::scale();
    let data = generate(&TpchConfig::scaled(0.1 * scale, 0x7B));
    let exact = queries::q5_exact(&data);
    let n_trials = pip_bench::trials();

    println!("# Figure 7(b): RMS error across {n_trials} trials of the complex selection");
    println!("# query Q5 (avg selectivity ~0.05), normalized by the exact value.");
    pip_bench::header(&[
        "n_samples",
        "pip_rms",
        "pip_rms_std",
        "sf_rms",
        "sf_rms_std",
    ]);

    for &n in &[1usize, 10, 100, 1000] {
        let pip_errs = pip_bench::parallel_trials(n_trials, |seed| {
            let cfg = SamplerConfig::fixed_samples(n).with_seed(seed);
            let run = queries::q5_pip(&data, &cfg).expect("pip q5");
            queries::normalized_rms(&run.estimates, &exact)
        });
        let sf_errs = pip_bench::parallel_trials(n_trials, |seed| {
            let run = queries::q5_sf(&data, n, seed).expect("sf q5");
            queries::normalized_rms(&run.estimates, &exact)
        });
        let r = Row {
            n_samples: n,
            pip_rms: pip_bench::mean(&pip_errs),
            pip_rms_std: pip_bench::stddev(&pip_errs),
            sf_rms: pip_bench::mean(&sf_errs),
            sf_rms_std: pip_bench::stddev(&sf_errs),
        };
        pip_bench::row(
            &[
                format!("{n}"),
                format!("{:.5}", r.pip_rms),
                format!("{:.5}", r.pip_rms_std),
                format!("{:.5}", r.sf_rms),
                format!("{:.5}", r.sf_rms_std),
            ],
            &r,
        );
    }
}
