//! **Figure 7(a)** — RMS error vs number of samples for the grouped Q4
//! query at selectivity ≈ 0.005 (the paper's `e^-5.29`).
//!
//! RMS error is computed over `PIP_BENCH_TRIALS` trials against the
//! algebraically exact per-part values, normalized by the correct value
//! and averaged over all parts — the paper's protocol (30 trials, 5000
//! parts). PIP's CDF-bounded sampling keeps every sample useful; the
//! sample-first estimate rests on `selectivity × n` effective samples,
//! so its error sits ~2 orders of magnitude higher.

use serde::Serialize;

use pip_sampling::SamplerConfig;
use pip_workloads::queries;
use pip_workloads::tpch::{generate, TpchConfig};

#[derive(Serialize)]
struct Row {
    n_samples: usize,
    pip_rms: f64,
    pip_rms_std: f64,
    sf_rms: f64,
    sf_rms_std: f64,
}

fn main() {
    let scale = pip_bench::scale();
    let sel = (-5.29f64).exp(); // ≈ 0.005
    let data = generate(&TpchConfig::scaled(0.2 * scale, 0x7A));
    let exact = queries::q4_exact(&data, sel);
    let n_trials = pip_bench::trials();

    println!("# Figure 7(a): RMS error across {n_trials} trials of the group-by query Q4");
    println!("# (selectivity {sel:.4}), normalized by the exact per-part value.");
    pip_bench::header(&[
        "n_samples",
        "pip_rms",
        "pip_rms_std",
        "sf_rms",
        "sf_rms_std",
    ]);

    for &n in &[1usize, 10, 100, 1000] {
        let pip_errs = pip_bench::parallel_trials(n_trials, |seed| {
            let cfg = SamplerConfig::fixed_samples(n).with_seed(seed);
            let run = queries::q4_pip(&data, sel, &cfg).expect("pip q4");
            queries::normalized_rms(&run.estimates, &exact)
        });
        let sf_errs = pip_bench::parallel_trials(n_trials, |seed| {
            let run = queries::q4_sf(&data, sel, n, seed).expect("sf q4");
            queries::normalized_rms(&run.estimates, &exact)
        });
        let r = Row {
            n_samples: n,
            pip_rms: pip_bench::mean(&pip_errs),
            pip_rms_std: pip_bench::stddev(&pip_errs),
            sf_rms: pip_bench::mean(&sf_errs),
            sf_rms_std: pip_bench::stddev(&sf_errs),
        };
        pip_bench::row(
            &[
                format!("{n}"),
                format!("{:.5}", r.pip_rms),
                format!("{:.5}", r.pip_rms_std),
                format!("{:.5}", r.sf_rms),
                format!("{:.5}", r.sf_rms_std),
            ],
            &r,
        );
    }
}
