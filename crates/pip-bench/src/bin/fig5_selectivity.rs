//! **Figure 5** — time to complete a fixed-accuracy query vs selectivity.
//!
//! The paper runs Q4 variants at selectivities {0.25, 0.05, 0.01, 0.005}
//! with PIP at 1000 samples and Sample-First at `1/selectivity × 1000`
//! samples (to compensate for discarded worlds, per Figure 7a). PIP's
//! time stays flat across selectivities (CDF sampling restricts the
//! sampling bounds); Sample-First's grows like `1/selectivity`.

use serde::Serialize;
use std::time::Instant;

use pip_sampling::SamplerConfig;
use pip_workloads::queries;
use pip_workloads::tpch::{generate, TpchConfig};

#[derive(Serialize)]
struct Row {
    selectivity: f64,
    pip_secs: f64,
    sf_secs: f64,
    pip_rms: f64,
    sf_rms: f64,
    sf_worlds: usize,
}

fn main() {
    let scale = pip_bench::scale();
    let data = generate(&TpchConfig::scaled(0.2 * scale, 0x515));
    let n_samples = (200.0 * scale) as usize;
    let selectivities = [0.25, 0.05, 0.01, 0.005];

    println!("# Figure 5: time to complete a {n_samples}-sample query, accounting for");
    println!("# selectivity-induced loss of accuracy (SF runs 1/sel x samples).");
    pip_bench::header(&[
        "selectivity",
        "pip_secs",
        "sf_secs",
        "pip_rms",
        "sf_rms",
        "sf_worlds",
    ]);

    for &sel in &selectivities {
        let exact = queries::q4_exact(&data, sel);
        let cfg = SamplerConfig::fixed_samples(n_samples);

        let t0 = Instant::now();
        let pip = queries::q4_pip(&data, sel, &cfg).expect("pip q4");
        let pip_secs = t0.elapsed().as_secs_f64();

        // Sample-First needs 1/sel more worlds for comparable accuracy.
        let sf_worlds = ((n_samples as f64 / sel) as usize).min(2_000_000);
        let t1 = Instant::now();
        let sf = queries::q4_sf(&data, sel, sf_worlds, 0xF5).expect("sf q4");
        let sf_secs = t1.elapsed().as_secs_f64();

        let r = Row {
            selectivity: sel,
            pip_secs,
            sf_secs,
            pip_rms: queries::normalized_rms(&pip.estimates, &exact),
            sf_rms: queries::normalized_rms(&sf.estimates, &exact),
            sf_worlds,
        };
        pip_bench::row(
            &[
                format!("{sel}"),
                format!("{pip_secs:.3}"),
                format!("{sf_secs:.3}"),
                format!("{:.4}", r.pip_rms),
                format!("{:.4}", r.sf_rms),
                format!("{sf_worlds}"),
            ],
            &r,
        );
    }
}
