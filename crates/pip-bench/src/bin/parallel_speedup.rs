//! Parallel sampling throughput on the Figure 7(a) RMS workload.
//!
//! Part 1 sweeps the thread count over the grouped Q4 query's per-part
//! expectations (`fixed_samples` budget, CDF-bounded sampling) and
//! reports samples/second plus speedup vs one thread, asserting that
//! every thread count reproduces the 1-thread estimates bit-for-bit.
//! Part 2 measures end-to-end service throughput: concurrent TCP
//! clients issuing the same aggregate query against one `pip-server`
//! catalog with per-client seeds (distinct cache keys → real sampling).
//!
//! Output: TSV on stdout; with `PIP_BENCH_JSON=1`, a single JSON
//! summary object on stderr — `BENCH_parallel.json` at the repo root is
//! a recorded run (its `cores` field documents the hardware caveat).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use pip_engine::Database;
use pip_sampling::parallel::ParallelSampler;
use pip_sampling::{expectation, SamplerConfig};
use pip_server::server::{serve, ServerOptions};
use pip_workloads::queries;
use pip_workloads::tpch::{generate, TpchConfig};

#[derive(Serialize)]
struct SamplingRow {
    threads: usize,
    rows: usize,
    samples: usize,
    secs: f64,
    samples_per_sec: f64,
    speedup: f64,
    bit_identical: bool,
}

#[derive(Serialize)]
struct ServiceRow {
    clients: usize,
    queries: usize,
    secs: f64,
    queries_per_sec: f64,
}

#[derive(Serialize)]
struct Summary {
    /// Detected host core count. Speedup figures are only meaningful
    /// when this exceeds 1 — `speedup_comparable` says so explicitly so
    /// consumers (CI, humans reading the recorded baseline) annotate
    /// rather than compare on serial hardware.
    cores: usize,
    speedup_comparable: bool,
    scale: f64,
    n_samples: usize,
    sampling: Vec<SamplingRow>,
    service: Vec<ServiceRow>,
}

/// Per-row expectations of the Q4 c-table on `threads` executors
/// (row-indexed sites — the same fan-out `expected_sum` uses).
fn run_q4(
    table: &pip_ctable::CTable,
    cfg: &SamplerConfig,
    pool: &ParallelSampler,
) -> (Vec<f64>, usize) {
    let rows = table.rows();
    let results = pool.run(cfg.threads, rows.len(), |i| {
        expectation(&rows[i].cells[1], &rows[i].condition, false, cfg, i as u64)
            .expect("q4 expectation")
    });
    let samples = results.iter().map(|r| r.n_samples).sum();
    (
        results.into_iter().map(|r| r.expectation).collect(),
        samples,
    )
}

fn main() {
    let quick = pip_bench::quick();
    let scale = pip_bench::scale() * if quick { 0.25 } else { 1.0 };
    let n_samples = if quick { 300 } else { 1000 };
    let sel = (-5.29f64).exp();
    let data = generate(&TpchConfig::scaled(0.2 * scale, 0x7A));
    let table = queries::q4_ctable(&data, sel).expect("q4 table");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("# Parallel sampling speedup on the fig7a RMS workload (Q4, selectivity {sel:.4})");
    println!(
        "# {} rows x {n_samples} samples; host has {cores} core(s)",
        table.len()
    );
    pip_bench::header(&[
        "threads",
        "secs",
        "samples_per_sec",
        "speedup",
        "bit_identical",
    ]);

    let thread_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut sampling = Vec::new();
    let mut baseline: Option<(Vec<f64>, f64)> = None;
    for &threads in thread_counts {
        let pool = ParallelSampler::new(threads);
        let cfg = SamplerConfig::fixed_samples(n_samples).with_threads(threads);
        // Warm-up pass (page in the workload), then the timed pass.
        let _ = run_q4(&table, &cfg, &pool);
        let t0 = Instant::now();
        let (estimates, samples) = run_q4(&table, &cfg, &pool);
        let secs = t0.elapsed().as_secs_f64();

        let (bit_identical, speedup) = match &baseline {
            None => {
                baseline = Some((estimates.clone(), secs));
                (true, 1.0)
            }
            Some((base_est, base_secs)) => (base_est == &estimates, base_secs / secs),
        };
        assert!(
            bit_identical,
            "thread count {threads} changed the estimates — determinism regression"
        );
        let row = SamplingRow {
            threads,
            rows: table.len(),
            samples,
            secs,
            samples_per_sec: samples as f64 / secs,
            speedup,
            bit_identical,
        };
        pip_bench::row(
            &[
                format!("{threads}"),
                format!("{secs:.4}"),
                format!("{:.0}", row.samples_per_sec),
                format!("{speedup:.2}"),
                format!("{bit_identical}"),
            ],
            &row,
        );
        sampling.push(row);
    }

    // ---- Part 2: service throughput over TCP. ----
    let queries_per_client = if quick { 4usize } else { 8usize };
    println!("\n# Service throughput: concurrent sessions, per-client seeds (no cache hits)");
    pip_bench::header(&["clients", "queries", "secs", "queries_per_sec"]);

    let db = Arc::new(Database::new());
    {
        let cfg = SamplerConfig::default();
        pip_engine::sql::run(&db, "CREATE TABLE t (g TEXT, x SYMBOLIC)", &cfg).unwrap();
        for i in 0..32 {
            pip_engine::sql::run(
                &db,
                &format!(
                    "INSERT INTO t VALUES ('g{}', create_variable('Normal', {}, 3))",
                    i % 4,
                    10 + i
                ),
                &cfg,
            )
            .unwrap();
        }
    }
    let server =
        serve(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default()).expect("bench server");
    let addr = server.addr();

    let client_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let mut service = Vec::new();
    for &clients in client_counts {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                s.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("connect");
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("banner");
                    for q in 0..queries_per_client {
                        writer
                            .write_all(
                                format!(
                                    "SET SEED {}\nQUERY SELECT g, expected_sum(x), conf() \
                                     FROM t WHERE x > 12 GROUP BY g\n",
                                    1 + c * queries_per_client + q
                                )
                                .as_bytes(),
                            )
                            .expect("send");
                        loop {
                            line.clear();
                            reader.read_line(&mut line).expect("recv");
                            if line.trim_end() == "END" || line.starts_with("ERR") {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        let queries = clients * queries_per_client;
        let row = ServiceRow {
            clients,
            queries,
            secs,
            queries_per_sec: queries as f64 / secs,
        };
        pip_bench::row(
            &[
                format!("{clients}"),
                format!("{queries}"),
                format!("{secs:.4}"),
                format!("{:.1}", row.queries_per_sec),
            ],
            &row,
        );
        service.push(row);
    }
    server.shutdown();

    if cores == 1 {
        println!(
            "# note: single-core host — speedup columns are not comparable \
             (bit-identity across thread counts is still asserted)."
        );
    }
    let summary = Summary {
        cores,
        speedup_comparable: cores > 1,
        scale,
        n_samples,
        sampling,
        service,
    };
    let json = serde_json::to_string(&summary).expect("summary json");
    if std::env::var("PIP_BENCH_JSON").as_deref() == Ok("1") {
        eprintln!("{json}");
    }
    if let Ok(path) = std::env::var("PIP_BENCH_PARALLEL_OUT") {
        std::fs::write(&path, format!("{json}\n")).expect("write parallel bench json");
        println!("# wrote {path}");
    }
}
