//! Horizontal read scaling across WAL-shipping replicas.
//!
//! One durable primary serves the fig7a-style grouped aggregate
//! workload while 1, 2, and 4 followers tail its WAL; a fixed pool of
//! TCP clients issues sampling queries round-robin across the replica
//! set. Reported per replica count: aggregate queries/second and the
//! speedup over a single replica. A separate staleness pass bursts
//! writes at the primary and measures how long the full replica set
//! takes to converge (and the widest version lag observed on the way).
//!
//! Replies are asserted byte-identical across every node before any
//! timing starts — read scaling that changed the answers would be
//! worthless.
//!
//! Output: TSV on stdout; with `PIP_BENCH_JSON=1` a JSON summary on
//! stderr — `BENCH_replication.json` at the repo root is a recorded
//! run. `PIP_BENCH_QUICK=1` shrinks the client pool and query counts
//! for CI smoke runs.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::Serialize;

use pip_engine::Database;
use pip_replica::Replication;
use pip_server::server::{serve, ServerHandle, ServerOptions};

#[derive(Serialize)]
struct ServingRow {
    replicas: usize,
    clients: usize,
    queries: usize,
    secs: f64,
    queries_per_sec: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Staleness {
    writes: usize,
    converge_ms: f64,
    max_lag_versions: u64,
}

#[derive(Serialize)]
struct WaitRow {
    /// `SET REPLICATION WAIT` mode: "0" (async), "1", or "majority".
    wait: String,
    writes: usize,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct Summary {
    cores: usize,
    speedup_comparable: bool,
    quick: bool,
    clients: usize,
    queries_per_client: usize,
    bit_identical: bool,
    serving: Vec<ServingRow>,
    staleness: Staleness,
    /// Sync-commit write latency under the WAIT ladder (single client;
    /// each reply is withheld until the required follower ACKs arrive).
    wait_ladder: Vec<WaitRow>,
}

struct Node {
    db: Arc<Database>,
    repl: Arc<Replication>,
    server: ServerHandle,
    dir: PathBuf,
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pip-bench-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_node(dir: PathBuf, db: Arc<Database>, repl: Replication) -> Node {
    let repl = Arc::new(repl);
    let options = ServerOptions {
        replication: Some(Arc::clone(&repl)),
        ..ServerOptions::default()
    };
    let server = serve(Arc::clone(&db), "127.0.0.1:0", options).expect("bench server");
    Node {
        db,
        repl,
        server,
        dir,
    }
}

/// One protocol exchange; returns the reply block with the session-local
/// `(fresh)`/`(cached)` marker normalized away.
fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, cmd: &str) -> Vec<String> {
    writer
        .write_all(format!("{cmd}\n").as_bytes())
        .expect("send");
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        let line = line.trim_end().to_string();
        let done = line == "END"
            || line.starts_with("ERR")
            || (line.starts_with("OK") && !line.contains(" rows "));
        lines.push(line.replace(" (cached)", "").replace(" (fresh)", ""));
        if done {
            break;
        }
    }
    lines
}

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    let writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("banner");
    (reader, writer)
}

fn wait_converged(primary: &Database, followers: &[Node]) -> u64 {
    let target = primary.version();
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut max_lag = 0;
    while followers.iter().any(|f| f.db.version() < target) {
        max_lag = max_lag.max(
            followers
                .iter()
                .map(|f| f.repl.replication_lag())
                .max()
                .unwrap_or(0),
        );
        assert!(Instant::now() < deadline, "replica set never converged");
        std::thread::sleep(Duration::from_millis(2));
    }
    max_lag
}

const PROBE: &str = "QUERY SELECT g, expected_sum(x), conf() FROM t WHERE x > 12 GROUP BY g";

fn main() {
    let quick = pip_bench::quick();
    let total_clients = if quick { 4usize } else { 8 };
    let queries_per_client = if quick { 3usize } else { 8 };
    let burst_writes = if quick { 40usize } else { 200 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // ---- Topology: one durable primary, four tailing followers. ----
    let pdir = tmp_dir("primary");
    let pdb = Arc::new(Database::open(&pdir).expect("primary catalog"));
    let primary = start_node(
        pdir,
        Arc::clone(&pdb),
        Replication::primary(Arc::clone(&pdb), "127.0.0.1:0").expect("primary feed"),
    );
    let feed = primary.repl.local_addr().expect("feed address");

    let cfg = pip_sampling::SamplerConfig::default();
    pip_engine::sql::run(&pdb, "CREATE TABLE t (g TEXT, x SYMBOLIC)", &cfg).unwrap();
    for i in 0..48 {
        pip_engine::sql::run(
            &pdb,
            &format!(
                "INSERT INTO t VALUES ('g{}', create_variable('Normal', {}, 3))",
                i % 4,
                10 + i % 17
            ),
            &cfg,
        )
        .unwrap();
    }

    let followers: Vec<Node> = (0..4)
        .map(|i| {
            let dir = tmp_dir(&format!("f{i}"));
            let db = Arc::new(Database::open(&dir).expect("follower catalog"));
            let repl = Replication::follower(Arc::clone(&db), &feed.to_string());
            start_node(dir, db, repl)
        })
        .collect();
    wait_converged(&pdb, &followers);

    // ---- Bit-identity gate: every node answers the probe alike. ----
    let expect = {
        let (mut r, mut w) = connect(primary.server.addr());
        roundtrip(&mut r, &mut w, "SET SEED 7");
        roundtrip(&mut r, &mut w, PROBE)
    };
    for (i, f) in followers.iter().enumerate() {
        let (mut r, mut w) = connect(f.server.addr());
        roundtrip(&mut r, &mut w, "SET SEED 7");
        let got = roundtrip(&mut r, &mut w, PROBE);
        assert_eq!(expect, got, "replica {i} diverges from the primary");
    }

    println!("# Follower read scaling: fig7a grouped aggregate over WAL-shipping replicas");
    println!(
        "# {total_clients} clients x {queries_per_client} queries, round-robin; \
         host has {cores} core(s)"
    );
    pip_bench::header(&["replicas", "queries", "secs", "queries_per_sec", "speedup"]);

    let mut serving = Vec::new();
    let mut baseline: Option<f64> = None;
    for &replicas in &[1usize, 2, 4] {
        let addrs: Vec<_> = followers[..replicas]
            .iter()
            .map(|f| f.server.addr())
            .collect();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..total_clients {
                let addr = addrs[c % addrs.len()];
                s.spawn(move || {
                    let (mut reader, mut writer) = connect(addr);
                    for q in 0..queries_per_client {
                        // Per-client-per-query seeds: distinct cache keys,
                        // so every request really samples.
                        roundtrip(
                            &mut reader,
                            &mut writer,
                            &format!("SET SEED {}", 1 + c * queries_per_client + q),
                        );
                        roundtrip(&mut reader, &mut writer, PROBE);
                    }
                });
            }
        });
        let secs = t0.elapsed().as_secs_f64();
        let queries = total_clients * queries_per_client;
        let qps = queries as f64 / secs;
        let speedup = match baseline {
            None => {
                baseline = Some(qps);
                1.0
            }
            Some(base) => qps / base,
        };
        let row = ServingRow {
            replicas,
            clients: total_clients,
            queries,
            secs,
            queries_per_sec: qps,
            speedup,
        };
        pip_bench::row(
            &[
                format!("{replicas}"),
                format!("{queries}"),
                format!("{secs:.4}"),
                format!("{qps:.1}"),
                format!("{speedup:.2}"),
            ],
            &row,
        );
        serving.push(row);
    }

    // ---- Staleness: burst writes, clock the replica set's convergence. ----
    let t0 = Instant::now();
    for i in 0..burst_writes {
        pip_engine::sql::run(
            &pdb,
            &format!("INSERT INTO t VALUES ('g{}', {}.5)", i % 4, i),
            &cfg,
        )
        .unwrap();
    }
    let max_lag = wait_converged(&pdb, &followers);
    let converge_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("\n# Staleness: {burst_writes} writes burst at the primary");
    pip_bench::header(&["writes", "converge_ms", "max_lag_versions"]);
    let staleness = Staleness {
        writes: burst_writes,
        converge_ms,
        max_lag_versions: max_lag,
    };
    pip_bench::row(
        &[
            format!("{burst_writes}"),
            format!("{converge_ms:.1}"),
            format!("{max_lag}"),
        ],
        &staleness,
    );

    // ---- Sync-commit ladder: write latency under WAIT 0/1/MAJORITY. --
    // One client writes through the primary's TCP front-end; under
    // WAIT n the reply is parked until n follower ACKs cover the write,
    // so the round-trip IS the sync-commit latency. With 4 followers,
    // MAJORITY needs (4+1)/2 = 2 ACKs — between WAIT 1 (fastest
    // follower) and WAIT 4 (slowest).
    let ladder_writes = if quick { 20usize } else { 100 };
    println!(
        "\n# Sync-commit write latency: WAIT ladder, {} followers attached",
        followers.len()
    );
    pip_bench::header(&["wait", "writes", "mean_ms", "p50_ms", "p99_ms"]);
    let mut wait_ladder = Vec::new();
    {
        let (mut reader, mut writer) = connect(primary.server.addr());
        for mode in ["0", "1", "MAJORITY"] {
            let set = roundtrip(
                &mut reader,
                &mut writer,
                &format!("SET REPLICATION WAIT {mode}"),
            );
            assert!(set[0].starts_with("OK replication_wait="), "{set:?}");
            let wait = set[0]
                .rsplit('=')
                .next()
                .expect("mode echoed back")
                .to_string();
            let mut lat_ms = Vec::with_capacity(ladder_writes);
            for i in 0..ladder_writes {
                let t0 = Instant::now();
                let reply = roundtrip(
                    &mut reader,
                    &mut writer,
                    &format!("QUERY INSERT INTO t VALUES ('w{mode}', {i}.25)"),
                );
                assert!(reply[0].starts_with("OK"), "sync write failed: {reply:?}");
                lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            lat_ms.sort_by(f64::total_cmp);
            let mean_ms = lat_ms.iter().sum::<f64>() / lat_ms.len() as f64;
            let p50_ms = lat_ms[lat_ms.len() / 2];
            let p99_ms = lat_ms[(lat_ms.len() * 99 / 100).min(lat_ms.len() - 1)];
            let row = WaitRow {
                wait,
                writes: ladder_writes,
                mean_ms,
                p50_ms,
                p99_ms,
            };
            pip_bench::row(
                &[
                    row.wait.clone(),
                    format!("{ladder_writes}"),
                    format!("{mean_ms:.3}"),
                    format!("{p50_ms:.3}"),
                    format!("{p99_ms:.3}"),
                ],
                &row,
            );
            wait_ladder.push(row);
        }
    }
    wait_converged(&pdb, &followers);

    if cores == 1 {
        println!(
            "# note: single-core host — replicas share the CPU, so speedup \
             columns are not comparable (bit-identity is still asserted)."
        );
    }

    let summary = Summary {
        cores,
        speedup_comparable: cores > 1,
        quick,
        clients: total_clients,
        queries_per_client,
        bit_identical: true,
        serving,
        staleness,
        wait_ladder,
    };
    let json = serde_json::to_string(&summary).expect("summary json");
    if std::env::var("PIP_BENCH_JSON").as_deref() == Ok("1") {
        eprintln!("{json}");
    }
    if let Ok(path) = std::env::var("PIP_BENCH_REPLICATION_OUT") {
        std::fs::write(&path, format!("{json}\n")).expect("write replication bench json");
        println!("# wrote {path}");
    }

    let mut dirs = vec![primary.dir.clone()];
    for f in &followers {
        f.repl.shutdown();
        dirs.push(f.dir.clone());
    }
    for f in followers {
        f.server.shutdown();
    }
    primary.repl.shutdown();
    primary.server.shutdown();
    for d in dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}
