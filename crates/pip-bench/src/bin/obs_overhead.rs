//! Observability overhead on the fig6 hot path.
//!
//! Runs the Figure 6 join/aggregate workload (optimize +
//! `execute_with_stats`, query and sample phases) with the process-wide
//! observability switch toggled per trial — `pip_obs::set_enabled` gates
//! histogram observation and span capture; counters and gauges always
//! run — and reports the relative cost of metrics-on at 1, 2, and 4
//! sampling threads.
//!
//! Gates (CI runs this in `PIP_BENCH_QUICK=1`):
//!
//! * metrics-on may cost at most 3% over metrics-off (min-of-trials,
//!   interleaved on/off so drift hits both modes equally; sub-2ms
//!   absolute deltas never fail the gate — that is timer noise, not
//!   overhead);
//! * the query answer must be bit-identical with observability on and
//!   off at every thread count — instrumentation must never perturb
//!   results.
//!
//! Output: TSV on stdout; one JSON row per thread count on stderr with
//! `PIP_BENCH_JSON=1`; the summary is written to `PIP_BENCH_OBS_OUT`
//! (default `BENCH_obs.json`).

use std::time::Instant;

use serde::Serialize;

use pip_engine::{execute_with_stats, optimize, scalar_result, Database, Plan};
use pip_sampling::SamplerConfig;
use pip_workloads::plans;
use pip_workloads::tpch::{generate, TpchConfig};

#[derive(Serialize)]
struct Row {
    threads: usize,
    obs_on_secs: f64,
    obs_off_secs: f64,
    overhead_pct: f64,
    bit_identical: bool,
}

#[derive(Serialize)]
struct Summary {
    quick: bool,
    scale: f64,
    n_samples: usize,
    trials: usize,
    gate_pct: f64,
    max_overhead_pct: f64,
    all_bit_identical: bool,
    rows: Vec<Row>,
}

/// One timed pass over the hot path: optimize + execute + scalar
/// readback, exactly the work a served `QUERY` performs.
fn timed_run(db: &Database, raw: &Plan, cfg: &SamplerConfig) -> (f64, u64) {
    let t0 = Instant::now();
    let plan = optimize(db, raw.clone()).expect("optimize");
    let (table, _stats) = execute_with_stats(db, &plan, cfg).expect("execute");
    let value = scalar_result(&table).expect("scalar");
    (t0.elapsed().as_secs_f64(), value.to_bits())
}

fn main() {
    let quick = pip_bench::quick();
    let scale = pip_bench::scale() * if quick { 0.1 } else { 0.5 };
    let n_samples = if quick { 2000 } else { 8000 };
    let trials = if quick { 5 } else { 9 };
    let gate_pct = 3.0;
    // Below this absolute delta the relative gate is meaningless: a
    // couple of milliseconds of scheduler jitter on a quick CI box must
    // not read as "overhead".
    let noise_floor_secs = 0.002;

    let data = generate(&TpchConfig::scaled(scale, 0x42));
    let sel = 0.1;
    let db = plans::join_db(&data, sel).expect("join db");
    let raw = plans::join_plan();

    println!("# Observability overhead on the fig6 join workload (selectivity {sel})");
    println!("# {trials} interleaved trials per mode, min-of-trials, {n_samples} samples");
    pip_bench::header(&[
        "threads",
        "obs_on_secs",
        "obs_off_secs",
        "overhead_pct",
        "bit_identical",
    ]);

    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 4] {
        // Force genuine sampling (no exact-CDF shortcut), as fig6 does:
        // the sampling loop IS the hot path being measured.
        let mut cfg = SamplerConfig::fixed_samples(n_samples).with_threads(threads);
        cfg.use_exact_cdf = false;
        // Warm up both modes (page in data, compile kernels) before
        // anything is timed.
        pip_obs::set_enabled(true);
        let _ = timed_run(&db, &raw, &cfg);
        pip_obs::set_enabled(false);
        let _ = timed_run(&db, &raw, &cfg);

        let mut on_best = f64::INFINITY;
        let mut off_best = f64::INFINITY;
        let mut on_bits = 0u64;
        let mut off_bits = 0u64;
        for _ in 0..trials {
            pip_obs::set_enabled(true);
            let (secs, bits) = timed_run(&db, &raw, &cfg);
            on_best = on_best.min(secs);
            on_bits = bits;
            pip_obs::set_enabled(false);
            let (secs, bits) = timed_run(&db, &raw, &cfg);
            off_best = off_best.min(secs);
            off_bits = bits;
        }
        pip_obs::set_enabled(true);

        let bit_identical = on_bits == off_bits;
        let overhead_pct = (on_best - off_best) / off_best * 100.0;
        assert!(
            bit_identical,
            "threads={threads}: observability changed the answer \
             ({on_bits:#018x} vs {off_bits:#018x}) — instrumentation must be inert"
        );
        assert!(
            overhead_pct <= gate_pct || on_best - off_best <= noise_floor_secs,
            "threads={threads}: metrics-on overhead {overhead_pct:.2}% \
             ({on_best:.4}s vs {off_best:.4}s) exceeds the {gate_pct}% gate"
        );

        let row = Row {
            threads,
            obs_on_secs: on_best,
            obs_off_secs: off_best,
            overhead_pct,
            bit_identical,
        };
        pip_bench::row(
            &[
                format!("{threads}"),
                format!("{on_best:.4}"),
                format!("{off_best:.4}"),
                format!("{overhead_pct:.2}"),
                format!("{bit_identical}"),
            ],
            &row,
        );
        rows.push(row);
    }

    let summary = Summary {
        quick,
        scale,
        n_samples,
        trials,
        gate_pct,
        max_overhead_pct: rows
            .iter()
            .map(|r| r.overhead_pct)
            .fold(f64::NEG_INFINITY, f64::max),
        all_bit_identical: rows.iter().all(|r| r.bit_identical),
        rows,
    };
    let json = serde_json::to_string(&summary).expect("summary json");
    let path = std::env::var("PIP_BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());
    std::fs::write(&path, format!("{json}\n")).expect("write BENCH_obs.json");
    println!("# wrote {path}");
}
