//! **Figure 8** — the iceberg danger-estimation query: Sample-First
//! error as a fraction of the correct result, plotted as a CDF over 100
//! virtual ships; PIP obtains the exact result.
//!
//! The paper: PIP finished exactly in ~10 s; Sample-First took >10 min
//! at 10,000 samples and deviated by up to ~25%. We print PIP's (zero)
//! error and timing, then the SF error distribution.

use serde::Serialize;
use std::time::Instant;

use pip_sampling::SamplerConfig;
use pip_workloads::iceberg::{
    self, exact_threat, relative_errors, threat_pip, threat_sf, IcebergConfig,
};

#[derive(Serialize)]
struct Summary {
    pip_secs: f64,
    pip_max_error: f64,
    sf_secs: f64,
    sf_worlds: usize,
}

#[derive(Serialize)]
struct CdfRow {
    percentile: f64,
    sf_error: f64,
}

fn main() {
    let scale = pip_bench::scale();
    let cfg = IcebergConfig {
        n_ships: (100.0 * scale) as usize,
        n_icebergs: (400.0 * scale) as usize,
        ..Default::default()
    };
    let data = iceberg::generate(&cfg);
    let threshold = 0.001;
    let exact = exact_threat(&data, threshold);
    let sampler = SamplerConfig::default();

    let t0 = Instant::now();
    let pip = threat_pip(&data, threshold, &sampler).expect("pip threat");
    let pip_secs = t0.elapsed().as_secs_f64();
    let pip_max_error = relative_errors(&pip, &exact)
        .into_iter()
        .fold(0.0, f64::max);

    let sf_worlds = (1000.0 * scale) as usize;
    let t1 = Instant::now();
    let sf = threat_sf(&data, threshold, sf_worlds, 0xF8).expect("sf threat");
    let sf_secs = t1.elapsed().as_secs_f64();
    let mut errs = relative_errors(&sf, &exact);
    errs.sort_by(f64::total_cmp);

    println!("# Figure 8: Sample-First error as a fraction of the correct result in the");
    println!("# iceberg danger-estimation query; PIP computes the exact answer via CDFs.");
    let summary = Summary {
        pip_secs,
        pip_max_error,
        sf_secs,
        sf_worlds,
    };
    println!(
        "# PIP: {:.3}s, max relative error {:.2e} (exact).  SF: {:.3}s at {} worlds.",
        summary.pip_secs, summary.pip_max_error, summary.sf_secs, summary.sf_worlds
    );
    if std::env::var("PIP_BENCH_JSON").as_deref() == Ok("1") {
        eprintln!("{}", serde_json::to_string(&summary).unwrap());
    }

    pip_bench::header(&["percentile", "sf_error"]);
    for p in (0..=100).step_by(5) {
        if errs.is_empty() {
            break;
        }
        let idx = ((p as f64 / 100.0) * (errs.len() - 1) as f64).round() as usize;
        let r = CdfRow {
            percentile: p as f64,
            sf_error: errs[idx],
        };
        pip_bench::row(&[format!("{p}"), format!("{:.4}", r.sf_error)], &r);
    }
}
