//! Open-loop many-client service benchmark for the reactor front-end.
//!
//! Unlike the closed-loop service section of `parallel_speedup` (each
//! client waits for its reply before sending the next query), senders
//! here issue queries on a fixed pacing interval regardless of reply
//! progress — the open-loop model that exposes queueing delay instead
//! of hiding it in client think time. Per connection, a sender thread
//! paces `SET SEED n` + aggregate-`QUERY` pairs (monotonically
//! increasing seeds → distinct cache keys → real sampling work, no
//! result-cache or cross-session dedup hits) while the main thread
//! records per-request latency from send to the `END`/`ERR` terminator.
//!
//! The connection ladder is 1/8/64/256 (quick mode: 1/8/32). Each step
//! offers `0.9 × base` queries/second *per connection*, where `base` is
//! a calibrated single-client closed-loop rate — so high connection
//! counts deliberately overload a small host and the numbers show what
//! admission control does about it: throughput holds near capacity,
//! rejects come back as instant clean `ERR busy`, and the p99 of
//! admitted queries stays bounded by `queue capacity × service time`
//! rather than growing without limit.
//!
//! Output: TSV on stdout (one row per step), JSON rows on stderr with
//! `PIP_BENCH_JSON=1`, and the full summary written to the path in
//! `PIP_BENCH_SERVICE_OUT` — `BENCH_service.json` at the repo root is a
//! recorded run (`cores`/`speedup_comparable` document the hardware
//! caveat; see `BENCH_parallel.json` for the closed-loop baseline).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;

use pip_engine::Database;
use pip_sampling::SamplerConfig;
use pip_server::server::{serve, ServerOptions};

/// Fixed per-query sample budget: keeps service time stable so latency
/// percentiles measure queueing, not adaptive-sampling variance.
const SAMPLES_PER_QUERY: usize = 2_000;

const QUERY: &str = "QUERY SELECT g, expected_sum(x), conf() FROM t WHERE x > 12 GROUP BY g";

#[derive(Serialize)]
struct StepRow {
    connections: usize,
    offered_qps: f64,
    sent: usize,
    completed: usize,
    rejected_busy: usize,
    secs: f64,
    throughput_qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct Summary {
    /// Detected host core count. Open-loop throughput at high connection
    /// counts only scales past the closed-loop baseline with real
    /// parallelism — `speedup_comparable: false` marks a recorded run on
    /// serial hardware where the ladder can only demonstrate bounded
    /// latency and clean admission under overload.
    cores: usize,
    speedup_comparable: bool,
    base_qps: f64,
    samples_per_query: usize,
    admitted_total: u64,
    rejected_total: u64,
    batched_total: u64,
    steps: Vec<StepRow>,
}

struct StepOutcome {
    sent: usize,
    completed: usize,
    rejected_busy: usize,
    latencies: Vec<Duration>,
}

fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e3
}

/// Read one reply off the wire; `OK ... rows` blocks run to `END`.
/// Returns the first line.
fn read_reply(reader: &mut BufReader<TcpStream>, line: &mut String) -> String {
    line.clear();
    reader.read_line(line).expect("reply");
    let first = line.trim_end().to_string();
    if first.starts_with("OK") && first.contains(" rows ") {
        loop {
            line.clear();
            reader.read_line(line).expect("reply body");
            if line.trim_end() == "END" {
                break;
            }
        }
    }
    first
}

/// One open-loop connection: paced sender, latency-recording receiver.
fn run_connection(
    addr: std::net::SocketAddr,
    interval: Duration,
    deadline: Instant,
    seeds: &Arc<AtomicU64>,
) -> StepOutcome {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner");

    let sent_at = Arc::new(Mutex::new(VecDeque::<Instant>::new()));
    let stamps = Arc::clone(&sent_at);
    let seeds = Arc::clone(seeds);
    let mut writer = stream.try_clone().expect("clone");
    let mut sender = Some(std::thread::spawn(move || {
        writer
            .write_all(format!("SET SAMPLES {SAMPLES_PER_QUERY}\n").as_bytes())
            .expect("send");
        let mut sent = 0usize;
        while Instant::now() < deadline {
            let seed = seeds.fetch_add(1, Ordering::Relaxed);
            let request = format!("SET SEED {seed}\n{QUERY}\n");
            stamps.lock().expect("stamps").push_back(Instant::now());
            if writer.write_all(request.as_bytes()).is_err() {
                stamps.lock().expect("stamps").pop_back();
                break;
            }
            sent += 1;
            std::thread::sleep(interval);
        }
        sent
    }));

    // First reply: the SET SAMPLES ack.
    let ack = read_reply(&mut reader, &mut line);
    assert!(ack.starts_with("OK samples="), "{ack}");

    let mut outcome = StepOutcome {
        sent: 0,
        completed: 0,
        rejected_busy: 0,
        latencies: Vec::new(),
    };
    let mut drained = 0usize;
    let mut target: Option<usize> = None;
    loop {
        // Only block on the socket when a stamp proves the pair was
        // actually written (stamps are pushed before the write). Racing
        // ahead of the sender here would block forever on a pair the
        // sender's deadline cut off.
        if sent_at.lock().expect("stamps").is_empty() {
            if let Some(n) = target {
                debug_assert_eq!(drained, n);
                outcome.sent = n;
                break;
            }
            if sender.as_ref().is_some_and(|h| h.is_finished()) {
                target = Some(sender.take().expect("handle").join().expect("sender"));
            } else {
                std::thread::sleep(Duration::from_millis(1));
            }
            continue;
        }
        // SET SEED ack, then the query's terminating line.
        let seed_ack = read_reply(&mut reader, &mut line);
        assert!(seed_ack.starts_with("OK seed="), "{seed_ack}");
        let reply = read_reply(&mut reader, &mut line);
        let started = sent_at.lock().expect("stamps").pop_front().expect("stamp");
        drained += 1;
        if reply.starts_with("ERR busy") {
            outcome.rejected_busy += 1;
        } else {
            assert!(reply.starts_with("OK"), "{reply}");
            outcome.completed += 1;
            outcome.latencies.push(started.elapsed());
        }
    }
    outcome
}

/// Closed-loop single-client calibration: queries/second with no think
/// time and no pipelining.
fn calibrate(addr: std::net::SocketAddr, queries: usize, seeds: &AtomicU64) -> f64 {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("banner");
    writer
        .write_all(format!("SET SAMPLES {SAMPLES_PER_QUERY}\n").as_bytes())
        .expect("send");
    read_reply(&mut reader, &mut line);
    // Warm-up, then the timed run.
    for timed in [false, true] {
        let t0 = Instant::now();
        for _ in 0..queries {
            let seed = seeds.fetch_add(1, Ordering::Relaxed);
            writer
                .write_all(format!("SET SEED {seed}\n{QUERY}\n").as_bytes())
                .expect("send");
            read_reply(&mut reader, &mut line);
            let reply = read_reply(&mut reader, &mut line);
            assert!(reply.starts_with("OK"), "{reply}");
        }
        if timed {
            return queries as f64 / t0.elapsed().as_secs_f64();
        }
    }
    unreachable!()
}

fn main() {
    let quick = pip_bench::quick();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let db = Arc::new(Database::new());
    {
        let cfg = SamplerConfig::default();
        pip_engine::sql::run(&db, "CREATE TABLE t (g TEXT, x SYMBOLIC)", &cfg).unwrap();
        for i in 0..32 {
            pip_engine::sql::run(
                &db,
                &format!(
                    "INSERT INTO t VALUES ('g{}', create_variable('Normal', {}, 3))",
                    i % 4,
                    10 + i
                ),
                &cfg,
            )
            .unwrap();
        }
    }
    let server =
        serve(Arc::clone(&db), "127.0.0.1:0", ServerOptions::default()).expect("bench server");
    let addr = server.addr();
    let seeds = Arc::new(AtomicU64::new(1));

    let base_qps = calibrate(addr, if quick { 3 } else { 10 }, &seeds);
    let step_secs = if quick { 2.0 } else { 8.0 };
    let ladder: &[usize] = if quick { &[1, 8, 32] } else { &[1, 8, 64, 256] };
    // Offered load per connection: 90% of the calibrated closed-loop
    // rate, so one connection is near-saturated and the ladder scales
    // the total offered load linearly with the connection count.
    let per_conn_qps = 0.9 * base_qps;
    let interval = Duration::from_secs_f64(1.0 / per_conn_qps);

    println!("# Open-loop service scaling: paced senders, per-request latency");
    println!(
        "# base {base_qps:.1} q/s closed-loop; {per_conn_qps:.1} q/s offered per connection; \
         {SAMPLES_PER_QUERY} samples/query; host has {cores} core(s)"
    );
    pip_bench::header(&[
        "connections",
        "offered_qps",
        "sent",
        "completed",
        "busy",
        "secs",
        "throughput_qps",
        "p50_ms",
        "p99_ms",
    ]);

    let mut steps = Vec::new();
    for &conns in ladder {
        let deadline = Instant::now() + Duration::from_secs_f64(step_secs);
        let t0 = Instant::now();
        let outcomes: Vec<StepOutcome> = std::thread::scope(|s| {
            let seeds = &seeds;
            let handles: Vec<_> = (0..conns)
                .map(|i| {
                    s.spawn(move || {
                        // Stagger starts across one interval so arrivals
                        // spread instead of pulsing.
                        std::thread::sleep(interval.mul_f64(i as f64 / conns as f64));
                        run_connection(addr, interval, deadline, seeds)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("connection"))
                .collect()
        });
        let secs = t0.elapsed().as_secs_f64();

        let mut latencies: Vec<Duration> =
            outcomes.iter().flat_map(|o| o.latencies.clone()).collect();
        latencies.sort_unstable();
        let completed: usize = outcomes.iter().map(|o| o.completed).sum();
        let row = StepRow {
            connections: conns,
            offered_qps: per_conn_qps * conns as f64,
            sent: outcomes.iter().map(|o| o.sent).sum(),
            completed,
            rejected_busy: outcomes.iter().map(|o| o.rejected_busy).sum(),
            secs,
            throughput_qps: completed as f64 / secs,
            p50_ms: percentile_ms(&latencies, 0.50),
            p99_ms: percentile_ms(&latencies, 0.99),
        };
        pip_bench::row(
            &[
                format!("{conns}"),
                format!("{:.1}", row.offered_qps),
                format!("{}", row.sent),
                format!("{completed}"),
                format!("{}", row.rejected_busy),
                format!("{secs:.2}"),
                format!("{:.1}", row.throughput_qps),
                format!("{:.1}", row.p50_ms),
                format!("{:.1}", row.p99_ms),
            ],
            &row,
        );
        steps.push(row);
    }

    let serving = server.serving();
    server.shutdown();
    if cores == 1 {
        println!(
            "# note: single-core host — throughput cannot scale past the closed-loop \
             baseline; the ladder demonstrates bounded latency and clean rejects instead."
        );
    }
    let summary = Summary {
        cores,
        speedup_comparable: cores > 1,
        base_qps,
        samples_per_query: SAMPLES_PER_QUERY,
        admitted_total: serving.admitted,
        rejected_total: serving.rejected,
        batched_total: serving.batched,
        steps,
    };
    let json = serde_json::to_string(&summary).expect("summary json");
    if std::env::var("PIP_BENCH_JSON").as_deref() == Ok("1") {
        eprintln!("{json}");
    }
    if let Ok(path) = std::env::var("PIP_BENCH_SERVICE_OUT") {
        std::fs::write(&path, format!("{json}\n")).expect("write service bench json");
        println!("# wrote {path}");
    }
}
