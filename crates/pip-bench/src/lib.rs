//! Shared helpers for the figure-regeneration binaries.
//!
//! Every binary prints a self-describing table of rows (TSV to stdout,
//! one JSON line per row to stderr when `PIP_BENCH_JSON=1`), so results
//! can be eyeballed or scraped. `PIP_BENCH_SCALE` scales workload sizes
//! (default 1.0 is laptop-friendly; the paper's hardware is long gone,
//! shapes — not absolute seconds — are the reproduction target, see
//! EXPERIMENTS.md).

use serde::Serialize;

/// Scale factor for workload sizes, from `PIP_BENCH_SCALE` (default 1).
pub fn scale() -> f64 {
    std::env::var("PIP_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// Number of trials for error experiments, from `PIP_BENCH_TRIALS`
/// (default 10; the paper uses 30).
pub fn trials() -> usize {
    std::env::var("PIP_BENCH_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10)
}

/// Quick (CI smoke) mode, from `PIP_BENCH_QUICK=1`: binaries shrink
/// their workloads to finish in seconds while still exercising every
/// code path and determinism assertion.
pub fn quick() -> bool {
    std::env::var("PIP_BENCH_QUICK").as_deref() == Ok("1")
}

/// Print a header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Print one result row, optionally mirroring it as JSON on stderr.
pub fn row<T: Serialize>(values: &[String], json: &T) {
    println!("{}", values.join("\t"));
    if std::env::var("PIP_BENCH_JSON").as_deref() == Ok("1") {
        if let Ok(s) = serde_json::to_string(json) {
            eprintln!("{s}");
        }
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Run `n_trials` seeded trials in parallel and collect results in order.
pub fn parallel_trials<F, T>(n_trials: usize, f: F) -> Vec<T>
where
    F: Fn(u64) -> T + Sync,
    T: Send,
{
    let mut out: Vec<Option<T>> = (0..n_trials).map(|_| None).collect();
    std::thread::scope(|s| {
        for (i, slot) in out.iter_mut().enumerate() {
            let f = &f;
            s.spawn(move || {
                *slot = Some(f(i as u64 + 1));
            });
        }
    });
    out.into_iter().map(|o| o.expect("trial ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn parallel_trials_preserve_order() {
        let r = parallel_trials(8, |seed| seed * 2);
        assert_eq!(r, vec![2, 4, 6, 8, 10, 12, 14, 16]);
    }
}
