//! The continuous Uniform distribution class: `Uniform(a, b)`.

use std::sync::Arc;

use pip_core::{PipError, Result};

use crate::distribution::{DistributionClass, PreparedGen, PreparedInverseCdf};
use crate::rng::PipRng;
use rand::Rng;

/// `Uniform(a, b)` on the half-open interval `[a, b)`, `a < b`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl DistributionClass for Uniform {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn arity(&self) -> usize {
        2
    }

    fn validate(&self, params: &[f64]) -> Result<()> {
        let (a, b) = (params[0], params[1]);
        if !a.is_finite() || !b.is_finite() || !(a < b) {
            return Err(PipError::InvalidParameter(format!(
                "Uniform: need finite a < b, got ({a}, {b})"
            )));
        }
        Ok(())
    }

    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64 {
        UniformAffine {
            a: params[0],
            b: params[1],
        }
        .generate(rng)
    }

    fn pdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let (a, b) = (params[0], params[1]);
        Some(if (a..b).contains(&x) {
            1.0 / (b - a)
        } else {
            0.0
        })
    }

    fn cdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let (a, b) = (params[0], params[1]);
        Some(((x - a) / (b - a)).clamp(0.0, 1.0))
    }

    fn inverse_cdf(&self, params: &[f64], p: f64) -> Option<f64> {
        Some(
            UniformAffine {
                a: params[0],
                b: params[1],
            }
            .inverse_cdf(p),
        )
    }

    fn prepare_generate(&self, params: &[f64]) -> Option<Arc<dyn PreparedGen>> {
        Some(Arc::new(UniformAffine {
            a: params[0],
            b: params[1],
        }))
    }

    fn prepare_inverse_cdf(&self, params: &[f64]) -> Option<Arc<dyn PreparedInverseCdf>> {
        Some(Arc::new(UniformAffine {
            a: params[0],
            b: params[1],
        }))
    }

    fn mean(&self, params: &[f64]) -> Option<f64> {
        Some(0.5 * (params[0] + params[1]))
    }

    fn variance(&self, params: &[f64]) -> Option<f64> {
        let w = params[1] - params[0];
        Some(w * w / 12.0)
    }

    fn support(&self, params: &[f64]) -> (f64, f64) {
        (params[0], params[1])
    }
}

/// The affine transform with the endpoints bound — shared by the plain
/// and prepared paths (generation *and* quantile) so each pair is one
/// expression and bit-identity holds by construction.
#[derive(Debug, Clone, Copy)]
struct UniformAffine {
    a: f64,
    b: f64,
}

impl PreparedGen for UniformAffine {
    #[inline]
    fn generate(&self, rng: &mut PipRng) -> f64 {
        let u: f64 = rng.gen();
        self.a + u * (self.b - self.a)
    }
}

impl PreparedInverseCdf for UniformAffine {
    #[inline]
    fn inverse_cdf(&self, p: f64) -> f64 {
        self.a + p.clamp(0.0, 1.0) * (self.b - self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    const P: [f64; 2] = [2.0, 6.0];

    #[test]
    fn validation() {
        assert!(Uniform.check_params(&P).is_ok());
        assert!(Uniform.check_params(&[3.0, 3.0]).is_err());
        assert!(Uniform.check_params(&[5.0, 1.0]).is_err());
        assert!(Uniform.check_params(&[f64::INFINITY, 1.0]).is_err());
    }

    #[test]
    fn cdf_pdf_quantile_consistency() {
        assert_eq!(Uniform.cdf(&P, 1.0), Some(0.0));
        assert_eq!(Uniform.cdf(&P, 4.0), Some(0.5));
        assert_eq!(Uniform.cdf(&P, 9.0), Some(1.0));
        assert_eq!(Uniform.pdf(&P, 4.0), Some(0.25));
        assert_eq!(Uniform.pdf(&P, 1.0), Some(0.0));
        assert_eq!(Uniform.inverse_cdf(&P, 0.25), Some(3.0));
        assert_eq!(Uniform.mean(&P), Some(4.0));
        assert!((Uniform.variance(&P).unwrap() - 16.0 / 12.0).abs() < 1e-12);
        assert_eq!(Uniform.support(&P), (2.0, 6.0));
    }

    #[test]
    fn samples_stay_in_support() {
        let mut rng = rng_from_seed(1);
        for _ in 0..5000 {
            let x = Uniform.generate(&P, &mut rng);
            assert!((2.0..6.0).contains(&x));
        }
    }

    #[test]
    fn sample_mean_converges() {
        let mut rng = rng_from_seed(2);
        let n = 20_000;
        let s: f64 = (0..n).map(|_| Uniform.generate(&P, &mut rng)).sum();
        assert!((s / n as f64 - 4.0).abs() < 0.05);
    }

    #[test]
    fn prepared_paths_are_bit_identical() {
        let gen = Uniform.prepare_generate(&P).unwrap();
        let mut a = rng_from_seed(9);
        let mut b = rng_from_seed(9);
        for _ in 0..2000 {
            let x = Uniform.generate(&P, &mut a);
            let y = gen.generate(&mut b);
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.state(), b.state(), "same draw count consumed");

        let inv = Uniform.prepare_inverse_cdf(&P).unwrap();
        for &p in &[0.0, 1e-12, 0.001, 0.25, 0.5, 0.75, 0.999, 1.0, -0.5, 1.5] {
            assert_eq!(
                Uniform.inverse_cdf(&P, p).unwrap().to_bits(),
                inv.inverse_cdf(p).to_bits()
            );
        }
    }
}
