//! The Beta distribution class: `Beta(alpha, beta)` on (0, 1).
//!
//! Not used by the paper's evaluation queries, but a natural member of
//! PIP's extensible class registry (Section V-B): rates, proportions and
//! probabilities-of-probabilities all live on (0,1). Demonstrates that a
//! user-supplied class with full `PDF`/`CDF`/`CDF⁻¹` capabilities gets
//! every optimization (CDF-bounded sampling, exact interval
//! probabilities) for free.

use pip_core::{PipError, Result};

use crate::distribution::DistributionClass;
use crate::gamma::Gamma;
use crate::rng::{open01, PipRng};
use crate::special;

/// `Beta(α, β)`, α, β > 0, supported on (0, 1).
///
/// `Generate` uses the Gamma-ratio construction `X/(X+Y)` with
/// `X ~ Gamma(α, 1)`, `Y ~ Gamma(β, 1)` (Marsaglia–Tsang under the
/// hood); `CDF` is the regularized incomplete beta `I_x(α, β)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Beta;

impl Beta {
    fn gamma_draw(shape: f64, rng: &mut PipRng) -> f64 {
        if shape >= 1.0 {
            Gamma::sample_mt(shape, rng)
        } else {
            let u = open01(rng);
            Gamma::sample_mt(shape + 1.0, rng) * u.powf(1.0 / shape)
        }
    }
}

impl DistributionClass for Beta {
    fn name(&self) -> &'static str {
        "Beta"
    }

    fn arity(&self) -> usize {
        2
    }

    fn validate(&self, params: &[f64]) -> Result<()> {
        let (a, b) = (params[0], params[1]);
        if !(a > 0.0) || !a.is_finite() || !(b > 0.0) || !b.is_finite() {
            return Err(PipError::InvalidParameter(format!(
                "Beta: need alpha > 0 and beta > 0, got ({a}, {b})"
            )));
        }
        Ok(())
    }

    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64 {
        let x = Self::gamma_draw(params[0], rng);
        let y = Self::gamma_draw(params[1], rng);
        x / (x + y)
    }

    fn pdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let (a, b) = (params[0], params[1]);
        if !(0.0..=1.0).contains(&x) || x == 0.0 || x == 1.0 {
            return Some(0.0);
        }
        Some(((a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - special::ln_beta(a, b)).exp())
    }

    fn cdf(&self, params: &[f64], x: f64) -> Option<f64> {
        Some(special::beta_inc(params[0], params[1], x))
    }

    fn inverse_cdf(&self, params: &[f64], p: f64) -> Option<f64> {
        let (a, b) = (params[0], params[1]);
        let cdf = |x: f64| special::beta_inc(a, b, x);
        Some(special::invert_cdf(cdf, p, 0.0, 1.0, a / (a + b)))
    }

    fn mean(&self, params: &[f64]) -> Option<f64> {
        Some(params[0] / (params[0] + params[1]))
    }

    fn variance(&self, params: &[f64]) -> Option<f64> {
        let (a, b) = (params[0], params[1]);
        let s = a + b;
        Some(a * b / (s * s * (s + 1.0)))
    }

    fn support(&self, _params: &[f64]) -> (f64, f64) {
        (0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    const P: [f64; 2] = [2.0, 3.0];

    #[test]
    fn validation() {
        assert!(Beta.check_params(&P).is_ok());
        assert!(Beta.check_params(&[0.0, 1.0]).is_err());
        assert!(Beta.check_params(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn uniform_special_case() {
        // Beta(1,1) is Uniform(0,1): CDF(x) = x.
        for &x in &[0.1, 0.5, 0.9] {
            assert!((Beta.cdf(&[1.0, 1.0], x).unwrap() - x).abs() < 1e-10);
            assert!((Beta.pdf(&[1.0, 1.0], x).unwrap() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn cdf_reference_values() {
        // I_{0.5}(2,3) = 0.6875 (closed form: 1-(1-x)^3(1+3x) pattern).
        let c = Beta.cdf(&P, 0.5).unwrap();
        assert!((c - 0.6875).abs() < 1e-9, "{c}");
        assert_eq!(Beta.cdf(&P, -0.5).unwrap(), 0.0);
        assert_eq!(Beta.cdf(&P, 1.5).unwrap(), 1.0);
    }

    #[test]
    fn quantile_round_trip() {
        for &p in &[0.05, 0.3, 0.5, 0.8, 0.99] {
            let x = Beta.inverse_cdf(&P, p).unwrap();
            assert!((Beta.cdf(&P, x).unwrap() - p).abs() < 1e-8);
        }
    }

    #[test]
    fn moments_and_samples() {
        assert!((Beta.mean(&P).unwrap() - 0.4).abs() < 1e-12);
        assert!((Beta.variance(&P).unwrap() - 0.04).abs() < 1e-12);
        let mut rng = rng_from_seed(31);
        let n = 20_000;
        let mut s = 0.0;
        for _ in 0..n {
            let x = Beta.generate(&P, &mut rng);
            assert!((0.0..=1.0).contains(&x));
            s += x;
        }
        assert!((s / n as f64 - 0.4).abs() < 0.01);
    }

    #[test]
    fn small_shape_sampling() {
        let mut rng = rng_from_seed(32);
        let p = [0.5, 0.5];
        let n = 10_000;
        let s: f64 = (0..n).map(|_| Beta.generate(&p, &mut rng)).sum();
        assert!((s / n as f64 - 0.5).abs() < 0.02);
    }
}
