//! The Normal distribution class: `Normal(mu, sigma)`.

use std::sync::Arc;

use pip_core::{PipError, Result};

use crate::distribution::{DistributionClass, PreparedGen, PreparedInverseCdf};
use crate::rng::{open01, PipRng};
use crate::special;

/// `Normal(μ, σ)` with standard deviation σ > 0.
///
/// `Generate` uses the inverse-CDF transform: one uniform draw mapped
/// through `Φ⁻¹`. This costs slightly more than Box–Muller but makes the
/// sample a *monotone* function of the uniform input, which is exactly
/// what the constrained (CDF-bounded) sampler in `pip-sampling` relies on.
#[derive(Debug, Clone, Copy, Default)]
pub struct Normal;

impl Normal {
    fn mu(params: &[f64]) -> f64 {
        params[0]
    }
    fn sigma(params: &[f64]) -> f64 {
        params[1]
    }
}

impl DistributionClass for Normal {
    fn name(&self) -> &'static str {
        "Normal"
    }

    fn arity(&self) -> usize {
        2
    }

    fn validate(&self, params: &[f64]) -> Result<()> {
        if !params[0].is_finite() {
            return Err(PipError::InvalidParameter(
                "Normal: mu must be finite".into(),
            ));
        }
        if !(params[1] > 0.0) || !params[1].is_finite() {
            return Err(PipError::InvalidParameter(format!(
                "Normal: sigma must be finite and > 0, got {}",
                params[1]
            )));
        }
        Ok(())
    }

    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64 {
        NormalDraw {
            mu: Self::mu(params),
            sigma: Self::sigma(params),
        }
        .generate(rng)
    }

    fn pdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let z = (x - Self::mu(params)) / Self::sigma(params);
        Some(special::normal_pdf(z) / Self::sigma(params))
    }

    fn cdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let z = (x - Self::mu(params)) / Self::sigma(params);
        Some(special::normal_cdf(z))
    }

    fn inverse_cdf(&self, params: &[f64], p: f64) -> Option<f64> {
        Some(
            NormalDraw {
                mu: Self::mu(params),
                sigma: Self::sigma(params),
            }
            .inverse_cdf(p),
        )
    }

    fn prepare_generate(&self, params: &[f64]) -> Option<Arc<dyn PreparedGen>> {
        Some(Arc::new(NormalDraw {
            mu: Self::mu(params),
            sigma: Self::sigma(params),
        }))
    }

    fn prepare_inverse_cdf(&self, params: &[f64]) -> Option<Arc<dyn PreparedInverseCdf>> {
        Some(Arc::new(NormalDraw {
            mu: Self::mu(params),
            sigma: Self::sigma(params),
        }))
    }

    fn mean(&self, params: &[f64]) -> Option<f64> {
        Some(Self::mu(params))
    }

    fn variance(&self, params: &[f64]) -> Option<f64> {
        let s = Self::sigma(params);
        Some(s * s)
    }
}

/// The affine inverse-CDF transform with `(μ, σ)` bound — shared by the
/// plain and prepared paths so both are one expression (the compiled
/// kernels' `PreparedGen` contract demands bit-identical draws, and
/// structural sharing makes that true by construction).
#[derive(Debug, Clone, Copy)]
struct NormalDraw {
    mu: f64,
    sigma: f64,
}

impl PreparedGen for NormalDraw {
    #[inline]
    fn generate(&self, rng: &mut PipRng) -> f64 {
        let u = open01(rng);
        self.mu + self.sigma * special::inverse_normal_cdf(u)
    }
}

impl PreparedInverseCdf for NormalDraw {
    #[inline]
    fn inverse_cdf(&self, p: f64) -> f64 {
        self.mu + self.sigma * special::inverse_normal_cdf(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::capabilities;
    use crate::rng::rng_from_seed;

    const P: [f64; 2] = [5.0, 2.0];

    #[test]
    fn validation() {
        assert!(Normal.check_params(&P).is_ok());
        assert!(Normal.check_params(&[0.0, 0.0]).is_err());
        assert!(Normal.check_params(&[0.0, -1.0]).is_err());
        assert!(Normal.check_params(&[f64::NAN, 1.0]).is_err());
        assert!(Normal.check_params(&[0.0]).is_err());
    }

    #[test]
    fn moments() {
        assert_eq!(Normal.mean(&P), Some(5.0));
        assert_eq!(Normal.variance(&P), Some(4.0));
    }

    #[test]
    fn cdf_inverse_round_trip() {
        for &p in &[0.01, 0.3, 0.5, 0.77, 0.999] {
            let x = Normal.inverse_cdf(&P, p).unwrap();
            let back = Normal.cdf(&P, x).unwrap();
            assert!((back - p).abs() < 1e-9, "{back} vs {p}");
        }
    }

    #[test]
    fn pdf_integrates_cdf() {
        // Numeric derivative of CDF should match PDF.
        for &x in &[2.0, 5.0, 8.5] {
            let h = 1e-5;
            let d = (Normal.cdf(&P, x + h).unwrap() - Normal.cdf(&P, x - h).unwrap()) / (2.0 * h);
            let pdf = Normal.pdf(&P, x).unwrap();
            assert!((d - pdf).abs() < 1e-6, "{d} vs {pdf}");
        }
    }

    #[test]
    fn sample_moments_converge() {
        let mut rng = rng_from_seed(42);
        let n = 20_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = Normal.generate(&P, &mut rng);
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!((mean - 5.0).abs() < 0.06, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn full_capabilities() {
        let caps = capabilities(&Normal, &P);
        assert!(caps.has_pdf && caps.has_cdf && caps.has_inverse_cdf && caps.has_mean);
    }

    #[test]
    fn prepared_paths_are_bit_identical() {
        let gen = Normal.prepare_generate(&P).unwrap();
        let mut a = rng_from_seed(9);
        let mut b = rng_from_seed(9);
        for _ in 0..2000 {
            let x = Normal.generate(&P, &mut a);
            let y = gen.generate(&mut b);
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.state(), b.state(), "same draw count consumed");

        let inv = Normal.prepare_inverse_cdf(&P).unwrap();
        for &p in &[1e-12, 0.001, 0.3, 0.5, 0.99, 1.0 - 1e-12, 0.0, 1.0] {
            assert_eq!(
                Normal.inverse_cdf(&P, p).unwrap().to_bits(),
                inv.inverse_cdf(p).to_bits()
            );
        }
    }
}
