//! The Gamma distribution class: `Gamma(shape, scale)`.

use pip_core::{PipError, Result};

use crate::distribution::DistributionClass;
use crate::rng::{open01, PipRng};
use crate::special;

/// `Gamma(k, θ)` with shape k > 0 and scale θ > 0, supported on `(0, ∞)`.
///
/// `Generate` uses the Marsaglia–Tsang (2000) squeeze method, boosted to
/// shapes < 1 via the `U^{1/k}` trick. `CDF` is the regularized lower
/// incomplete gamma; `CDF⁻¹` falls back to the generic monotone inverter.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gamma;

impl Gamma {
    fn shape(params: &[f64]) -> f64 {
        params[0]
    }
    fn scale(params: &[f64]) -> f64 {
        params[1]
    }

    /// Marsaglia–Tsang for shape ≥ 1 (shared with the Beta sampler).
    pub(crate) fn sample_mt(shape: f64, rng: &mut PipRng) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            // Standard normal draw via inverse CDF (keeps determinism simple).
            let x = special::inverse_normal_cdf(open01(rng));
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v = v * v * v;
            let u = open01(rng);
            // Squeeze acceptance (fast path), then the full log test.
            if u < 1.0 - 0.0331 * x * x * x * x {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl DistributionClass for Gamma {
    fn name(&self) -> &'static str {
        "Gamma"
    }

    fn arity(&self) -> usize {
        2
    }

    fn validate(&self, params: &[f64]) -> Result<()> {
        let (k, t) = (params[0], params[1]);
        if !(k > 0.0) || !k.is_finite() || !(t > 0.0) || !t.is_finite() {
            return Err(PipError::InvalidParameter(format!(
                "Gamma: need shape > 0 and scale > 0, got ({k}, {t})"
            )));
        }
        Ok(())
    }

    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64 {
        let k = Self::shape(params);
        let theta = Self::scale(params);
        if k >= 1.0 {
            theta * Self::sample_mt(k, rng)
        } else {
            // Boost: Gamma(k) = Gamma(k+1) * U^{1/k}
            let u: f64 = open01(rng);
            theta * Self::sample_mt(k + 1.0, rng) * u.powf(1.0 / k)
        }
    }

    fn pdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let (k, t) = (Self::shape(params), Self::scale(params));
        if x <= 0.0 {
            return Some(0.0);
        }
        let log_pdf = (k - 1.0) * x.ln() - x / t - special::ln_gamma(k) - k * t.ln();
        Some(log_pdf.exp())
    }

    fn cdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let (k, t) = (Self::shape(params), Self::scale(params));
        if x <= 0.0 {
            return Some(0.0);
        }
        Some(special::gamma_p(k, x / t))
    }

    fn inverse_cdf(&self, params: &[f64], p: f64) -> Option<f64> {
        let (k, t) = (Self::shape(params), Self::scale(params));
        let mean = k * t;
        let cdf = |x: f64| self.cdf(params, x).unwrap_or(0.0);
        Some(special::invert_cdf(cdf, p, 0.0, f64::INFINITY, mean))
    }

    fn mean(&self, params: &[f64]) -> Option<f64> {
        Some(Self::shape(params) * Self::scale(params))
    }

    fn variance(&self, params: &[f64]) -> Option<f64> {
        let t = Self::scale(params);
        Some(Self::shape(params) * t * t)
    }

    fn support(&self, _params: &[f64]) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    const P: [f64; 2] = [3.0, 2.0];

    #[test]
    fn validation() {
        assert!(Gamma.check_params(&P).is_ok());
        assert!(Gamma.check_params(&[0.0, 1.0]).is_err());
        assert!(Gamma.check_params(&[1.0, -1.0]).is_err());
    }

    #[test]
    fn cdf_matches_exponential_for_shape_one() {
        // Gamma(1, 1/λ) is Exponential(λ)
        for &x in &[0.1, 0.5, 2.0] {
            let c = Gamma.cdf(&[1.0, 0.5], x).unwrap();
            assert!((c - (1.0 - (-2.0 * x).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_round_trip() {
        for &p in &[0.05, 0.5, 0.95] {
            let x = Gamma.inverse_cdf(&P, p).unwrap();
            assert!((Gamma.cdf(&P, x).unwrap() - p).abs() < 1e-8);
        }
    }

    #[test]
    fn sample_moments_converge_for_large_shape() {
        let mut rng = rng_from_seed(7);
        let n = 20_000;
        let mut s = 0.0;
        for _ in 0..n {
            let x = Gamma.generate(&P, &mut rng);
            assert!(x > 0.0);
            s += x;
        }
        assert!((s / n as f64 - 6.0).abs() < 0.1);
    }

    #[test]
    fn sample_moments_converge_for_small_shape() {
        let mut rng = rng_from_seed(8);
        let n = 20_000;
        let s: f64 = (0..n).map(|_| Gamma.generate(&[0.5, 1.0], &mut rng)).sum();
        assert!((s / n as f64 - 0.5).abs() < 0.03);
    }

    #[test]
    fn pdf_zero_outside_support() {
        assert_eq!(Gamma.pdf(&P, -1.0), Some(0.0));
        assert_eq!(Gamma.cdf(&P, -1.0), Some(0.0));
    }
}
