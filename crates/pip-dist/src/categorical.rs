//! The Categorical distribution class: `Categorical(w₀, w₁, …, wₙ₋₁)`.
//!
//! Takes one weight per outcome and samples the outcome *index*
//! `0..n−1` with probability `wᵢ / Σw`. This is the distribution behind
//! PIP's MayBMS-style `repair-key` operator (paper Section V-A footnote:
//! "For discrete distributions, PIP uses a repair-key operator similar
//! to that used in [11]"): each key group of a repaired table becomes one
//! Categorical variable selecting which alternative row exists.

use pip_core::{PipError, Result};
use rand::Rng;

use crate::distribution::DistributionClass;
use crate::rng::PipRng;

/// `Categorical(weights…)` over outcomes `0..weights.len()`.
///
/// Weights need not be normalized; they must be finite, non-negative,
/// and sum to something positive.
#[derive(Debug, Clone, Copy, Default)]
pub struct Categorical;

impl Categorical {
    fn total(params: &[f64]) -> f64 {
        params.iter().sum()
    }
}

impl DistributionClass for Categorical {
    fn name(&self) -> &'static str {
        "Categorical"
    }

    fn is_discrete(&self) -> bool {
        true
    }

    fn arity(&self) -> usize {
        1 // minimum; see variable_arity
    }

    fn variable_arity(&self) -> bool {
        true
    }

    fn validate(&self, params: &[f64]) -> Result<()> {
        if params.is_empty() {
            return Err(PipError::InvalidParameter(
                "Categorical: need at least one weight".into(),
            ));
        }
        if params.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(PipError::InvalidParameter(
                "Categorical: weights must be finite and non-negative".into(),
            ));
        }
        if Self::total(params) <= 0.0 {
            return Err(PipError::InvalidParameter(
                "Categorical: weights must sum to a positive value".into(),
            ));
        }
        Ok(())
    }

    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64 {
        let u: f64 = rng.gen::<f64>() * Self::total(params);
        let mut acc = 0.0;
        for (i, w) in params.iter().enumerate() {
            acc += w;
            if u < acc {
                return i as f64;
            }
        }
        (params.len() - 1) as f64
    }

    fn pdf(&self, params: &[f64], x: f64) -> Option<f64> {
        if x.fract() != 0.0 || x < 0.0 || x >= params.len() as f64 {
            return Some(0.0);
        }
        Some(params[x as usize] / Self::total(params))
    }

    fn cdf(&self, params: &[f64], x: f64) -> Option<f64> {
        if x < 0.0 {
            return Some(0.0);
        }
        let k = (x.floor() as usize).min(params.len() - 1);
        Some(params[..=k].iter().sum::<f64>() / Self::total(params))
    }

    fn inverse_cdf(&self, params: &[f64], p: f64) -> Option<f64> {
        let target = p.clamp(0.0, 1.0) * Self::total(params);
        let mut acc = 0.0;
        for (i, w) in params.iter().enumerate() {
            acc += w;
            if target <= acc {
                return Some(i as f64);
            }
        }
        Some((params.len() - 1) as f64)
    }

    fn mean(&self, params: &[f64]) -> Option<f64> {
        let t = Self::total(params);
        Some(
            params
                .iter()
                .enumerate()
                .map(|(i, w)| i as f64 * w / t)
                .sum(),
        )
    }

    fn variance(&self, params: &[f64]) -> Option<f64> {
        let t = Self::total(params);
        let m = self.mean(params)?;
        Some(
            params
                .iter()
                .enumerate()
                .map(|(i, w)| (i as f64 - m) * (i as f64 - m) * w / t)
                .sum(),
        )
    }

    fn support(&self, params: &[f64]) -> (f64, f64) {
        (0.0, (params.len() - 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    const P: [f64; 3] = [1.0, 2.0, 1.0];

    #[test]
    fn validation() {
        assert!(Categorical.check_params(&P).is_ok());
        assert!(Categorical.check_params(&[]).is_err());
        assert!(Categorical.check_params(&[1.0, -1.0]).is_err());
        assert!(Categorical.check_params(&[0.0, 0.0]).is_err());
        assert!(Categorical.check_params(&[5.0]).is_ok(), "variable arity");
        assert!(Categorical.is_discrete());
    }

    #[test]
    fn pmf_and_cdf() {
        assert_eq!(Categorical.pdf(&P, 0.0), Some(0.25));
        assert_eq!(Categorical.pdf(&P, 1.0), Some(0.5));
        assert_eq!(Categorical.pdf(&P, 1.5), Some(0.0));
        assert_eq!(Categorical.pdf(&P, 5.0), Some(0.0));
        assert_eq!(Categorical.cdf(&P, -0.5), Some(0.0));
        assert_eq!(Categorical.cdf(&P, 0.0), Some(0.25));
        assert_eq!(Categorical.cdf(&P, 1.0), Some(0.75));
        assert_eq!(Categorical.cdf(&P, 9.0), Some(1.0));
        assert_eq!(Categorical.support(&P), (0.0, 2.0));
    }

    #[test]
    fn quantile_is_discrete_inverse() {
        assert_eq!(Categorical.inverse_cdf(&P, 0.2), Some(0.0));
        assert_eq!(Categorical.inverse_cdf(&P, 0.5), Some(1.0));
        assert_eq!(Categorical.inverse_cdf(&P, 0.9), Some(2.0));
    }

    #[test]
    fn moments() {
        // mean = 0·0.25 + 1·0.5 + 2·0.25 = 1
        assert_eq!(Categorical.mean(&P), Some(1.0));
        assert_eq!(Categorical.variance(&P), Some(0.5));
    }

    #[test]
    fn sampling_frequencies() {
        let mut rng = rng_from_seed(44);
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[Categorical.generate(&P, &mut rng) as usize] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.25).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let p = [0.0, 1.0, 0.0];
        let mut rng = rng_from_seed(45);
        for _ in 0..500 {
            assert_eq!(Categorical.generate(&p, &mut rng), 1.0);
        }
        assert_eq!(Categorical.pdf(&p, 0.0), Some(0.0));
    }
}
