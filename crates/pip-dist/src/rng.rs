//! Deterministic, seedable random number generation.
//!
//! PIP stores random variables symbolically; a variable may appear at many
//! places in a query result, and the paper (Section III-B) requires that
//! "the sampling process generates consistent values for the variable
//! within a given sample". We achieve this by deriving the generator seed
//! from `(world_seed, variable id, subscript)` with a strong mixer, so
//! `Generate(params, seed)` is a pure function and no per-variable state
//! needs to be kept.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Combine a world seed with a variable identity into one generator seed.
#[inline]
pub fn var_seed(world_seed: u64, var_id: u64, subscript: u32) -> u64 {
    mix64(mix64(world_seed ^ 0xA076_1D64_78BD_642F).wrapping_add(var_id))
        .wrapping_add(mix64((subscript as u64).wrapping_add(0x589965CC75374CC3)))
}

/// The deterministic RNG used by every distribution's `Generate`.
pub type PipRng = StdRng;

/// A fresh generator for `(world_seed, var_id, subscript)`.
pub fn rng_for(world_seed: u64, var_id: u64, subscript: u32) -> PipRng {
    StdRng::seed_from_u64(var_seed(world_seed, var_id, subscript))
}

/// A fresh generator from a bare seed (workload generators, tests).
pub fn rng_from_seed(seed: u64) -> PipRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform draw on the *open* interval (0, 1) — never exactly 0 or 1, so
/// inverse-CDF transforms stay finite.
#[inline]
pub fn open01(rng: &mut impl Rng) -> f64 {
    loop {
        let u: f64 = rng.gen(); // [0, 1)
        if u > 0.0 {
            return u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
        // Nearby inputs should differ in many bits.
        let d = (mix64(1) ^ mix64(2)).count_ones();
        assert!(d > 16, "poor avalanche: {d} bits");
    }

    #[test]
    fn var_seed_separates_ids_and_subscripts() {
        let s = var_seed(7, 1, 0);
        assert_eq!(s, var_seed(7, 1, 0));
        assert_ne!(s, var_seed(7, 2, 0));
        assert_ne!(s, var_seed(7, 1, 1));
        assert_ne!(s, var_seed(8, 1, 0));
    }

    #[test]
    fn rng_reproducible() {
        let a: f64 = rng_for(1, 2, 3).gen();
        let b: f64 = rng_for(1, 2, 3).gen();
        assert_eq!(a, b);
    }

    #[test]
    fn open01_in_open_interval() {
        let mut rng = rng_from_seed(5);
        for _ in 0..10_000 {
            let u = open01(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }
}
