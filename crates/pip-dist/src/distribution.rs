//! The distribution-class framework (paper Section V-B).
//!
//! A *distribution class* is PIP's unit of extensibility: every class must
//! provide `Generate`; `PDF`, `CDF` and `InverseCDF` are optional
//! capabilities that the sampling layer exploits when present (inverse-CDF
//! constrained sampling, exact probability computation, Metropolis
//! proposals). This mirrors the C-function vtable of the Postgres plugin.

use std::fmt;
use std::sync::Arc;

use pip_core::{PipError, Result};

use crate::rng::PipRng;

/// A sampler for one *fixed* parameter vector, with every
/// parameter-dependent constant hoisted out of the draw loop.
///
/// Contract: `generate` MUST consume exactly the same RNG draws and
/// return bit-identical values to [`DistributionClass::generate`] with
/// the same params — prepared samplers are a pure speed capability that
/// the compiled kernels in `pip-sampling` exploit in tight loops, and
/// PIP's reproducibility story depends on the streams never diverging.
pub trait PreparedGen: Send + Sync + fmt::Debug {
    fn generate(&self, rng: &mut PipRng) -> f64;
}

/// A prepared inverse-CDF transform for one fixed parameter vector.
///
/// Same contract as [`PreparedGen`]: `inverse_cdf(p)` must be
/// bit-identical to [`DistributionClass::inverse_cdf`] with the same
/// params, for every `p` the caller can produce. Used by the compiled
/// CDF-bounded samplers, whose uniform inputs are already restricted to
/// the valid box.
pub trait PreparedInverseCdf: Send + Sync + fmt::Debug {
    fn inverse_cdf(&self, p: f64) -> f64;
}

/// A parametrized class of univariate probability distributions.
///
/// Implementations must be deterministic functions of `(params, rng)`;
/// PIP derives the rng from `(world seed, variable id)` so that a variable
/// appearing at several places in a query takes one consistent value per
/// sampled world.
pub trait DistributionClass: Send + Sync + fmt::Debug {
    /// Class name used by `CREATE_VARIABLE('Normal', ...)` and the registry.
    fn name(&self) -> &'static str;

    /// Discrete classes produce integer-valued samples and are handled by
    /// the c-table layer via enumeration/exploding where possible
    /// (Section III-C of the paper).
    fn is_discrete(&self) -> bool {
        false
    }

    /// Number of parameters this class expects.
    fn arity(&self) -> usize;

    /// Classes like `Categorical` take a variable-length parameter
    /// vector; when true, [`DistributionClass::check_params`] skips the
    /// arity check (validation still runs).
    fn variable_arity(&self) -> bool {
        false
    }

    /// Validate a parameter vector (`Err` aborts `CREATE_VARIABLE`).
    fn validate(&self, params: &[f64]) -> Result<()>;

    /// **Required capability**: draw one sample.
    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64;

    /// Optional capability: probability density (mass for discrete) at `x`.
    fn pdf(&self, _params: &[f64], _x: f64) -> Option<f64> {
        None
    }

    /// Optional capability: `P[X ≤ x]`.
    fn cdf(&self, _params: &[f64], _x: f64) -> Option<f64> {
        None
    }

    /// Optional capability: smallest `x` with `CDF(x) ≥ p`.
    fn inverse_cdf(&self, _params: &[f64], _p: f64) -> Option<f64> {
        None
    }

    /// Optional capability: exact mean (lets `expectation()` skip sampling
    /// entirely for unconstrained variables).
    fn mean(&self, _params: &[f64]) -> Option<f64> {
        None
    }

    /// Optional capability: exact variance.
    fn variance(&self, _params: &[f64]) -> Option<f64> {
        None
    }

    /// Support of the distribution, `(lo, hi)`; used to intersect with
    /// condition-derived bounds before constrained sampling.
    fn support(&self, _params: &[f64]) -> (f64, f64) {
        (f64::NEG_INFINITY, f64::INFINITY)
    }

    /// Optional capability: a [`PreparedGen`] with the per-params
    /// constants of `generate` precomputed (e.g. Poisson's `e^-λ`).
    /// Must be draw-for-draw, bit-for-bit identical to `generate`.
    fn prepare_generate(&self, _params: &[f64]) -> Option<Arc<dyn PreparedGen>> {
        None
    }

    /// Optional capability: a [`PreparedInverseCdf`] bound to `params`.
    /// Must be bit-identical to `inverse_cdf` at every probability.
    fn prepare_inverse_cdf(&self, _params: &[f64]) -> Option<Arc<dyn PreparedInverseCdf>> {
        None
    }

    /// Check the parameter count, then `validate`.
    fn check_params(&self, params: &[f64]) -> Result<()> {
        if !self.variable_arity() && params.len() != self.arity() {
            return Err(PipError::InvalidParameter(format!(
                "{} expects {} parameter(s), got {}",
                self.name(),
                self.arity(),
                params.len()
            )));
        }
        self.validate(params)
    }
}

/// Shared handle to a distribution class.
pub type DistRef = Arc<dyn DistributionClass>;

/// Capability summary, used by the sampler to pick a strategy and by
/// EXPLAIN-style diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    pub has_pdf: bool,
    pub has_cdf: bool,
    pub has_inverse_cdf: bool,
    pub has_mean: bool,
}

/// Probe which optional functions a class implements for given params.
pub fn capabilities(class: &dyn DistributionClass, params: &[f64]) -> Capabilities {
    // Probing at a support midpoint: classes return None unconditionally
    // when they lack a capability, so any probe point works.
    let (lo, hi) = class.support(params);
    let probe = if lo.is_finite() && hi.is_finite() {
        0.5 * (lo + hi)
    } else if lo.is_finite() {
        lo + 1.0
    } else if hi.is_finite() {
        hi - 1.0
    } else {
        0.0
    };
    Capabilities {
        has_pdf: class.pdf(params, probe).is_some(),
        has_cdf: class.cdf(params, probe).is_some(),
        has_inverse_cdf: class.inverse_cdf(params, 0.5).is_some(),
        has_mean: class.mean(params).is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    /// A deliberately bare-bones class: Generate only (like an MCDB
    /// "VG function" black box).
    #[derive(Debug)]
    struct BlackBox;

    impl DistributionClass for BlackBox {
        fn name(&self) -> &'static str {
            "BlackBox"
        }
        fn arity(&self) -> usize {
            1
        }
        fn validate(&self, _params: &[f64]) -> Result<()> {
            Ok(())
        }
        fn generate(&self, params: &[f64], _rng: &mut PipRng) -> f64 {
            params[0]
        }
    }

    #[test]
    fn default_capabilities_are_all_absent() {
        let caps = capabilities(&BlackBox, &[1.0]);
        assert!(!caps.has_pdf && !caps.has_cdf && !caps.has_inverse_cdf && !caps.has_mean);
    }

    #[test]
    fn check_params_enforces_arity() {
        assert!(BlackBox.check_params(&[1.0]).is_ok());
        let err = BlackBox.check_params(&[]).unwrap_err();
        assert!(matches!(err, PipError::InvalidParameter(_)));
    }

    #[test]
    fn generate_works_through_trait_object() {
        let d: DistRef = Arc::new(BlackBox);
        let mut rng = rng_from_seed(0);
        assert_eq!(d.generate(&[3.5], &mut rng), 3.5);
        assert!(!d.is_discrete());
        assert_eq!(d.support(&[3.5]), (f64::NEG_INFINITY, f64::INFINITY));
    }
}
