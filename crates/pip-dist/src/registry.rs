//! Registry of distribution classes, keyed by class name.
//!
//! Mirrors the paper's `CREATE VARIABLE(distribution, params...)` SQL
//! function: user code names a class, the registry resolves it, validates
//! the parameters, and hands back a shared [`DistRef`]. Registries are
//! extensible — new classes can be registered at runtime (Section V-B).

use std::collections::HashMap;
use std::sync::Arc;

use pip_core::{PipError, Result};

use crate::beta::Beta;
use crate::categorical::Categorical;
use crate::discrete::{Bernoulli, DiscreteUniform};
use crate::distribution::DistRef;
use crate::exponential::Exponential;
use crate::gamma::Gamma;
use crate::normal::Normal;
use crate::poisson::Poisson;
use crate::uniform::Uniform;

/// Name → class registry.
#[derive(Debug, Clone, Default)]
pub struct DistributionRegistry {
    classes: HashMap<String, DistRef>,
}

impl DistributionRegistry {
    /// Empty registry (no classes at all).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Registry pre-loaded with every built-in class.
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.register(Arc::new(Normal));
        r.register(Arc::new(Beta));
        r.register(Arc::new(Categorical));
        r.register(Arc::new(Uniform));
        r.register(Arc::new(Exponential));
        r.register(Arc::new(Gamma));
        r.register(Arc::new(Poisson));
        r.register(Arc::new(Bernoulli));
        r.register(Arc::new(DiscreteUniform));
        r
    }

    /// Register (or replace) a class under its own name.
    pub fn register(&mut self, class: DistRef) {
        self.classes.insert(class.name().to_string(), class);
    }

    /// Look a class up by name (case-sensitive, as in the paper's SQL API).
    pub fn get(&self, name: &str) -> Result<DistRef> {
        self.classes
            .get(name)
            .cloned()
            .ok_or_else(|| PipError::NotFound(format!("distribution class '{name}'")))
    }

    /// Resolve `name` and validate `params` in one step.
    pub fn resolve(&self, name: &str, params: &[f64]) -> Result<DistRef> {
        let class = self.get(name)?;
        class.check_params(params)?;
        Ok(class)
    }

    /// Names of all registered classes, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut ns: Vec<&str> = self.classes.keys().map(String::as_str).collect();
        ns.sort_unstable();
        ns
    }
}

/// Convenience handles to the built-in classes (avoids registry lookups in
/// library code and tests).
pub mod builtin {
    use super::*;

    pub fn normal() -> DistRef {
        Arc::new(Normal)
    }
    pub fn beta() -> DistRef {
        Arc::new(Beta)
    }
    pub fn categorical() -> DistRef {
        Arc::new(Categorical)
    }
    pub fn uniform() -> DistRef {
        Arc::new(Uniform)
    }
    pub fn exponential() -> DistRef {
        Arc::new(Exponential)
    }
    pub fn gamma() -> DistRef {
        Arc::new(Gamma)
    }
    pub fn poisson() -> DistRef {
        Arc::new(Poisson)
    }
    pub fn bernoulli() -> DistRef {
        Arc::new(Bernoulli)
    }
    pub fn discrete_uniform() -> DistRef {
        Arc::new(DiscreteUniform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionClass;
    use crate::rng::PipRng;

    #[test]
    fn builtins_present() {
        let r = DistributionRegistry::with_builtins();
        assert_eq!(
            r.names(),
            vec![
                "Bernoulli",
                "Beta",
                "Categorical",
                "DiscreteUniform",
                "Exponential",
                "Gamma",
                "Normal",
                "Poisson",
                "Uniform"
            ]
        );
    }

    #[test]
    fn resolve_validates() {
        let r = DistributionRegistry::with_builtins();
        assert!(r.resolve("Normal", &[0.0, 1.0]).is_ok());
        assert!(r.resolve("Normal", &[0.0, -1.0]).is_err());
        assert!(r.resolve("Normal", &[0.0]).is_err());
        assert!(matches!(
            r.resolve("NoSuchDist", &[]),
            Err(PipError::NotFound(_))
        ));
    }

    #[test]
    fn user_extension_replaces_and_extends() {
        #[derive(Debug)]
        struct Dirac;
        impl DistributionClass for Dirac {
            fn name(&self) -> &'static str {
                "Dirac"
            }
            fn arity(&self) -> usize {
                1
            }
            fn validate(&self, _p: &[f64]) -> Result<()> {
                Ok(())
            }
            fn generate(&self, p: &[f64], _rng: &mut PipRng) -> f64 {
                p[0]
            }
        }
        let mut r = DistributionRegistry::with_builtins();
        r.register(Arc::new(Dirac));
        assert!(r.get("Dirac").is_ok());
        assert_eq!(r.names().len(), 10);
    }
}
