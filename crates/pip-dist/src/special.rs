//! Special functions implemented from scratch.
//!
//! The offline-dependency policy (DESIGN.md §6) rules out `statrs`/`libm`,
//! so the error function, its inverse, the log-gamma function and the
//! regularized incomplete gamma functions — everything the distribution
//! classes need for their `PDF`/`CDF`/`CDF⁻¹` capabilities — are
//! implemented here against published algorithms:
//!
//! * `erf`/`erfc`: computed through the regularized incomplete gamma
//!   identity `erf(x) = sgn(x)·P(½, x²)`, which inherits the near-machine
//!   precision of the series / continued-fraction evaluation below.
//! * `inverse_normal_cdf`: Acklam's algorithm plus one Halley refinement
//!   step, relative error below 1e-9 over (0,1).
//! * `ln_gamma`: Lanczos approximation (g = 7, n = 9 coefficients).
//! * `gamma_p`/`gamma_q`: regularized incomplete gamma via series /
//!   continued-fraction split at `x = a + 1` (Numerical Recipes §6.2).

/// Machine-level convergence threshold for iterative expansions.
const EPS: f64 = 1e-15;
/// Iteration cap for series/continued fractions; generous for f64.
const MAX_ITER: usize = 500;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// Computed as `sgn(x)·P(½, x²)` where `P` is the regularized lower
/// incomplete gamma function, inheriting its near-machine precision.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// For x ≥ 0 this is `Q(½, x²)`, which stays accurate deep into the tail
/// (the continued fraction carries the `e^{−x²}` factor explicitly).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Inverse error function on (−1, 1).
pub fn erf_inv(y: f64) -> f64 {
    if y <= -1.0 {
        return f64::NEG_INFINITY;
    }
    if y >= 1.0 {
        return f64::INFINITY;
    }
    // erf(x) = y  <=>  x = Phi^{-1}((y+1)/2) / sqrt(2)
    inverse_normal_cdf(0.5 * (y + 1.0)) / std::f64::consts::SQRT_2
}

/// Standard normal CDF `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal PDF `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Acklam's rational approximation to `Φ⁻¹(p)`, |rel ε| < 1.15e-9.
fn inverse_normal_cdf_acklam(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal quantile `Φ⁻¹(p)` with one Halley refinement step on
/// top of Acklam's approximation (full double precision in practice).
pub fn inverse_normal_cdf(p: f64) -> f64 {
    let x = inverse_normal_cdf_acklam(p);
    if !x.is_finite() {
        return x;
    }
    // Halley's method: e = Phi(x) - p; u = e / phi(x);
    // x' = x - u / (1 + x*u/2)
    let e = normal_cdf(x) - p;
    let u = e / normal_pdf(x);
    x - u / (1.0 + x * u / 2.0)
}

/// Lanczos approximation of `ln Γ(x)` for x > 0.
pub fn ln_gamma(x: f64) -> f64 {
    // g = 7, n = 9 coefficients (Godfrey / Pugh tabulation).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction for the rest
/// (computing `Q` and returning `1 − Q`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if x < 0.0 || a <= 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series representation of `P(a, x)` (converges fast for x < a+1).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz continued fraction for `Q(a, x)` (converges fast for x ≥ a+1).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// `ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)` via the Lentz
/// continued fraction (Numerical Recipes §6.4), using the symmetry
/// `I_x(a,b) = 1 − I_{1−x}(b,a)` to stay in the fast-converging region.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 {
        return f64::NAN;
    }
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz evaluation of the incomplete-beta continued fraction.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Monotone-CDF numeric inversion by bisection + Newton polish.
///
/// Generic fallback used by distribution classes that have a `CDF` but no
/// closed-form `CDF⁻¹` (e.g. Gamma). `lo`/`hi` must bracket the quantile;
/// infinite brackets are first shrunk by doubling steps from `start`.
pub fn invert_cdf<F: Fn(f64) -> f64>(cdf: F, p: f64, mut lo: f64, mut hi: f64, start: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    if p <= 0.0 {
        return lo;
    }
    if p >= 1.0 {
        return hi;
    }
    // Establish finite brackets by doubling outward from `start`.
    if !lo.is_finite() {
        let mut step = 1.0_f64.max(start.abs());
        lo = start - step;
        while cdf(lo) > p {
            step *= 2.0;
            lo = start - step;
            if step > 1e300 {
                break;
            }
        }
    }
    if !hi.is_finite() {
        let mut step = 1.0_f64.max(start.abs());
        hi = start + step;
        while cdf(hi) < p {
            step *= 2.0;
            hi = start + step;
            if step > 1e300 {
                break;
            }
        }
    }
    // Bisection to ~1e-12 relative width.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if !(mid > lo && mid < hi) {
            break; // interval collapsed to adjacent floats
        }
        if cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo).abs() <= 1e-13 * (1.0 + mid.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "expected {b}, got {a} (tol {tol})"
        );
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun table 7.1.
        assert_close(erf(0.0), 0.0, 1e-12);
        assert_close(erf(0.5), 0.5204998778, 1e-7);
        assert_close(erf(1.0), 0.8427007929, 1e-7);
        assert_close(erf(2.0), 0.9953222650, 1e-7);
        assert_close(erf(-1.0), -0.8427007929, 1e-7);
        assert_close(erf(3.5), 0.999999257, 1e-7);
    }

    #[test]
    fn erfc_tails() {
        assert_close(erfc(3.0), 2.209049699858544e-5, 1e-5);
        assert!(erfc(10.0) > 0.0 && erfc(10.0) < 1e-20);
        assert_close(erfc(-3.0), 2.0 - 2.209049699858544e-5, 1e-7);
    }

    #[test]
    fn erf_inv_round_trip() {
        for &y in &[-0.99, -0.5, -0.1, 0.0, 0.1, 0.5, 0.9, 0.999] {
            assert_close(erf(erf_inv(y)), y, 1e-9);
        }
        assert_eq!(erf_inv(1.0), f64::INFINITY);
        assert_eq!(erf_inv(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert_close(normal_cdf(0.0), 0.5, 1e-12);
        assert_close(normal_cdf(1.0), 0.8413447460685429, 1e-9);
        assert_close(normal_cdf(-1.96), 0.024997895148220435, 1e-7);
        assert_close(normal_cdf(3.0), 0.9986501019683699, 1e-9);
    }

    #[test]
    fn inverse_normal_round_trip() {
        for &p in &[1e-10, 1e-5, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0 - 1e-9] {
            assert_close(normal_cdf(inverse_normal_cdf(p)), p, 1e-9);
        }
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
        assert_close(inverse_normal_cdf(0.975), 1.959963984540054, 1e-8);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(10.5) = 9.5·8.5·…·0.5·√π  →  ln Γ(10.5) ≈ 13.940625219403767
        assert_close(ln_gamma(10.5), 13.940625219403767, 1e-10);
    }

    #[test]
    fn gamma_p_q_complementarity() {
        for &(a, x) in &[
            (0.5, 0.3),
            (1.0, 1.0),
            (3.0, 2.0),
            (10.0, 14.0),
            (100.0, 90.0),
        ] {
            assert_close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_reference_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF)
        for &x in &[0.1, 1.0, 2.5, 8.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0, P(a, inf) -> 1
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        assert_close(gamma_p(3.0, 1e4), 1.0, 1e-12);
        // chi-square with k=4 at x=4: P(2, 2) ≈ 0.59399415
        assert_close(gamma_p(2.0, 2.0), 0.5939941502901616, 1e-10);
    }

    #[test]
    fn gamma_edge_cases() {
        assert!(gamma_p(-1.0, 1.0).is_nan());
        assert!(gamma_p(1.0, -1.0).is_nan());
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
    }

    #[test]
    fn invert_cdf_recovers_normal_quantiles() {
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let x = invert_cdf(normal_cdf, p, f64::NEG_INFINITY, f64::INFINITY, 0.0);
            assert_close(x, inverse_normal_cdf(p), 1e-9);
        }
    }

    #[test]
    fn invert_cdf_respects_finite_bounds() {
        // Uniform[2, 5]
        let cdf = |x: f64| ((x - 2.0) / 3.0).clamp(0.0, 1.0);
        assert_close(invert_cdf(cdf, 0.5, 2.0, 5.0, 3.0), 3.5, 1e-10);
        assert_eq!(invert_cdf(cdf, 0.0, 2.0, 5.0, 3.0), 2.0);
        assert_eq!(invert_cdf(cdf, 1.0, 2.0, 5.0, 3.0), 5.0);
    }
}
