//! Simple discrete distribution classes: `Bernoulli(p)` and
//! `DiscreteUniform(a, b)`.
//!
//! Discrete variables with small finite domains are what the c-table layer
//! can *explode* into per-valuation rows with mutually exclusive conditions
//! (paper Section III-C), after which deterministic query optimization
//! handles them; these two classes are the canonical inputs for that path.

use pip_core::{PipError, Result};

use crate::distribution::DistributionClass;
use crate::rng::PipRng;
use rand::Rng;

/// `Bernoulli(p)`: 1 with probability p, else 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bernoulli;

impl DistributionClass for Bernoulli {
    fn name(&self) -> &'static str {
        "Bernoulli"
    }

    fn is_discrete(&self) -> bool {
        true
    }

    fn arity(&self) -> usize {
        1
    }

    fn validate(&self, params: &[f64]) -> Result<()> {
        if !(0.0..=1.0).contains(&params[0]) {
            return Err(PipError::InvalidParameter(format!(
                "Bernoulli: p must be in [0,1], got {}",
                params[0]
            )));
        }
        Ok(())
    }

    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64 {
        let u: f64 = rng.gen();
        if u < params[0] {
            1.0
        } else {
            0.0
        }
    }

    fn pdf(&self, params: &[f64], x: f64) -> Option<f64> {
        Some(if x == 1.0 {
            params[0]
        } else if x == 0.0 {
            1.0 - params[0]
        } else {
            0.0
        })
    }

    fn cdf(&self, params: &[f64], x: f64) -> Option<f64> {
        Some(if x < 0.0 {
            0.0
        } else if x < 1.0 {
            1.0 - params[0]
        } else {
            1.0
        })
    }

    fn inverse_cdf(&self, params: &[f64], p: f64) -> Option<f64> {
        Some(if p <= 1.0 - params[0] { 0.0 } else { 1.0 })
    }

    fn mean(&self, params: &[f64]) -> Option<f64> {
        Some(params[0])
    }

    fn variance(&self, params: &[f64]) -> Option<f64> {
        Some(params[0] * (1.0 - params[0]))
    }

    fn support(&self, _params: &[f64]) -> (f64, f64) {
        (0.0, 1.0)
    }
}

/// `DiscreteUniform(a, b)`: integers a..=b with equal probability.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscreteUniform;

impl DiscreteUniform {
    fn bounds(params: &[f64]) -> (i64, i64) {
        (params[0] as i64, params[1] as i64)
    }
}

impl DistributionClass for DiscreteUniform {
    fn name(&self) -> &'static str {
        "DiscreteUniform"
    }

    fn is_discrete(&self) -> bool {
        true
    }

    fn arity(&self) -> usize {
        2
    }

    fn validate(&self, params: &[f64]) -> Result<()> {
        if params[0].fract() != 0.0 || params[1].fract() != 0.0 || params[0] > params[1] {
            return Err(PipError::InvalidParameter(format!(
                "DiscreteUniform: need integers a <= b, got ({}, {})",
                params[0], params[1]
            )));
        }
        Ok(())
    }

    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64 {
        let (a, b) = Self::bounds(params);
        rng.gen_range(a..=b) as f64
    }

    fn pdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let (a, b) = Self::bounds(params);
        let n = (b - a + 1) as f64;
        Some(if x.fract() == 0.0 && (a..=b).contains(&(x as i64)) {
            1.0 / n
        } else {
            0.0
        })
    }

    fn cdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let (a, b) = Self::bounds(params);
        let n = (b - a + 1) as f64;
        let k = x.floor();
        Some(if k < a as f64 {
            0.0
        } else if k >= b as f64 {
            1.0
        } else {
            (k - a as f64 + 1.0) / n
        })
    }

    fn inverse_cdf(&self, params: &[f64], p: f64) -> Option<f64> {
        let (a, b) = Self::bounds(params);
        let n = (b - a + 1) as f64;
        let k = a as f64 + (p * n).ceil() - 1.0;
        Some(k.clamp(a as f64, b as f64))
    }

    fn mean(&self, params: &[f64]) -> Option<f64> {
        Some(0.5 * (params[0] + params[1]))
    }

    fn variance(&self, params: &[f64]) -> Option<f64> {
        let n = params[1] - params[0] + 1.0;
        Some((n * n - 1.0) / 12.0)
    }

    fn support(&self, params: &[f64]) -> (f64, f64) {
        (params[0], params[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn bernoulli_validation_and_closed_forms() {
        assert!(Bernoulli.check_params(&[0.3]).is_ok());
        assert!(Bernoulli.check_params(&[1.5]).is_err());
        assert!(Bernoulli.check_params(&[-0.1]).is_err());
        assert_eq!(Bernoulli.pdf(&[0.3], 1.0), Some(0.3));
        assert_eq!(Bernoulli.pdf(&[0.3], 0.0), Some(0.7));
        assert_eq!(Bernoulli.pdf(&[0.3], 0.5), Some(0.0));
        assert_eq!(Bernoulli.cdf(&[0.3], 0.5), Some(0.7));
        assert_eq!(Bernoulli.mean(&[0.3]), Some(0.3));
        assert!((Bernoulli.variance(&[0.3]).unwrap() - 0.21).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = rng_from_seed(21);
        let n = 20_000;
        let s: f64 = (0..n).map(|_| Bernoulli.generate(&[0.3], &mut rng)).sum();
        assert!((s / n as f64 - 0.3).abs() < 0.02);
    }

    #[test]
    fn discrete_uniform_validation() {
        assert!(DiscreteUniform.check_params(&[1.0, 6.0]).is_ok());
        assert!(DiscreteUniform.check_params(&[1.5, 6.0]).is_err());
        assert!(DiscreteUniform.check_params(&[6.0, 1.0]).is_err());
    }

    #[test]
    fn discrete_uniform_die() {
        let p = [1.0, 6.0];
        assert_eq!(DiscreteUniform.pdf(&p, 3.0), Some(1.0 / 6.0));
        assert_eq!(DiscreteUniform.pdf(&p, 3.5), Some(0.0));
        assert_eq!(DiscreteUniform.pdf(&p, 7.0), Some(0.0));
        assert!((DiscreteUniform.cdf(&p, 3.0).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(DiscreteUniform.cdf(&p, 0.0), Some(0.0));
        assert_eq!(DiscreteUniform.cdf(&p, 9.0), Some(1.0));
        assert_eq!(DiscreteUniform.mean(&p), Some(3.5));
        // quantile: smallest k with CDF(k) >= p
        assert_eq!(DiscreteUniform.inverse_cdf(&p, 0.5), Some(3.0));
        assert_eq!(DiscreteUniform.inverse_cdf(&p, 0.51), Some(4.0));
    }

    #[test]
    fn discrete_uniform_samples_in_range() {
        let mut rng = rng_from_seed(22);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let x = DiscreteUniform.generate(&[1.0, 6.0], &mut rng);
            assert!(x.fract() == 0.0 && (1.0..=6.0).contains(&x));
            seen[x as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s), "all faces should appear");
    }
}
