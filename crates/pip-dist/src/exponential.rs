//! The Exponential distribution class: `Exponential(lambda)`.

use std::sync::Arc;

use pip_core::{PipError, Result};

use crate::distribution::{DistributionClass, PreparedInverseCdf};
use crate::rng::{open01, PipRng};

/// `Exponential(λ)` with rate λ > 0 (mean 1/λ), supported on `[0, ∞)`.
///
/// Generation uses the inverse-CDF transform `x = −ln(u)/λ` so that, like
/// [`crate::normal::Normal`], samples are monotone in the uniform input.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exponential;

impl DistributionClass for Exponential {
    fn name(&self) -> &'static str {
        "Exponential"
    }

    fn arity(&self) -> usize {
        1
    }

    fn validate(&self, params: &[f64]) -> Result<()> {
        if !(params[0] > 0.0) || !params[0].is_finite() {
            return Err(PipError::InvalidParameter(format!(
                "Exponential: lambda must be finite and > 0, got {}",
                params[0]
            )));
        }
        Ok(())
    }

    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64 {
        -open01(rng).ln() / params[0]
    }

    fn pdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let l = params[0];
        Some(if x < 0.0 { 0.0 } else { l * (-l * x).exp() })
    }

    fn cdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let l = params[0];
        Some(if x < 0.0 { 0.0 } else { 1.0 - (-l * x).exp() })
    }

    fn inverse_cdf(&self, params: &[f64], p: f64) -> Option<f64> {
        Some(ExpInv { lambda: params[0] }.inverse_cdf(p))
    }

    fn prepare_inverse_cdf(&self, params: &[f64]) -> Option<Arc<dyn PreparedInverseCdf>> {
        Some(Arc::new(ExpInv { lambda: params[0] }))
    }

    fn mean(&self, params: &[f64]) -> Option<f64> {
        Some(1.0 / params[0])
    }

    fn variance(&self, params: &[f64]) -> Option<f64> {
        Some(1.0 / (params[0] * params[0]))
    }

    fn support(&self, _params: &[f64]) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }
}

/// The inverse-CDF transform with the rate bound — shared by the plain
/// and prepared paths so both are one expression.
#[derive(Debug, Clone, Copy)]
struct ExpInv {
    lambda: f64,
}

impl PreparedInverseCdf for ExpInv {
    #[inline]
    fn inverse_cdf(&self, p: f64) -> f64 {
        if p >= 1.0 {
            return f64::INFINITY;
        }
        -(1.0 - p.max(0.0)).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    const P: [f64; 1] = [2.0];

    #[test]
    fn validation() {
        assert!(Exponential.check_params(&P).is_ok());
        assert!(Exponential.check_params(&[0.0]).is_err());
        assert!(Exponential.check_params(&[-3.0]).is_err());
        assert!(Exponential.check_params(&[f64::NAN]).is_err());
    }

    #[test]
    fn closed_forms() {
        assert_eq!(Exponential.mean(&P), Some(0.5));
        assert_eq!(Exponential.variance(&P), Some(0.25));
        assert_eq!(Exponential.cdf(&P, -1.0), Some(0.0));
        assert!((Exponential.cdf(&P, 0.5).unwrap() - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert_eq!(Exponential.pdf(&P, -0.1), Some(0.0));
        assert!((Exponential.pdf(&P, 0.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trip() {
        for &p in &[0.0, 0.1, 0.5, 0.9, 0.999] {
            let x = Exponential.inverse_cdf(&P, p).unwrap();
            assert!((Exponential.cdf(&P, x).unwrap() - p).abs() < 1e-12);
        }
        assert_eq!(Exponential.inverse_cdf(&P, 1.0), Some(f64::INFINITY));
    }

    #[test]
    fn samples_nonnegative_and_mean_converges() {
        let mut rng = rng_from_seed(3);
        let n = 20_000;
        let mut s = 0.0;
        for _ in 0..n {
            let x = Exponential.generate(&P, &mut rng);
            assert!(x >= 0.0);
            s += x;
        }
        assert!((s / n as f64 - 0.5).abs() < 0.02);
    }
}
