//! # pip-dist
//!
//! Distribution classes for PIP (paper Section V-B): every class provides
//! `Generate`; `PDF`, `CDF`, `CDF⁻¹`, `mean` and `variance` are optional
//! capabilities the sampling layer exploits when present. All statistical
//! special functions are implemented from scratch in [`special`].
//!
//! ```
//! use pip_dist::prelude::*;
//!
//! let reg = DistributionRegistry::with_builtins();
//! let normal = reg.resolve("Normal", &[5.0, 2.0]).unwrap();
//! let mut rng = rng_from_seed(42);
//! let x = normal.generate(&[5.0, 2.0], &mut rng);
//! assert!(x.is_finite());
//! assert_eq!(normal.cdf(&[5.0, 2.0], 5.0), Some(0.5));
//! ```

pub mod beta;
pub mod categorical;
pub mod discrete;
pub mod distribution;
pub mod exponential;
pub mod gamma;
pub mod normal;
pub mod poisson;
pub mod registry;
pub mod rng;
pub mod special;
pub mod uniform;

pub use distribution::{
    capabilities, Capabilities, DistRef, DistributionClass, PreparedGen, PreparedInverseCdf,
};
pub use registry::DistributionRegistry;
pub use rng::{mix64, rng_for, rng_from_seed, var_seed, PipRng};

/// Glob-import surface for downstream crates and examples.
pub mod prelude {
    pub use crate::beta::Beta;
    pub use crate::categorical::Categorical;
    pub use crate::discrete::{Bernoulli, DiscreteUniform};
    pub use crate::distribution::{capabilities, Capabilities, DistRef, DistributionClass};
    pub use crate::exponential::Exponential;
    pub use crate::gamma::Gamma;
    pub use crate::normal::Normal;
    pub use crate::poisson::Poisson;
    pub use crate::registry::{builtin, DistributionRegistry};
    pub use crate::rng::{rng_for, rng_from_seed, PipRng};
    pub use crate::uniform::Uniform;
}
