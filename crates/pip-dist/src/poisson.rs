//! The Poisson distribution class: `Poisson(lambda)`.
//!
//! Q1/Q4 of the paper's evaluation parametrize a Poisson with each
//! customer's historical purchase-increase rate, so this class gets both a
//! fast sampler and exact CDF support (needed for the closed-form "correct
//! values" in the Figure 7 RMS-error experiments).

use std::sync::Arc;

use pip_core::{PipError, Result};

use crate::distribution::{DistributionClass, PreparedGen};
use crate::rng::{open01, PipRng};
use crate::special;

/// `Poisson(λ)`, λ > 0, supported on {0, 1, 2, ...}.
///
/// Sampling: Knuth's product-of-uniforms for λ ≤ 30 and the PTRS
/// transformed-rejection sampler (Hörmann 1993) for larger rates.
/// `CDF(k) = Q(⌊k⌋+1, λ)` via the regularized upper incomplete gamma.
#[derive(Debug, Clone, Copy, Default)]
pub struct Poisson;

impl Poisson {
    fn knuth(lambda: f64, rng: &mut PipRng) -> f64 {
        Self::knuth_with((-lambda).exp(), rng)
    }

    /// Knuth's loop with `e^-λ` supplied — the shared core of the plain
    /// and prepared samplers (identical uniforms, identical products).
    #[inline]
    fn knuth_with(l: f64, rng: &mut PipRng) -> f64 {
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= open01(rng);
            if p <= l {
                return k as f64;
            }
            k += 1;
        }
    }

    /// PTRS: transformed rejection with squeeze, valid for λ ≥ 10.
    fn ptrs(lambda: f64, rng: &mut PipRng) -> f64 {
        Self::ptrs_with(&PtrsConsts::new(lambda), rng)
    }

    /// The PTRS loop with its λ-derived constants supplied.
    #[inline]
    fn ptrs_with(c: &PtrsConsts, rng: &mut PipRng) -> f64 {
        loop {
            let u = open01(rng) - 0.5;
            let v = open01(rng);
            let us = 0.5 - u.abs();
            let k = ((2.0 * c.a / us + c.b) * u + c.lambda + 0.43).floor();
            if us >= 0.07 && v <= c.v_r {
                return k;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            if v.ln() + c.inv_alpha.ln() - (c.a / (us * us) + c.b).ln()
                <= k * c.loglam - c.lambda - special::ln_gamma(k + 1.0)
            {
                return k;
            }
        }
    }
}

/// λ-derived PTRS constants (Hörmann 1993).
#[derive(Debug, Clone, Copy)]
struct PtrsConsts {
    lambda: f64,
    loglam: f64,
    b: f64,
    a: f64,
    inv_alpha: f64,
    v_r: f64,
}

impl PtrsConsts {
    fn new(lambda: f64) -> Self {
        let slam = lambda.sqrt();
        let b = 0.931 + 2.53 * slam;
        PtrsConsts {
            lambda,
            loglam: lambda.ln(),
            b,
            a: -0.059 + 0.02483 * b,
            inv_alpha: 1.1239 + 1.1328 / (b - 3.4),
            v_r: 0.9277 - 3.6224 / (b - 2.0),
        }
    }
}

/// Prepared Poisson sampler: the λ-derived constants of whichever
/// algorithm `generate` would pick, hoisted out of the draw loop.
#[derive(Debug)]
enum PreparedPoisson {
    /// `e^-λ` for Knuth's product-of-uniforms (λ ≤ 30).
    Knuth(f64),
    Ptrs(PtrsConsts),
}

impl PreparedGen for PreparedPoisson {
    fn generate(&self, rng: &mut PipRng) -> f64 {
        match self {
            PreparedPoisson::Knuth(l) => Poisson::knuth_with(*l, rng),
            PreparedPoisson::Ptrs(c) => Poisson::ptrs_with(c, rng),
        }
    }
}

impl DistributionClass for Poisson {
    fn name(&self) -> &'static str {
        "Poisson"
    }

    fn is_discrete(&self) -> bool {
        true
    }

    fn arity(&self) -> usize {
        1
    }

    fn validate(&self, params: &[f64]) -> Result<()> {
        if !(params[0] > 0.0) || !params[0].is_finite() {
            return Err(PipError::InvalidParameter(format!(
                "Poisson: lambda must be finite and > 0, got {}",
                params[0]
            )));
        }
        Ok(())
    }

    fn generate(&self, params: &[f64], rng: &mut PipRng) -> f64 {
        let lambda = params[0];
        if lambda <= 30.0 {
            Self::knuth(lambda, rng)
        } else {
            Self::ptrs(lambda, rng)
        }
    }

    fn prepare_generate(&self, params: &[f64]) -> Option<Arc<dyn PreparedGen>> {
        let lambda = params[0];
        Some(Arc::new(if lambda <= 30.0 {
            PreparedPoisson::Knuth((-lambda).exp())
        } else {
            PreparedPoisson::Ptrs(PtrsConsts::new(lambda))
        }))
    }

    fn pdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let lambda = params[0];
        if x < 0.0 || x.fract() != 0.0 {
            return Some(0.0);
        }
        Some((x * lambda.ln() - lambda - special::ln_gamma(x + 1.0)).exp())
    }

    fn cdf(&self, params: &[f64], x: f64) -> Option<f64> {
        let lambda = params[0];
        if x < 0.0 {
            return Some(0.0);
        }
        // P[X <= k] = Q(k+1, lambda)
        Some(special::gamma_q(x.floor() + 1.0, lambda))
    }

    fn inverse_cdf(&self, params: &[f64], p: f64) -> Option<f64> {
        // Discrete quantile: smallest k with CDF(k) >= p. Sequential scan
        // from a normal-approximation start point.
        let lambda = params[0];
        if p <= 0.0 {
            return Some(0.0);
        }
        if p >= 1.0 {
            return Some(f64::INFINITY);
        }
        let guess = (lambda + lambda.sqrt() * special::inverse_normal_cdf(p))
            .floor()
            .max(0.0);
        let mut k = guess;
        // Walk down while the previous value still satisfies CDF >= p.
        while k > 0.0 && self.cdf(params, k - 1.0).unwrap() >= p {
            k -= 1.0;
        }
        // Walk up while we do not yet satisfy it.
        while self.cdf(params, k).unwrap() < p {
            k += 1.0;
        }
        Some(k)
    }

    fn mean(&self, params: &[f64]) -> Option<f64> {
        Some(params[0])
    }

    fn variance(&self, params: &[f64]) -> Option<f64> {
        Some(params[0])
    }

    fn support(&self, _params: &[f64]) -> (f64, f64) {
        (0.0, f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn validation() {
        assert!(Poisson.check_params(&[3.0]).is_ok());
        assert!(Poisson.check_params(&[0.0]).is_err());
        assert!(Poisson.check_params(&[-2.0]).is_err());
        assert!(Poisson.is_discrete());
    }

    #[test]
    fn pmf_reference_values() {
        // P[X=0 | λ=2] = e^-2, P[X=3 | λ=2] = 2^3 e^-2 / 6
        let p0 = Poisson.pdf(&[2.0], 0.0).unwrap();
        assert!((p0 - (-2.0f64).exp()).abs() < 1e-12);
        let p3 = Poisson.pdf(&[2.0], 3.0).unwrap();
        assert!((p3 - 8.0 * (-2.0f64).exp() / 6.0).abs() < 1e-12);
        assert_eq!(Poisson.pdf(&[2.0], 2.5), Some(0.0));
        assert_eq!(Poisson.pdf(&[2.0], -1.0), Some(0.0));
    }

    #[test]
    fn cdf_sums_pmf() {
        let lambda = [4.0];
        let mut acc = 0.0;
        for k in 0..15 {
            acc += Poisson.pdf(&lambda, k as f64).unwrap();
            let cdf = Poisson.cdf(&lambda, k as f64).unwrap();
            assert!((acc - cdf).abs() < 1e-10, "k={k}: {acc} vs {cdf}");
        }
    }

    #[test]
    fn quantile_is_discrete_inverse() {
        let lambda = [7.5];
        for &p in &[0.01, 0.2, 0.5, 0.8, 0.99] {
            let k = Poisson.inverse_cdf(&lambda, p).unwrap();
            assert!(Poisson.cdf(&lambda, k).unwrap() >= p);
            if k > 0.0 {
                assert!(Poisson.cdf(&lambda, k - 1.0).unwrap() < p);
            }
        }
    }

    #[test]
    fn prepared_sampler_is_bit_identical() {
        // Both regimes: Knuth (λ ≤ 30) and PTRS.
        for lambda in [0.7, 6.0, 29.9, 31.0, 250.0] {
            let params = [lambda];
            let prepared = Poisson.prepare_generate(&params).unwrap();
            let mut a = rng_from_seed(42);
            let mut b = rng_from_seed(42);
            for _ in 0..2000 {
                let x = Poisson.generate(&params, &mut a);
                let y = prepared.generate(&mut b);
                assert_eq!(x.to_bits(), y.to_bits(), "λ={lambda}");
            }
        }
    }

    #[test]
    fn knuth_sampler_mean() {
        let mut rng = rng_from_seed(11);
        let n = 20_000;
        let s: f64 = (0..n).map(|_| Poisson.generate(&[3.0], &mut rng)).sum();
        assert!((s / n as f64 - 3.0).abs() < 0.05);
    }

    #[test]
    fn ptrs_sampler_moments() {
        let mut rng = rng_from_seed(12);
        let n = 20_000;
        let lambda = 100.0;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = Poisson.generate(&[lambda], &mut rng);
            assert!(x >= 0.0 && x.fract() == 0.0);
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!((mean - lambda).abs() < 0.5, "mean {mean}");
        assert!((var - lambda).abs() < 5.0, "var {var}");
    }
}
