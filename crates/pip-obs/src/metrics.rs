//! Atomic metric primitives and the family registry.
//!
//! Counters and gauges are single relaxed atomics and are **never** gated by
//! the global enable switch: several of them double as control state (the
//! scheduler's admission accounting reads the same atomics STATS renders),
//! and a relaxed `fetch_add` costs the same as the load-and-branch that
//! would skip it. Histograms do a few more atomic ops plus bit math, so
//! [`Histogram::observe_nanos`] checks [`crate::enabled`] first.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value (queue depths, lags, sizes).
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.v.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.v.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` (for `1 <= i < HIST_BUCKETS-1`)
/// holds observations in `[2^(i-1), 2^i)` nanoseconds; bucket 0 holds exact
/// zeros; the last bucket is the overflow bucket for everything at or above
/// `2^(HIST_BUCKETS-2)` ns (~275 s with 40 buckets).
pub const HIST_BUCKETS: usize = 40;

/// Fixed-bucket log₂-scale latency histogram over nanoseconds.
///
/// Recording is allocation-free: one bit-length computation plus three
/// relaxed atomic adds. Quantiles interpolate linearly within the landing
/// bucket; the overflow bucket clamps interpolation to one further octave.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// Bucket index an observation of `v` nanoseconds lands in.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    let bits = (u64::BITS - v.leading_zeros()) as usize;
    bits.min(HIST_BUCKETS - 1)
}

fn bucket_lower_nanos(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

fn bucket_upper_nanos(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn observe_nanos(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn observe_secs(&self, secs: f64) {
        self.observe_nanos((secs.max(0.0) * 1e9) as u64);
    }

    #[inline]
    pub fn observe_since(&self, start: Instant) {
        self.observe_nanos(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Per-bucket counts (test and rendering support).
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Quantile in seconds (`q` in `[0, 1]`). Returns 0.0 when empty.
    /// Interpolates linearly between the landing bucket's bounds; the
    /// overflow bucket interpolates across one octave past its lower bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 && cum + c >= target {
                let lower = bucket_lower_nanos(i) as f64;
                let upper = bucket_upper_nanos(i) as f64;
                let into = (target - cum) as f64 / c as f64;
                return (lower + into * (upper - lower)) * 1e-9;
            }
            cum += c;
        }
        bucket_upper_nanos(HIST_BUCKETS - 1) as f64 * 1e-9
    }
}

enum Slot {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Arc<Histogram>),
}

impl Slot {
    fn type_str(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) | Slot::GaugeFn(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    slot: Slot,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("families", &self.family_names())
            .finish()
    }
}

/// Named metric families with Prometheus text-format rendering.
///
/// Registration is idempotent on `(name, labels)`: re-registering returns
/// the existing handle, so constructors can run more than once per
/// registry. One registry typically belongs to one `Database`; process-wide
/// singletons (the sampling block cache) live in [`Registry::global`].
#[derive(Default)]
pub struct Registry {
    series: Mutex<Vec<Series>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry for metrics that are inherently
    /// process-wide (sampling caches, kernel compiles).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut series = self.series.lock().unwrap();
        if let Some(s) = find(&series, name, labels) {
            if let Slot::Counter(c) = &s.slot {
                return c.clone();
            }
        }
        let c = Arc::new(Counter::new());
        series.push(make(name, help, labels, Slot::Counter(c.clone())));
        c
    }

    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut series = self.series.lock().unwrap();
        if let Some(s) = find(&series, name, labels) {
            if let Slot::Gauge(g) = &s.slot {
                return g.clone();
            }
        }
        let g = Arc::new(Gauge::new());
        series.push(make(name, help, labels, Slot::Gauge(g.clone())));
        g
    }

    /// Gauge whose value is computed at render time. The closure must not
    /// capture anything that owns this registry (that would leak a cycle);
    /// capture leaf atomics or `Weak` handles instead.
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> f64 + Send + Sync + 'static) {
        let mut series = self.series.lock().unwrap();
        if find(&series, name, &[]).is_some() {
            return;
        }
        series.push(make(name, help, &[], Slot::GaugeFn(Box::new(f))));
    }

    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let mut series = self.series.lock().unwrap();
        if let Some(s) = find(&series, name, labels) {
            if let Slot::Histogram(h) = &s.slot {
                return h.clone();
            }
        }
        let h = Arc::new(Histogram::new());
        series.push(make(name, help, labels, Slot::Histogram(h.clone())));
        h
    }

    /// Family names in first-registration order.
    pub fn family_names(&self) -> Vec<String> {
        let series = self.series.lock().unwrap();
        let mut out: Vec<String> = Vec::new();
        for s in series.iter() {
            if out.last().map(String::as_str) != Some(s.name.as_str())
                && !out.iter().any(|n| n == &s.name)
            {
                out.push(s.name.clone());
            }
        }
        out
    }

    /// Render every family in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Append this registry's families to `out` (used to merge a database
    /// registry with the global one into a single scrape body).
    pub fn render_into(&self, out: &mut String) {
        use std::fmt::Write;
        let series = self.series.lock().unwrap();
        let mut done: Vec<&str> = Vec::new();
        for s in series.iter() {
            if done.iter().any(|n| *n == s.name) {
                continue;
            }
            done.push(&s.name);
            let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
            let _ = writeln!(out, "# TYPE {} {}", s.name, s.slot.type_str());
            for t in series.iter().filter(|t| t.name == s.name) {
                render_series(out, t);
            }
        }
    }
}

fn find<'a>(series: &'a [Series], name: &str, labels: &[(&str, &str)]) -> Option<&'a Series> {
    series.iter().find(|s| {
        s.name == name
            && s.labels.len() == labels.len()
            && s.labels
                .iter()
                .zip(labels.iter())
                .all(|((k1, v1), (k2, v2))| k1 == k2 && v1 == v2)
    })
}

fn make(name: &str, help: &str, labels: &[(&str, &str)], slot: Slot) -> Series {
    Series {
        name: name.to_string(),
        help: help.to_string(),
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        slot,
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{}", v)
    }
}

fn render_series(out: &mut String, s: &Series) {
    use std::fmt::Write;
    match &s.slot {
        Slot::Counter(c) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                s.name,
                label_block(&s.labels, None),
                c.get()
            );
        }
        Slot::Gauge(g) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                s.name,
                label_block(&s.labels, None),
                g.get()
            );
        }
        Slot::GaugeFn(f) => {
            let _ = writeln!(
                out,
                "{}{} {}",
                s.name,
                label_block(&s.labels, None),
                fmt_f64(f())
            );
        }
        Slot::Histogram(h) => {
            let counts = h.bucket_counts();
            let mut cum = 0u64;
            for (i, c) in counts.iter().enumerate() {
                cum += c;
                if *c == 0 && i != 0 {
                    continue;
                }
                let le = bucket_upper_nanos(i) as f64 * 1e-9;
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    s.name,
                    label_block(&s.labels, Some(("le", &format!("{:e}", le)))),
                    cum
                );
            }
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                s.name,
                label_block(&s.labels, Some(("le", "+Inf"))),
                h.count()
            );
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                s.name,
                label_block(&s.labels, None),
                h.sum_secs()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                s.name,
                label_block(&s.labels, None),
                h.count()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable switch is process-global and tests run concurrently, so
    // every test that records observations serializes on this lock.
    fn enable_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.sub(2);
        g.add(1);
        assert_eq!(g.get(), 6);
    }

    #[test]
    fn bucket_boundaries_are_log2() {
        // 0 lands in the zero bucket; 1 in bucket 1; each power of two
        // starts a new bucket; the top of u64 clamps to the overflow bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_interpolate_within_bucket() {
        let _g = enable_guard();
        let h = Histogram::new();
        // 100 observations spread uniformly in [1024, 2048) — one bucket.
        for i in 0..100u64 {
            h.observe_nanos(1024 + i * 10);
        }
        let p50 = h.quantile(0.5);
        // Bucket is [1024, 2048) ns; the true p50 is ~1.5e-6 s and linear
        // interpolation within the bucket must land mid-bucket.
        assert!(p50 > 1.4e-6 && p50 < 1.6e-6, "p50={}", p50);
        let p999 = h.quantile(0.999);
        assert!(p999 <= 2048.0 * 1e-9 + 1e-12, "p999={}", p999);
        assert!(h.quantile(1.0) >= p999);
    }

    #[test]
    fn histogram_zero_samples_and_zero_values() {
        let _g = enable_guard();
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
        h.observe_nanos(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn histogram_overflow_clamps() {
        let _g = enable_guard();
        let h = Histogram::new();
        h.observe_nanos(u64::MAX);
        h.observe_nanos(u64::MAX);
        let q = h.quantile(0.5);
        let lower = (1u64 << (HIST_BUCKETS - 2)) as f64 * 1e-9;
        let upper = (1u64 << (HIST_BUCKETS - 1)) as f64 * 1e-9;
        assert!(q >= lower && q <= upper, "q={}", q);
        assert_eq!(h.bucket_counts()[HIST_BUCKETS - 1], 2);
    }

    #[test]
    fn disabled_histograms_drop_observations() {
        let _g = enable_guard();
        let h = Histogram::new();
        crate::set_enabled(false);
        h.observe_nanos(100);
        crate::set_enabled(true);
        assert_eq!(h.count(), 0);
        h.observe_nanos(100);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let _g = enable_guard();
        let r = Registry::new();
        let c = r.counter("pip_test_events_total", "Test events.");
        c.add(3);
        let g = r.gauge_with("pip_test_depth", "Depth.", &[("lane", "a")]);
        g.set(-2);
        r.gauge_fn("pip_test_uptime", "Uptime.", || 1.5);
        let h = r.histogram("pip_test_latency_seconds", "Latency.");
        h.observe_nanos(1500);
        let text = r.render();
        assert!(text.contains("# TYPE pip_test_events_total counter"));
        assert!(text.contains("pip_test_events_total 3"));
        assert!(text.contains("pip_test_depth{lane=\"a\"} -2"));
        assert!(text.contains("pip_test_uptime 1.5"));
        assert!(text.contains("# TYPE pip_test_latency_seconds histogram"));
        assert!(text.contains("pip_test_latency_seconds_count 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
    }

    #[test]
    fn registry_registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("pip_test_total", "x");
        let b = r.counter("pip_test_total", "x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.family_names(), vec!["pip_test_total".to_string()]);
    }
}
