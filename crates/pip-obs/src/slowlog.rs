//! Ring buffer of slow-query spans.
//!
//! `SET SLOWLOG <ms>` arms the threshold (0 disarms); every finished query
//! span at or over it is pushed into a bounded ring, newest first on read.
//! The ring is lock-protected but only queries that actually cross the
//! threshold touch it, so the fast path stays a single relaxed load.

use crate::span::QuerySpan;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity: enough to hold a burst of slow queries without
/// unbounded memory.
pub const DEFAULT_CAPACITY: usize = 128;

#[derive(Debug)]
pub struct SlowLog {
    threshold_nanos: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<QuerySpan>>,
}

impl Default for SlowLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl SlowLog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            threshold_nanos: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Arm the slowlog at `ms` milliseconds; 0 disarms and clears the ring.
    pub fn set_threshold_millis(&self, ms: u64) {
        self.threshold_nanos
            .store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
        if ms == 0 {
            self.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    pub fn threshold_millis(&self) -> u64 {
        self.threshold_nanos.load(Ordering::Relaxed) / 1_000_000
    }

    /// Record `span` if the slowlog is armed and the span is slow enough.
    /// Returns true if it was captured.
    pub fn observe(&self, span: &QuerySpan) -> bool {
        let t = self.threshold_nanos.load(Ordering::Relaxed);
        if t == 0 || span.total_nanos < t {
            return false;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(span.clone());
        true
    }

    /// Up to `n` most recent captured spans, newest first.
    pub fn recent(&self, n: usize) -> Vec<QuerySpan> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().rev().take(n).cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, total_ms: u64) -> QuerySpan {
        QuerySpan {
            query_id: id,
            total_nanos: total_ms * 1_000_000,
            ..QuerySpan::default()
        }
    }

    #[test]
    fn disarmed_slowlog_captures_nothing() {
        let log = SlowLog::new();
        assert!(!log.observe(&span(1, 1_000)));
        assert!(log.is_empty());
    }

    #[test]
    fn threshold_filters_and_ring_caps() {
        let log = SlowLog::with_capacity(2);
        log.set_threshold_millis(10);
        assert!(!log.observe(&span(1, 9)));
        assert!(log.observe(&span(2, 10)));
        assert!(log.observe(&span(3, 50)));
        assert!(log.observe(&span(4, 11)));
        let recent = log.recent(10);
        assert_eq!(
            recent.iter().map(|s| s.query_id).collect::<Vec<_>>(),
            vec![4, 3]
        );
        assert_eq!(log.recent(1).len(), 1);
    }

    #[test]
    fn disarming_clears_the_ring() {
        let log = SlowLog::new();
        log.set_threshold_millis(1);
        assert!(log.observe(&span(1, 5)));
        log.set_threshold_millis(0);
        assert!(log.is_empty());
        assert_eq!(log.threshold_millis(), 0);
    }
}
