//! Tiny leveled stderr logger.
//!
//! `PIP_LOG=error|warn|info|debug` picks the level (default `info`). Every
//! line is prefixed with a UTC timestamp and the level so chaos-suite
//! failures are diagnosable from captured CI stderr. Use through the crate
//! macros:
//!
//! ```
//! pip_obs::info!("listening on {}", "127.0.0.1:7432");
//! pip_obs::warn!("follower {} dropped", 3);
//! ```

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn from_env(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn current_level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != LEVEL_UNSET {
        return match raw {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            _ => Level::Info,
        };
    }
    let level = std::env::var("PIP_LOG")
        .ok()
        .and_then(|s| Level::from_env(&s))
        .unwrap_or(Level::Info);
    LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

/// Override the log level (tests, CLI flags). Takes precedence over
/// `PIP_LOG` from then on.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    level <= current_level()
}

/// Render a UNIX timestamp (seconds + millis) as `YYYY-MM-DDTHH:MM:SS.mmmZ`.
fn format_utc(secs: u64, millis: u32) -> String {
    // Civil-from-days (Howard Hinnant's algorithm) — no chrono available.
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}.{:03}Z",
        y,
        m,
        d,
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60,
        millis
    )
}

/// Emit one log line. Prefer the [`crate::error!`] / [`crate::warn!`] /
/// [`crate::info!`] / [`crate::debug!`] macros.
pub fn write(level: Level, args: fmt::Arguments<'_>) {
    if !level_enabled(level) {
        return;
    }
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default();
    let ts = format_utc(now.as_secs(), now.subsec_millis());
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "[{} {:5}] {}", ts, level.as_str(), args);
}

#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log::write($crate::log::Level::Error, format_args!($($arg)*)) };
}

#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log::write($crate::log::Level::Warn, format_args!($($arg)*)) };
}

#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log::write($crate::log::Level::Info, format_args!($($arg)*)) };
}

#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log::write($crate::log::Level::Debug, format_args!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_gates_messages() {
        set_level(Level::Warn);
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(level_enabled(Level::Debug));
        set_level(Level::Info);
    }

    #[test]
    fn utc_formatting_matches_known_instants() {
        assert_eq!(format_utc(0, 0), "1970-01-01T00:00:00.000Z");
        // 2026-08-09T00:00:00Z
        assert_eq!(format_utc(1_786_233_600, 250), "2026-08-09T00:00:00.250Z");
        assert_eq!(format_utc(951_827_696, 7), "2000-02-29T12:34:56.007Z");
    }

    #[test]
    fn env_parsing_accepts_aliases() {
        assert_eq!(Level::from_env("WARNING"), Some(Level::Warn));
        assert_eq!(Level::from_env(" debug "), Some(Level::Debug));
        assert_eq!(Level::from_env("bogus"), None);
    }
}
