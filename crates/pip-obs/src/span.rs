//! Per-query span recording with an injectable clock.
//!
//! A [`QuerySpan`] captures everything an operator needs to explain one
//! query: phase timings (parse / optimize / execute / sample), row count,
//! cache and dedup hits, admission wait, and park duration. Spans are
//! assembled by the session layer through a [`SpanRecorder`], which takes
//! its notion of time from a [`Clock`] so tests can drive a [`ManualClock`]
//! and assert exact durations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Time source for span recording. `now_nanos` must be monotone.
pub trait Clock: Send + Sync {
    fn now_nanos(&self) -> u64;
}

/// Wall-clock-backed monotone time, anchored at the process start pinned by
/// [`crate::init_start_time`].
#[derive(Debug, Default, Clone, Copy)]
pub struct MonotonicClock;

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        (crate::uptime_secs() * 1e9) as u64
    }
}

/// Hand-advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn advance_nanos(&self, n: u64) {
        self.nanos.fetch_add(n, Ordering::Relaxed);
    }

    pub fn advance_millis(&self, ms: u64) {
        self.advance_nanos(ms * 1_000_000);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

/// One query's execution record.
#[derive(Debug, Clone, Default)]
pub struct QuerySpan {
    pub query_id: u64,
    pub session: u64,
    pub sql: String,
    pub parse_nanos: u64,
    pub optimize_nanos: u64,
    pub execute_nanos: u64,
    pub sample_nanos: u64,
    pub total_nanos: u64,
    pub rows: u64,
    pub cache_hit: bool,
    pub dedup_follower: bool,
    pub admission_wait_nanos: u64,
    pub park_nanos: u64,
}

fn ms(n: u64) -> f64 {
    n as f64 / 1e6
}

impl QuerySpan {
    /// One-line slowlog rendering with the full phase breakdown.
    pub fn render(&self) -> String {
        format!(
            "#{} {:.3}ms session={} parse={:.3}ms optimize={:.3}ms execute={:.3}ms \
             sample={:.3}ms rows={} cache_hit={} dedup_follower={} admission_wait={:.3}ms \
             park={:.3}ms sql={}",
            self.query_id,
            ms(self.total_nanos),
            self.session,
            ms(self.parse_nanos),
            ms(self.optimize_nanos),
            ms(self.execute_nanos),
            ms(self.sample_nanos),
            self.rows,
            self.cache_hit,
            self.dedup_follower,
            ms(self.admission_wait_nanos),
            ms(self.park_nanos),
            self.sql.replace(['\n', '\r'], " "),
        )
    }
}

/// Builds a [`QuerySpan`] as a query moves through its phases.
pub struct SpanRecorder {
    clock: Arc<dyn Clock>,
    started: u64,
    last: u64,
    pub span: QuerySpan,
}

impl SpanRecorder {
    pub fn start(clock: Arc<dyn Clock>, session: u64, sql: &str) -> Self {
        let now = clock.now_nanos();
        Self {
            clock,
            started: now,
            last: now,
            span: QuerySpan {
                query_id: crate::next_query_id(),
                session,
                sql: sql.to_string(),
                ..QuerySpan::default()
            },
        }
    }

    /// Nanoseconds since the previous lap (or since start), advancing the
    /// lap marker. Callers assign the result to the phase that just ended.
    pub fn lap(&mut self) -> u64 {
        let now = self.clock.now_nanos();
        let d = now.saturating_sub(self.last);
        self.last = now;
        d
    }

    /// Finalize: stamps `total_nanos` and returns the completed span.
    pub fn finish(mut self) -> QuerySpan {
        self.span.total_nanos = self.clock.now_nanos().saturating_sub(self.started);
        self.span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_drives_deterministic_spans() {
        let clock = Arc::new(ManualClock::new());
        let mut rec = SpanRecorder::start(clock.clone(), 7, "QUERY SELECT 1");
        clock.advance_millis(2);
        rec.span.parse_nanos = rec.lap();
        clock.advance_millis(3);
        rec.span.optimize_nanos = rec.lap();
        clock.advance_millis(10);
        rec.span.execute_nanos = rec.lap();
        rec.span.rows = 4;
        let span = rec.finish();
        assert_eq!(span.parse_nanos, 2_000_000);
        assert_eq!(span.optimize_nanos, 3_000_000);
        assert_eq!(span.execute_nanos, 10_000_000);
        assert_eq!(span.total_nanos, 15_000_000);
        assert_eq!(span.session, 7);
        let line = span.render();
        assert!(line.contains("parse=2.000ms"), "{line}");
        assert!(line.contains("execute=10.000ms"), "{line}");
        assert!(line.contains("rows=4"), "{line}");
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let c = MonotonicClock;
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }
}
