//! Process-wide observability primitives for the PIP stack.
//!
//! Everything here is dependency-free and allocation-free on the hot path:
//! counters, gauges, and log₂-bucket latency histograms are plain atomics,
//! and recording into them never takes a lock. The [`Registry`] groups
//! metrics into named families and renders Prometheus text exposition
//! format for the `METRICS` verb and the `--metrics-addr` scrape endpoint.
//!
//! Per-query tracing lives in [`span`]: a [`span::QuerySpan`] captures
//! phase timings (parse / optimize / execute / sample), row counts, cache
//! and dedup hits, and admission wait, driven by an injectable [`span::Clock`]
//! so tests stay deterministic. Spans over a configurable threshold land in
//! the [`slowlog::SlowLog`] ring buffer, readable via the `SLOWLOG` verb.
//!
//! The global [`set_enabled`] switch turns every recording site into a
//! single relaxed atomic load + branch, which is what the `obs_overhead`
//! bench measures against the <3% hot-path budget.

pub mod log;
pub mod metrics;
pub mod slowlog;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use slowlog::SlowLog;
pub use span::{Clock, ManualClock, MonotonicClock, QuerySpan, SpanRecorder};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Global observability switch. Recording sites check this with a relaxed
/// load; when off they return before touching any metric atomics, so the
/// disabled cost is one predictable branch. Defaults to on.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable all metric recording process-wide. Reads (rendering,
/// quantiles, STATS) are unaffected — only new observations are dropped.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

static QUERY_IDS: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique query id for span tracking.
pub fn next_query_id() -> u64 {
    QUERY_IDS.fetch_add(1, Ordering::Relaxed)
}

fn start_anchor() -> &'static Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now)
}

/// Pin the process-start anchor used by [`uptime_secs`] and
/// [`MonotonicClock`]. Call once early in `main`; later calls are no-ops.
pub fn init_start_time() {
    let _ = start_anchor();
}

/// Seconds since the process-start anchor was first pinned.
pub fn uptime_secs() -> f64 {
    start_anchor().elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_ids_are_unique_and_increasing() {
        let a = next_query_id();
        let b = next_query_id();
        assert!(b > a);
    }

    #[test]
    fn uptime_advances() {
        init_start_time();
        let a = uptime_secs();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(uptime_secs() > a);
    }
}
