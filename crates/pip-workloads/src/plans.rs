//! Engine-level (logical plan) versions of the evaluation workloads.
//!
//! The queries in [`crate::queries`] build each result c-table by hand —
//! right for isolating the sampling operators, but blind to query-phase
//! cost. The workload here drives Q3's shape (the Figure 6 selective
//! join) through the *whole* engine instead: catalog tables, a join
//! plan, predicate + projection pushdown, and an executor. Customer and
//! delivery tables carry deliberately wide padding columns, the realism
//! tax projection pushdown exists to avoid paying.

use pip_core::{DataType, Result, Schema};
use pip_dist::prelude::builtin;
use pip_expr::{Equation, RandomVar};

use pip_ctable::CRow;
use pip_engine::{Database, Plan, PlanBuilder, ScalarExpr};

use crate::tpch::TpchData;

/// Number of unused padding columns on each base table.
pub const PAD_COLS: usize = 6;

/// Build the join-workload catalog: `customers(cust, spend, incr, supp,
/// pad0..)` and `deliveries(supp_id, duration, thr, pad0..)` where
/// `incr ~ Poisson(rate_c)` is the purchase-increase variable and
/// `duration ~ Normal` with per-row threshold `thr` calibrated so
/// `P[duration > thr] = selectivity` (Q3's dissatisfaction filter).
pub fn join_db(data: &TpchData, selectivity: f64) -> Result<Database> {
    let db = Database::new();
    let mut cust_cols = vec![
        ("cust", DataType::Int),
        ("spend", DataType::Float),
        ("incr", DataType::Symbolic),
        ("supp", DataType::Int),
    ];
    let mut deli_cols = vec![
        ("supp_id", DataType::Int),
        ("duration", DataType::Symbolic),
        ("thr", DataType::Float),
    ];
    let pads: Vec<String> = (0..PAD_COLS).map(|i| format!("pad{i}")).collect();
    for p in &pads {
        cust_cols.push((p, DataType::Float));
        deli_cols.push((p, DataType::Float));
    }
    db.create_table("customers", Schema::of(&cust_cols))?;
    db.create_table("deliveries", Schema::of(&deli_cols))?;

    let z = pip_dist::special::inverse_normal_cdf(1.0 - selectivity);
    let n_supp = data.suppliers.len().max(1);
    let mut cust_rows = Vec::with_capacity(data.customers.len());
    for (i, c) in data.customers.iter().enumerate() {
        let x = RandomVar::create(builtin::poisson(), &[c.increase_rate()])?;
        let mut cells = vec![
            Equation::val(c.id as i64),
            Equation::val(c.spend),
            Equation::from(x),
            Equation::val((i % n_supp) as i64),
        ];
        for p in 0..PAD_COLS {
            cells.push(Equation::val((i * 7 + p) as f64));
        }
        cust_rows.push(CRow::unconditional(cells));
    }
    db.insert_rows("customers", cust_rows)?;

    let mut deli_rows = Vec::with_capacity(n_supp);
    for (i, s) in data.suppliers.iter().enumerate() {
        let mu = s.mfg_mean + s.ship_mean;
        let sd = (s.mfg_std * s.mfg_std + s.ship_std * s.ship_std).sqrt();
        let d = RandomVar::create(builtin::normal(), &[mu, sd])?;
        let mut cells = vec![
            Equation::val(i as i64),
            Equation::from(d),
            Equation::val(mu + z * sd),
        ];
        for p in 0..PAD_COLS {
            cells.push(Equation::val((i * 3 + p) as f64));
        }
        deli_rows.push(CRow::unconditional(cells));
    }
    db.insert_rows("deliveries", deli_rows)?;
    Ok(db)
}

/// The Q3-shaped plan over [`join_db`]'s catalog:
///
/// ```sql
/// SELECT expected_sum(lost) FROM (
///   SELECT spend * incr AS lost
///   FROM customers JOIN deliveries ON supp = supp_id
///   WHERE duration > thr
/// )
/// ```
pub fn join_plan() -> Plan {
    PlanBuilder::scan("customers")
        .equi_join(PlanBuilder::scan("deliveries"), vec![("supp", "supp_id")])
        .select(ScalarExpr::col("duration").gt(ScalarExpr::col("thr")))
        .expect("predicate")
        .project(vec![(
            "lost",
            ScalarExpr::col("spend").mul(ScalarExpr::col("incr")),
        )])
        .aggregate(
            vec![],
            vec![pip_engine::AggFunc::ExpectedSum("lost".into())],
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::q3_exact;
    use crate::tpch::{generate, TpchConfig};
    use pip_engine::{execute, execute_materialized, optimize, scalar_result};
    use pip_sampling::SamplerConfig;

    #[test]
    fn join_workload_executes_and_matches_q3_truth() {
        let data = generate(&TpchConfig {
            n_customers: 40,
            n_parts: 5,
            n_suppliers: 8,
            seed: 21,
        });
        let sel = 0.2;
        let db = join_db(&data, sel).unwrap();
        let cfg = SamplerConfig::default();
        let plan = optimize(&db, join_plan()).unwrap();
        let t = execute(&db, &plan, &cfg).unwrap();
        let v = scalar_result(&t).unwrap();
        // Purchase increase is independent of delivery: Σ spend·λ·sel.
        let truth = q3_exact(&data, sel);
        assert!((v - truth).abs() / truth < 0.15, "{v} vs {truth}");
        // Both executors, optimized or not: one result.
        let raw = join_plan();
        let m = scalar_result(&execute_materialized(&db, &raw, &cfg).unwrap()).unwrap();
        assert_eq!(v.to_bits(), m.to_bits(), "executors disagree");
    }

    #[test]
    fn pushdown_prunes_the_padding_columns() {
        let data = generate(&TpchConfig {
            n_customers: 10,
            n_parts: 2,
            n_suppliers: 4,
            seed: 3,
        });
        let db = join_db(&data, 0.3).unwrap();
        let opt = optimize(&db, join_plan()).unwrap();
        let text = opt.explain();
        // Narrow projections above both scans; no pad column survives.
        assert!(!text.contains("pad0"), "{text}");
        assert!(
            text.contains("Project: [cust, spend, incr, supp]") || text.contains("supp]"),
            "{text}"
        );
        assert!(text.contains("Project: [supp_id, duration, thr]"), "{text}");
    }
}
