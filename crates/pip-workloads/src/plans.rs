//! Engine-level (logical plan) versions of the evaluation workloads.
//!
//! The queries in [`crate::queries`] build each result c-table by hand —
//! right for isolating the sampling operators, but blind to query-phase
//! cost. The workload here drives Q3's shape (the Figure 6 selective
//! join) through the *whole* engine instead: catalog tables, a join
//! plan, predicate + projection pushdown, and an executor. Customer and
//! delivery tables carry deliberately wide padding columns, the realism
//! tax projection pushdown exists to avoid paying.

use pip_core::{DataType, Result, Schema};
use pip_dist::prelude::builtin;
use pip_expr::{Equation, RandomVar};

use pip_ctable::CRow;
use pip_engine::{Database, Plan, PlanBuilder, ScalarExpr};

use crate::tpch::TpchData;

/// Number of unused padding columns on each base table.
pub const PAD_COLS: usize = 6;

/// Build the join-workload catalog: `customers(cust, spend, incr, supp,
/// pad0..)` and `deliveries(supp_id, duration, thr, pad0..)` where
/// `incr ~ Poisson(rate_c)` is the purchase-increase variable and
/// `duration ~ Normal` with per-row threshold `thr` calibrated so
/// `P[duration > thr] = selectivity` (Q3's dissatisfaction filter).
pub fn join_db(data: &TpchData, selectivity: f64) -> Result<Database> {
    let db = Database::new();
    let mut cust_cols = vec![
        ("cust", DataType::Int),
        ("spend", DataType::Float),
        ("incr", DataType::Symbolic),
        ("supp", DataType::Int),
    ];
    let mut deli_cols = vec![
        ("supp_id", DataType::Int),
        ("duration", DataType::Symbolic),
        ("thr", DataType::Float),
    ];
    let pads: Vec<String> = (0..PAD_COLS).map(|i| format!("pad{i}")).collect();
    for p in &pads {
        cust_cols.push((p, DataType::Float));
        deli_cols.push((p, DataType::Float));
    }
    db.create_table("customers", Schema::of(&cust_cols))?;
    db.create_table("deliveries", Schema::of(&deli_cols))?;

    let z = pip_dist::special::inverse_normal_cdf(1.0 - selectivity);
    let n_supp = data.suppliers.len().max(1);
    let mut cust_rows = Vec::with_capacity(data.customers.len());
    for (i, c) in data.customers.iter().enumerate() {
        let x = RandomVar::create(builtin::poisson(), &[c.increase_rate()])?;
        let mut cells = vec![
            Equation::val(c.id as i64),
            Equation::val(c.spend),
            Equation::from(x),
            Equation::val((i % n_supp) as i64),
        ];
        for p in 0..PAD_COLS {
            cells.push(Equation::val((i * 7 + p) as f64));
        }
        cust_rows.push(CRow::unconditional(cells));
    }
    db.insert_rows("customers", cust_rows)?;

    let mut deli_rows = Vec::with_capacity(n_supp);
    for (i, s) in data.suppliers.iter().enumerate() {
        let mu = s.mfg_mean + s.ship_mean;
        let sd = (s.mfg_std * s.mfg_std + s.ship_std * s.ship_std).sqrt();
        let d = RandomVar::create(builtin::normal(), &[mu, sd])?;
        let mut cells = vec![
            Equation::val(i as i64),
            Equation::from(d),
            Equation::val(mu + z * sd),
        ];
        for p in 0..PAD_COLS {
            cells.push(Equation::val((i * 3 + p) as f64));
        }
        deli_rows.push(CRow::unconditional(cells));
    }
    db.insert_rows("deliveries", deli_rows)?;
    Ok(db)
}

/// The Q3-shaped plan over [`join_db`]'s catalog:
///
/// ```sql
/// SELECT expected_sum(lost) FROM (
///   SELECT spend * incr AS lost
///   FROM customers JOIN deliveries ON supp = supp_id
///   WHERE duration > thr
/// )
/// ```
pub fn join_plan() -> Plan {
    PlanBuilder::scan("customers")
        .equi_join(PlanBuilder::scan("deliveries"), vec![("supp", "supp_id")])
        .select(ScalarExpr::col("duration").gt(ScalarExpr::col("thr")))
        .expect("predicate")
        .project(vec![(
            "lost",
            ScalarExpr::col("spend").mul(ScalarExpr::col("incr")),
        )])
        .aggregate(
            vec![],
            vec![pip_engine::AggFunc::ExpectedSum("lost".into())],
        )
        .build()
}

/// Row counts of the star join-order workload, derived from the fact
/// table size with sharply skewed dimensions.
#[derive(Debug, Clone, Copy)]
pub struct StarShape {
    pub fact: usize,
    pub dim_a: usize,
    pub dim_b: usize,
    pub dim_c: usize,
    /// Fraction of `dim_c` kept by its filter (the selective dimension).
    pub c_selectivity: f64,
}

impl StarShape {
    /// Shape for a given fact-table size.
    pub fn of(fact: usize) -> StarShape {
        StarShape {
            fact: fact.max(40),
            dim_a: (fact / 10).max(8),
            dim_b: (fact / 40).max(4),
            dim_c: (fact / 100).max(5),
            c_selectivity: 0.2,
        }
    }
}

/// Build the join-order workload catalog: a star schema with skewed
/// cardinalities — `fact(fa, fb, fc, amount, fpad0, fpad1)` referencing
/// `dim_a(ak, aw)`, `dim_b(bk, bw)` and the small, selectively filtered
/// `dim_c(ck, cfilter, cw)`. All cells are deterministic so the query
/// phase (the thing join order changes) dominates; the aggregate head
/// costs the same under every plan.
pub fn star_db(shape: &StarShape) -> Result<Database> {
    let db = Database::new();
    db.create_table(
        "fact",
        Schema::of(&[
            ("fa", DataType::Int),
            ("fb", DataType::Int),
            ("fc", DataType::Int),
            ("amount", DataType::Float),
            ("fpad0", DataType::Float),
            ("fpad1", DataType::Float),
        ]),
    )?;
    db.create_table(
        "dim_a",
        Schema::of(&[("ak", DataType::Int), ("aw", DataType::Float)]),
    )?;
    db.create_table(
        "dim_b",
        Schema::of(&[("bk", DataType::Int), ("bw", DataType::Float)]),
    )?;
    db.create_table(
        "dim_c",
        Schema::of(&[
            ("ck", DataType::Int),
            ("cfilter", DataType::Float),
            ("cw", DataType::Float),
        ]),
    )?;
    let mut fact = Vec::with_capacity(shape.fact);
    for i in 0..shape.fact {
        fact.push(CRow::unconditional(vec![
            Equation::val(((i * 7 + 3) % shape.dim_a) as i64),
            Equation::val(((i * 13 + 1) % shape.dim_b) as i64),
            Equation::val(((i * 11 + 5) % shape.dim_c) as i64),
            Equation::val(1.0 + (i % 17) as f64),
            Equation::val(i as f64),
            Equation::val((i * 2) as f64),
        ]));
    }
    db.insert_rows("fact", fact)?;
    fn dim(n: usize, f: impl Fn(usize) -> Vec<Equation>) -> Vec<CRow> {
        (0..n).map(|i| CRow::unconditional(f(i))).collect()
    }
    db.insert_rows(
        "dim_a",
        dim(shape.dim_a, |i| {
            vec![Equation::val(i as i64), Equation::val((i % 5) as f64)]
        }),
    )?;
    db.insert_rows(
        "dim_b",
        dim(shape.dim_b, |i| {
            vec![Equation::val(i as i64), Equation::val((i % 3) as f64)]
        }),
    )?;
    db.insert_rows(
        "dim_c",
        dim(shape.dim_c, |i| {
            vec![
                Equation::val(i as i64),
                // Uniform in [0, 1): the filter keeps `c_selectivity`.
                Equation::val((i as f64 + 0.5) / shape.dim_c as f64),
                Equation::val((i % 7) as f64),
            ]
        }),
    )?;
    Ok(db)
}

/// The star workload's query, written in the worst plausible order —
/// products in FROM-clause sequence with every join predicate in the
/// WHERE clause, exactly what `SELECT ... FROM fact, dim_a, dim_b,
/// dim_c WHERE ...` parses to:
///
/// ```sql
/// SELECT expected_sum(amount)
/// FROM fact, dim_a, dim_b, dim_c
/// WHERE fa = ak AND fb = bk AND fc = ck AND cfilter < 0.2
/// ```
///
/// Executed literally, `fact × dim_a` materializes first; a cost-based
/// optimizer must join the small filtered `dim_c` in early instead.
pub fn star_plan_written(shape: &StarShape) -> Plan {
    PlanBuilder::scan("fact")
        .product(PlanBuilder::scan("dim_a"))
        .product(PlanBuilder::scan("dim_b"))
        .product(PlanBuilder::scan("dim_c"))
        .select(
            ScalarExpr::col("fa")
                .eq(ScalarExpr::col("ak"))
                .and(ScalarExpr::col("fb").eq(ScalarExpr::col("bk")))
                .and(ScalarExpr::col("fc").eq(ScalarExpr::col("ck")))
                .and(ScalarExpr::col("cfilter").lt(ScalarExpr::lit(shape.c_selectivity))),
        )
        .expect("predicate")
        .aggregate(
            vec![],
            vec![pip_engine::AggFunc::ExpectedSum("amount".into())],
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::q3_exact;
    use crate::tpch::{generate, TpchConfig};
    use pip_engine::{
        execute, execute_materialized, optimize, optimize_with, scalar_result, OptimizerConfig,
    };
    use pip_sampling::SamplerConfig;

    #[test]
    fn join_workload_executes_and_matches_q3_truth() {
        let data = generate(&TpchConfig {
            n_customers: 40,
            n_parts: 5,
            n_suppliers: 8,
            seed: 21,
        });
        let sel = 0.2;
        let db = join_db(&data, sel).unwrap();
        let cfg = SamplerConfig::default();
        let plan = optimize(&db, join_plan()).unwrap();
        let t = execute(&db, &plan, &cfg).unwrap();
        let v = scalar_result(&t).unwrap();
        // Purchase increase is independent of delivery: Σ spend·λ·sel.
        let truth = q3_exact(&data, sel);
        assert!((v - truth).abs() / truth < 0.15, "{v} vs {truth}");
        // Both executors, optimized or not: one result.
        let raw = join_plan();
        let m = scalar_result(&execute_materialized(&db, &raw, &cfg).unwrap()).unwrap();
        assert_eq!(v.to_bits(), m.to_bits(), "executors disagree");
    }

    #[test]
    fn pushdown_prunes_the_padding_columns_where_it_pays() {
        let data = generate(&TpchConfig {
            n_customers: 10,
            n_parts: 2,
            n_suppliers: 4,
            seed: 3,
        });
        let db = join_db(&data, 0.3).unwrap();
        // Streaming target: at this workload's widths and fan-outs an
        // extra per-row projection stage costs more than the saved cell
        // clones on either side (measured in BENCH_exec.json — this was
        // the PR 2 pushdown regression), so the cost gate declines both
        // and the plan keeps bare scans.
        let opt = optimize(&db, join_plan()).unwrap();
        let text = opt.explain();
        assert!(!text.contains("pad0"), "{text}");
        assert!(
            !text.contains("Project: [supp_id, duration, thr]"),
            "{text}"
        );
        assert!(!text.contains("Project: [spend, incr, supp]"), "{text}");
        // Materializing target: product-then-select clones each side
        // once per *pair*, so pruning repays on both sides (and `cust`,
        // never referenced, goes too).
        let mat = optimize_with(&db, join_plan(), &OptimizerConfig::materializing()).unwrap();
        let text = mat.explain();
        assert!(text.contains("Project: [supp_id, duration, thr]"), "{text}");
        assert!(text.contains("Project: [spend, incr, supp]"), "{text}");
    }

    #[test]
    fn star_workload_reorders_and_preserves_the_answer() {
        let shape = StarShape::of(400);
        let db = star_db(&shape).unwrap();
        let written = star_plan_written(&shape);
        let cfg = SamplerConfig::fixed_samples(50);
        let opt = optimize(&db, written.clone()).unwrap();
        let text = opt.explain();
        // Every product became a hash join.
        assert!(!text.contains("Product"), "{text}");
        assert!(text.contains("EquiJoin"), "{text}");
        // The selective dimension joins before the wide ones: dim_c must
        // appear as the first build side (the innermost right leaf).
        let join_line = text
            .lines()
            .rfind(|l| l.contains("EquiJoin"))
            .unwrap()
            .to_string();
        assert!(
            join_line.contains("fc=ck"),
            "first join should bind dim_c: {text}"
        );
        // Same answer from written order, both executors.
        let v_written = scalar_result(&execute(&db, &written, &cfg).unwrap()).unwrap();
        let v_opt = scalar_result(&execute(&db, &opt, &cfg).unwrap()).unwrap();
        let v_mat = scalar_result(&execute_materialized(&db, &opt, &cfg).unwrap()).unwrap();
        assert_eq!(v_opt.to_bits(), v_mat.to_bits(), "executors disagree");
        assert!(
            (v_written - v_opt).abs() < 1e-9,
            "{v_written} vs {v_opt} (deterministic sum must be identical)"
        );
    }
}
