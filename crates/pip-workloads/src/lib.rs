//! # pip-workloads
//!
//! Workload generators and the paper's evaluation queries (Section VI):
//! a deterministic TPC-H-flavoured generator, queries Q1–Q5 in both PIP
//! (symbolic c-table) and Sample-First (tuple bundle) form with exact
//! references where they exist, and the NSIDC-style iceberg
//! danger-estimation scenario of Figure 8.

pub mod iceberg;
pub mod plans;
pub mod queries;
pub mod tpch;

pub use queries::{normalized_rms, PerRow, Timed};
pub use tpch::{generate as generate_tpch, TpchConfig, TpchData};

/// Glob-import surface.
pub mod prelude {
    pub use crate::iceberg;
    pub use crate::plans;
    pub use crate::queries::{self, normalized_rms, PerRow, Timed};
    pub use crate::tpch::{self, TpchConfig, TpchData};
}
