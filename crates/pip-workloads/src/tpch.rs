//! A deterministic TPC-H-flavoured data generator.
//!
//! The paper evaluates over a 1 GB TPC-H database; the queries only need
//! the *shape* of that data — customers with purchase histories, parts
//! with prices and popularity, suppliers with manufacturing/shipping
//! statistics — so this generator synthesizes exactly those columns with
//! realistic skew, deterministically from a seed (DESIGN.md §2 records
//! the substitution).

use pip_dist::rng_from_seed;
use rand::Rng;

/// One customer: purchase history over two past years plus a
/// satisfaction threshold on delivery time.
#[derive(Debug, Clone, PartialEq)]
pub struct Customer {
    pub id: u64,
    /// Average revenue per order.
    pub spend: f64,
    /// Orders two years ago.
    pub purchases_y1: f64,
    /// Orders last year.
    pub purchases_y2: f64,
    /// Delivery days beyond which the customer is dissatisfied.
    pub satisfaction_threshold: f64,
}

impl Customer {
    /// The rate parametrizing the Poisson purchase-increase model of Q1:
    /// proportional to the observed year-over-year increase.
    pub fn increase_rate(&self) -> f64 {
        (self.purchases_y2 / self.purchases_y1.max(1.0)).max(0.1) * 3.0
    }
}

/// One part: price plus the sales-model parameters used by Q4/Q5.
#[derive(Debug, Clone, PartialEq)]
pub struct Part {
    pub id: u64,
    pub price: f64,
    /// Poisson rate of the sales-increase model.
    pub sales_rate: f64,
    /// Rate of the Exponential popularity multiplier (mean = 1/rate).
    pub popularity_rate: f64,
}

/// One supplier: nation plus manufacturing and shipping statistics
/// (the "mean and standard deviation of manufacturing and shipping
/// times" Q2 estimates from past orders).
#[derive(Debug, Clone, PartialEq)]
pub struct Supplier {
    pub id: u64,
    pub japanese: bool,
    pub mfg_mean: f64,
    pub mfg_std: f64,
    pub ship_mean: f64,
    pub ship_std: f64,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    pub n_customers: usize,
    pub n_parts: usize,
    pub n_suppliers: usize,
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            n_customers: 200,
            n_parts: 500,
            n_suppliers: 50,
            seed: 0x7C9,
        }
    }
}

impl TpchConfig {
    /// Scale every table by `factor` (the benches sweep this).
    pub fn scaled(factor: f64, seed: u64) -> Self {
        let d = TpchConfig::default();
        TpchConfig {
            n_customers: ((d.n_customers as f64 * factor) as usize).max(1),
            n_parts: ((d.n_parts as f64 * factor) as usize).max(1),
            n_suppliers: ((d.n_suppliers as f64 * factor) as usize).max(1),
            seed,
        }
    }
}

/// The generated database.
#[derive(Debug, Clone, PartialEq)]
pub struct TpchData {
    pub customers: Vec<Customer>,
    pub parts: Vec<Part>,
    pub suppliers: Vec<Supplier>,
}

/// Generate deterministically from `cfg.seed`.
pub fn generate(cfg: &TpchConfig) -> TpchData {
    let mut rng = rng_from_seed(cfg.seed);
    let customers = (0..cfg.n_customers)
        .map(|i| {
            let y1 = rng.gen_range(1.0..40.0_f64).floor().max(1.0);
            // Year-over-year drift between -40% and +120%.
            let growth = rng.gen_range(0.6..2.2);
            Customer {
                id: i as u64,
                spend: rng.gen_range(20.0..500.0),
                purchases_y1: y1,
                purchases_y2: (y1 * growth).floor().max(1.0),
                satisfaction_threshold: rng.gen_range(7.0..21.0),
            }
        })
        .collect();
    let parts = (0..cfg.n_parts)
        .map(|i| Part {
            id: i as u64,
            price: rng.gen_range(1.0..100.0),
            sales_rate: rng.gen_range(0.5..12.0),
            popularity_rate: rng.gen_range(0.5..2.0),
        })
        .collect();
    let suppliers = (0..cfg.n_suppliers)
        .map(|i| Supplier {
            id: i as u64,
            japanese: rng.gen_bool(0.2),
            mfg_mean: rng.gen_range(3.0..10.0),
            mfg_std: rng.gen_range(0.5..3.0),
            ship_mean: rng.gen_range(2.0..12.0),
            ship_std: rng.gen_range(0.5..4.0),
        })
        .collect();
    TpchData {
        customers,
        parts,
        suppliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = TpchConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = TpchConfig { seed: 999, ..cfg };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn sizes_match_config() {
        let cfg = TpchConfig {
            n_customers: 7,
            n_parts: 11,
            n_suppliers: 3,
            seed: 1,
        };
        let d = generate(&cfg);
        assert_eq!(d.customers.len(), 7);
        assert_eq!(d.parts.len(), 11);
        assert_eq!(d.suppliers.len(), 3);
    }

    #[test]
    fn value_ranges_sane() {
        let d = generate(&TpchConfig::default());
        for c in &d.customers {
            assert!(c.spend >= 20.0 && c.spend <= 500.0);
            assert!(c.purchases_y1 >= 1.0);
            assert!(c.increase_rate() > 0.0 && c.increase_rate() < 10.0);
        }
        for p in &d.parts {
            assert!(p.sales_rate > 0.0 && p.popularity_rate > 0.0);
        }
        assert!(d.suppliers.iter().any(|s| s.japanese));
    }

    #[test]
    fn scaling() {
        let s = TpchConfig::scaled(0.1, 5);
        assert_eq!(s.n_customers, 20);
        assert_eq!(s.n_parts, 50);
        let up = TpchConfig::scaled(2.0, 5);
        assert_eq!(up.n_customers, 400);
    }
}
