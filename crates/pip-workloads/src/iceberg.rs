//! The iceberg danger-estimation experiment (paper Section VI, Fig. 8).
//!
//! The paper uses the NSIDC International Ice Patrol sighting database;
//! we synthesize sightings with the same statistical structure
//! (substitution recorded in DESIGN.md §2): each iceberg's current
//! position is normally distributed around its last sighting with a
//! drift that grows with sighting age, and its danger level decays
//! exponentially with age. 100 virtual ships are placed at random; for
//! each ship the query finds icebergs with `P[nearby] > 0.001` and sums
//! `danger × P[nearby]`.
//!
//! Proximity is an axis-aligned box (|Δx| < r ∧ |Δy| < r), which makes
//! the per-iceberg probability a product of two single-variable interval
//! events — exactly the shape PIP integrates **exactly** with four CDF
//! evaluations, while Sample-First must estimate it by sampling
//! positions (and took >10 minutes to PIP's 10 seconds in the paper).

use pip_core::{DataType, Result, Schema};
use pip_dist::prelude::builtin;
use pip_dist::{rng_from_seed, special};
use pip_expr::{atoms, Conjunction, Equation, RandomVar};
use rand::Rng;

use pip_ctable::{CRow, CTable};
use pip_samplefirst::{agg as sf_agg, ops as sf_ops, BundleTable};
use pip_sampling::{conf, SamplerConfig};

/// One virtual ship.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ship {
    pub x: f64,
    pub y: f64,
}

/// One iceberg sighting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sighting {
    /// Last sighted position.
    pub x: f64,
    pub y: f64,
    /// Years since the sighting.
    pub age: f64,
}

impl Sighting {
    /// Positional drift (standard deviation) after `age` years.
    pub fn drift(&self) -> f64 {
        0.5 + 1.5 * self.age.sqrt()
    }

    /// Exponentially decaying danger level.
    pub fn danger(&self) -> f64 {
        (-0.5 * self.age).exp()
    }
}

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct IcebergConfig {
    pub n_ships: usize,
    pub n_icebergs: usize,
    /// Half-width of the "nearby" box around a ship.
    pub radius: f64,
    /// Area of the simulated North Atlantic patch (square side).
    pub extent: f64,
    pub seed: u64,
}

impl Default for IcebergConfig {
    fn default() -> Self {
        IcebergConfig {
            n_ships: 100,
            n_icebergs: 400,
            radius: 3.0,
            extent: 60.0,
            seed: 0x1CE,
        }
    }
}

/// The generated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct IcebergData {
    pub ships: Vec<Ship>,
    pub sightings: Vec<Sighting>,
    pub config: IcebergConfig,
}

impl PartialEq for IcebergConfig {
    fn eq(&self, other: &Self) -> bool {
        self.n_ships == other.n_ships
            && self.n_icebergs == other.n_icebergs
            && self.radius == other.radius
            && self.extent == other.extent
            && self.seed == other.seed
    }
}

/// Generate ships and sightings deterministically.
pub fn generate(cfg: &IcebergConfig) -> IcebergData {
    let mut rng = rng_from_seed(cfg.seed);
    let ships = (0..cfg.n_ships)
        .map(|_| Ship {
            x: rng.gen_range(0.0..cfg.extent),
            y: rng.gen_range(0.0..cfg.extent),
        })
        .collect();
    let sightings = (0..cfg.n_icebergs)
        .map(|_| Sighting {
            x: rng.gen_range(0.0..cfg.extent),
            y: rng.gen_range(0.0..cfg.extent),
            // Ages 0–4 years; recent sightings are dangerous, old ones
            // are "potential new iceberg locations".
            age: rng.gen_range(0.0..4.0),
        })
        .collect();
    IcebergData {
        ships,
        sightings,
        config: *cfg,
    }
}

/// Exact `P[iceberg within the box around ship]`: the product of two
/// normal interval probabilities.
pub fn exact_near_probability(ship: &Ship, s: &Sighting, radius: f64) -> f64 {
    let d = s.drift();
    let px = special::normal_cdf((ship.x + radius - s.x) / d)
        - special::normal_cdf((ship.x - radius - s.x) / d);
    let py = special::normal_cdf((ship.y + radius - s.y) / d)
        - special::normal_cdf((ship.y - radius - s.y) / d);
    px * py
}

/// Ground truth: per-ship total threat
/// `Σ_{icebergs: P > threshold} danger · P[nearby]`.
pub fn exact_threat(data: &IcebergData, threshold: f64) -> Vec<f64> {
    data.ships
        .iter()
        .map(|ship| {
            data.sightings
                .iter()
                .map(|s| {
                    let p = exact_near_probability(ship, s, data.config.radius);
                    if p > threshold {
                        s.danger() * p
                    } else {
                        0.0
                    }
                })
                .sum()
        })
        .collect()
}

/// Build the c-table of iceberg positions: one row per iceberg with
/// symbolic `pos_x`, `pos_y` and deterministic `danger`.
pub fn iceberg_ctable(data: &IcebergData) -> Result<(CTable, Vec<(RandomVar, RandomVar)>)> {
    let schema = Schema::of(&[
        ("pos_x", DataType::Symbolic),
        ("pos_y", DataType::Symbolic),
        ("danger", DataType::Float),
    ]);
    let mut t = CTable::empty(schema);
    let mut vars = Vec::with_capacity(data.sightings.len());
    for s in &data.sightings {
        let d = s.drift();
        let vx = RandomVar::create(builtin::normal(), &[s.x, d])?;
        let vy = RandomVar::create(builtin::normal(), &[s.y, d])?;
        t.push(CRow::unconditional(vec![
            Equation::from(vx.clone()),
            Equation::from(vy.clone()),
            Equation::val(s.danger()),
        ]))?;
        vars.push((vx, vy));
    }
    Ok((t, vars))
}

/// PIP evaluation: for each ship, select nearby icebergs symbolically
/// (four atoms per iceberg) and compute each row's confidence. Because
/// every atom is a single-variable interval, `conf` takes the exact CDF
/// path — no sampling at all, matching the paper's "PIP was able to
/// obtain an exact result".
pub fn threat_pip(data: &IcebergData, threshold: f64, cfg: &SamplerConfig) -> Result<Vec<f64>> {
    let (table, _) = iceberg_ctable(data)?;
    let r = data.config.radius;
    let mut out = Vec::with_capacity(data.ships.len());
    for ship in &data.ships {
        let mut threat = 0.0;
        for (i, row) in table.rows().iter().enumerate() {
            let cond = Conjunction::of(vec![
                atoms::gt(row.cells[0].clone(), ship.x - r),
                atoms::lt(row.cells[0].clone(), ship.x + r),
                atoms::gt(row.cells[1].clone(), ship.y - r),
                atoms::lt(row.cells[1].clone(), ship.y + r),
            ]);
            let p = conf(&cond, cfg, i as u64)?;
            if p > threshold {
                threat += row.cells[2].as_const().unwrap().as_f64()? * p;
            }
        }
        out.push(threat);
    }
    Ok(out)
}

/// Sample-First evaluation: instantiate every iceberg position for every
/// world, then per ship estimate `P[nearby]` as the surviving-world
/// fraction.
pub fn threat_sf(
    data: &IcebergData,
    threshold: f64,
    n_worlds: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    let (table, _) = iceberg_ctable(data)?;
    let bt = BundleTable::instantiate(&table, n_worlds, seed)?;
    let r = data.config.radius;
    let (cx, cy, cd) = (bt.col("pos_x")?, bt.col("pos_y")?, bt.col("danger")?);
    let mut out = Vec::with_capacity(data.ships.len());
    for ship in &data.ships {
        let near = sf_ops::filter_worlds(&bt, |b, w| {
            let x = b.cells[cx].f64_at(w)?;
            let y = b.cells[cy].f64_at(w)?;
            Ok((x - ship.x).abs() < r && (y - ship.y).abs() < r)
        })?;
        let probs = sf_agg::presence_probability(&near);
        let mut threat = 0.0;
        for (b, p) in near.bundles().iter().zip(probs) {
            if p > threshold {
                threat += b.cells[cd].as_det()?.as_f64()? * p;
            }
        }
        out.push(threat);
    }
    Ok(out)
}

/// Per-ship relative errors |est − exact| / exact (ships with zero exact
/// threat are skipped), the quantity Figure 8 plots as a CDF.
pub fn relative_errors(estimates: &[f64], exact: &[f64]) -> Vec<f64> {
    estimates
        .iter()
        .zip(exact)
        .filter(|(_, &x)| x > 0.0)
        .map(|(&e, &x)| (e - x).abs() / x)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> IcebergData {
        generate(&IcebergConfig {
            n_ships: 10,
            n_icebergs: 40,
            radius: 3.0,
            extent: 30.0,
            seed: 5,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = IcebergConfig::default();
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn near_probability_bounds() {
        let data = small();
        for ship in &data.ships {
            for s in &data.sightings {
                let p = exact_near_probability(ship, s, data.config.radius);
                assert!((0.0..=1.0).contains(&p));
            }
        }
        // An iceberg sighted exactly at the ship with tiny drift is
        // almost surely nearby.
        let ship = Ship { x: 10.0, y: 10.0 };
        let s = Sighting {
            x: 10.0,
            y: 10.0,
            age: 0.0,
        };
        assert!(exact_near_probability(&ship, &s, 3.0) > 0.99);
    }

    #[test]
    fn pip_is_exact() {
        let data = small();
        let cfg = SamplerConfig::default();
        let exact = exact_threat(&data, 0.001);
        let pip = threat_pip(&data, 0.001, &cfg).unwrap();
        for (p, x) in pip.iter().zip(&exact) {
            assert!((p - x).abs() < 1e-9, "{p} vs {x}");
        }
    }

    #[test]
    fn sf_error_shrinks_with_worlds() {
        let data = small();
        let exact = exact_threat(&data, 0.001);
        let coarse = threat_sf(&data, 0.001, 50, 1).unwrap();
        let fine = threat_sf(&data, 0.001, 2000, 1).unwrap();
        let e_coarse = relative_errors(&coarse, &exact);
        let e_fine = relative_errors(&fine, &exact);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&e_fine) < mean(&e_coarse),
            "{} !< {}",
            mean(&e_fine),
            mean(&e_coarse)
        );
        assert!(mean(&e_fine) < 0.25, "{}", mean(&e_fine));
    }

    #[test]
    fn threshold_filters_low_probability_icebergs() {
        let data = small();
        let all = exact_threat(&data, 0.0);
        let filtered = exact_threat(&data, 0.5);
        for (a, f) in all.iter().zip(&filtered) {
            assert!(f <= a);
        }
    }
}
