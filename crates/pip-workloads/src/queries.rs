//! The paper's evaluation queries Q1–Q5 (Section VI), each in three
//! forms: the symbolic c-table PIP evaluates, the tuple-bundle pipeline
//! Sample-First evaluates, and — where one exists — the algebraically
//! exact answer used as ground truth by the RMS-error figures.
//!
//! | Query | Model | Paper role |
//! |-------|-------|------------|
//! | Q1 | Poisson purchase increase × spend, summed | Fig. 6 (SF-friendly) |
//! | Q2 | Normal+Normal delivery dates, max | Fig. 6 (SF-friendly) |
//! | Q3 | Q1 revenue lost to dissatisfied customers (selective join) | Fig. 6 |
//! | Q4 | Poisson × Exponential sales under an extreme-popularity filter | Figs. 5, 6, 7a |
//! | Q5 | demand (Poisson) vs supply (Exponential) underproduction | Fig. 7b |

use std::time::Instant;

use pip_core::{DataType, Result, Schema};
use pip_dist::prelude::builtin;
use pip_dist::special;
use pip_expr::{atoms, Conjunction, Equation, RandomVar};

use pip_ctable::{CRow, CTable};
use pip_samplefirst::{agg as sf_agg, BundleTable};
use pip_sampling::{expectation, expected_max_sampled, expected_sum, SamplerConfig};

use crate::tpch::TpchData;

/// A timed query run: the estimate plus the phase breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timed {
    /// The query's answer (aggregate value).
    pub value: f64,
    /// Seconds building/evaluating the deterministic + symbolic part.
    pub query_secs: f64,
    /// Seconds spent sampling.
    pub sample_secs: f64,
}

/// Per-row estimates (Q4/Q5 return one estimate per part/supplier).
#[derive(Debug, Clone, PartialEq)]
pub struct PerRow {
    pub estimates: Vec<f64>,
    pub query_secs: f64,
    pub sample_secs: f64,
}

// --------------------------------------------------------------------
// Q1 — expected revenue increase from the Poisson purchase model.
// --------------------------------------------------------------------

/// Build Q1's symbolic result c-table: one row per customer with cell
/// `spend · X_c`, `X_c ~ Poisson(increase_rate_c)`.
pub fn q1_ctable(data: &TpchData) -> Result<CTable> {
    let schema = Schema::of(&[("revenue", DataType::Symbolic)]);
    let mut t = CTable::empty(schema);
    for c in &data.customers {
        let x = RandomVar::create(builtin::poisson(), &[c.increase_rate()])?;
        t.push(CRow::unconditional(vec![(Equation::val(c.spend)
            * Equation::from(x))
        .simplify()]))?;
    }
    Ok(t)
}

/// Exact answer: Σ spend·λ.
pub fn q1_exact(data: &TpchData) -> f64 {
    data.customers
        .iter()
        .map(|c| c.spend * c.increase_rate())
        .sum()
}

/// PIP evaluation of Q1.
pub fn q1_pip(data: &TpchData, cfg: &SamplerConfig) -> Result<Timed> {
    let t0 = Instant::now();
    let table = q1_ctable(data)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let r = expected_sum(&table, "revenue", cfg)?;
    Ok(Timed {
        value: r.value,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

/// Sample-First evaluation of Q1 with `n_worlds` sampled worlds.
pub fn q1_sf(data: &TpchData, n_worlds: usize, seed: u64) -> Result<Timed> {
    let t0 = Instant::now();
    let ct = q1_ctable(data)?;
    let bt = BundleTable::instantiate(&ct, n_worlds, seed)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let value = sf_agg::expected_sum(&bt, "revenue")?;
    Ok(Timed {
        value,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

// --------------------------------------------------------------------
// Q2 — expected latest delivery date across Japanese suppliers' parts.
// --------------------------------------------------------------------

/// Q2's c-table: per Japanese supplier, `delivery = M + S` with
/// `M ~ Normal(mfg)`, `S ~ Normal(ship)`.
pub fn q2_ctable(data: &TpchData) -> Result<CTable> {
    let schema = Schema::of(&[("delivery", DataType::Symbolic)]);
    let mut t = CTable::empty(schema);
    for s in data.suppliers.iter().filter(|s| s.japanese) {
        let m = RandomVar::create(builtin::normal(), &[s.mfg_mean, s.mfg_std])?;
        let sh = RandomVar::create(builtin::normal(), &[s.ship_mean, s.ship_std])?;
        t.push(CRow::unconditional(vec![(Equation::from(m)
            + Equation::from(sh))
        .simplify()]))?;
    }
    Ok(t)
}

/// PIP evaluation of Q2 (`expected_max` over symbolic targets — the
/// naive per-world path, Section IV-C).
pub fn q2_pip(data: &TpchData, cfg: &SamplerConfig, n_samples: usize) -> Result<Timed> {
    let t0 = Instant::now();
    let table = q2_ctable(data)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let r = expected_max_sampled(&table, "delivery", cfg, n_samples)?;
    Ok(Timed {
        value: r.value,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

/// Sample-First evaluation of Q2.
pub fn q2_sf(data: &TpchData, n_worlds: usize, seed: u64) -> Result<Timed> {
    let t0 = Instant::now();
    let ct = q2_ctable(data)?;
    let bt = BundleTable::instantiate(&ct, n_worlds, seed)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let value = sf_agg::expected_max(&bt, "delivery")?;
    Ok(Timed {
        value,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

// --------------------------------------------------------------------
// Q3 — profit lost to dissatisfied customers (selective join of Q1+Q2).
// --------------------------------------------------------------------

/// Q3's c-table: per customer, `lost = spend · X_c` under the condition
/// `D_c > threshold_c` where `D_c ~ Normal(delivery)`. `selectivity`
/// calibrates every threshold to `P[D > thr] = selectivity` exactly, as
/// in the paper's "an average of 10% of customers were dissatisfied".
pub fn q3_ctable(data: &TpchData, selectivity: f64) -> Result<CTable> {
    let schema = Schema::of(&[("lost", DataType::Symbolic)]);
    let mut t = CTable::empty(schema);
    let z = special::inverse_normal_cdf(1.0 - selectivity);
    for (i, c) in data.customers.iter().enumerate() {
        // Delivery statistics borrowed from a supplier (deterministic
        // pairing keeps runs reproducible).
        let s = &data.suppliers[i % data.suppliers.len()];
        let mu = s.mfg_mean + s.ship_mean;
        let sd = (s.mfg_std * s.mfg_std + s.ship_std * s.ship_std).sqrt();
        let d = RandomVar::create(builtin::normal(), &[mu, sd])?;
        let x = RandomVar::create(builtin::poisson(), &[c.increase_rate()])?;
        let thr = mu + z * sd;
        t.push(CRow::new(
            vec![(Equation::val(c.spend) * Equation::from(x)).simplify()],
            Conjunction::single(atoms::gt(Equation::from(d), thr)),
        ))?;
    }
    Ok(t)
}

/// Exact answer: Σ spend·λ·selectivity (profit independent of delivery).
pub fn q3_exact(data: &TpchData, selectivity: f64) -> f64 {
    q1_exact(data) * selectivity
}

/// PIP evaluation of Q3.
pub fn q3_pip(data: &TpchData, selectivity: f64, cfg: &SamplerConfig) -> Result<Timed> {
    let t0 = Instant::now();
    let table = q3_ctable(data, selectivity)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let r = expected_sum(&table, "lost", cfg)?;
    Ok(Timed {
        value: r.value,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

/// Sample-First evaluation of Q3.
pub fn q3_sf(data: &TpchData, selectivity: f64, n_worlds: usize, seed: u64) -> Result<Timed> {
    let t0 = Instant::now();
    let ct = q3_ctable(data, selectivity)?;
    let bt = BundleTable::instantiate(&ct, n_worlds, seed)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let value = sf_agg::expected_sum(&bt, "lost")?;
    Ok(Timed {
        value,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

// --------------------------------------------------------------------
// Q4 — per-part expected sales in the extreme-popularity scenario
// (Figures 5, 6 and 7a).
// --------------------------------------------------------------------

/// Q4's c-table: per part, `sales = X_p · W_p` with `X ~ Poisson(λ_p)`
/// and `W ~ Exponential(r_p)`, under `W_p > t_p` where `t_p` is set so
/// `P[W > t] = selectivity` (the paper's `e^-5.29 ≈ 0.005`).
pub fn q4_ctable(data: &TpchData, selectivity: f64) -> Result<CTable> {
    let schema = Schema::of(&[("part", DataType::Int), ("sales", DataType::Symbolic)]);
    let mut t = CTable::empty(schema);
    for p in &data.parts {
        let x = RandomVar::create(builtin::poisson(), &[p.sales_rate])?;
        let w = RandomVar::create(builtin::exponential(), &[p.popularity_rate])?;
        let thr = -selectivity.ln() / p.popularity_rate;
        t.push(CRow::new(
            vec![
                Equation::val(p.id as i64),
                (Equation::from(x) * Equation::from(w.clone())).simplify(),
            ],
            Conjunction::single(atoms::gt(Equation::from(w), thr)),
        ))?;
    }
    Ok(t)
}

/// Exact per-part conditional expectation:
/// `E[X·W | W > t] = λ·(t + 1/r)` (independence + memorylessness).
pub fn q4_exact(data: &TpchData, selectivity: f64) -> Vec<f64> {
    data.parts
        .iter()
        .map(|p| {
            let thr = -selectivity.ln() / p.popularity_rate;
            p.sales_rate * (thr + 1.0 / p.popularity_rate)
        })
        .collect()
}

/// PIP evaluation of Q4: per-row conditional expectations (the grouped
/// query — each part is its own group).
pub fn q4_pip(data: &TpchData, selectivity: f64, cfg: &SamplerConfig) -> Result<PerRow> {
    let t0 = Instant::now();
    let table = q4_ctable(data, selectivity)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut estimates = Vec::with_capacity(table.len());
    for (i, row) in table.rows().iter().enumerate() {
        let r = expectation(&row.cells[1], &row.condition, false, cfg, i as u64)?;
        estimates.push(r.expectation);
    }
    Ok(PerRow {
        estimates,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

/// Sample-First evaluation of Q4: conditional means over surviving
/// worlds (NaN when no world survives the popularity filter).
pub fn q4_sf(data: &TpchData, selectivity: f64, n_worlds: usize, seed: u64) -> Result<PerRow> {
    let t0 = Instant::now();
    let ct = q4_ctable(data, selectivity)?;
    let bt = BundleTable::instantiate(&ct, n_worlds, seed)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    // Per-part conditional mean (each part is one bundle; bundles whose
    // presence emptied were dropped by instantiate-time conditions, so
    // re-associate by the deterministic part id).
    let mut estimates = vec![f64::NAN; data.parts.len()];
    let means = sf_agg::conditional_mean(&bt, "sales")?;
    let part_col = bt.col("part")?;
    for (b, m) in bt.bundles().iter().zip(means) {
        let id = b.cells[part_col].as_det()?.as_i64()? as usize;
        estimates[id] = m;
    }
    Ok(PerRow {
        estimates,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

// --------------------------------------------------------------------
// Q5 — expected underproduction where demand exceeds supply (Fig. 7b).
// --------------------------------------------------------------------

/// Q5's c-table: per part, `under = X − S` with `X ~ Poisson(λ)` demand
/// and `S ~ Exponential(1/(20λ))` supply (mean 20λ → `P[X > S] ≈ 0.05`),
/// under the cross-variable condition `X > S` that forces rejection
/// sampling.
pub fn q5_ctable(data: &TpchData) -> Result<CTable> {
    let schema = Schema::of(&[("part", DataType::Int), ("under", DataType::Symbolic)]);
    let mut t = CTable::empty(schema);
    for p in &data.parts {
        let lambda = p.sales_rate;
        let rate = 1.0 / (20.0 * lambda);
        let x = RandomVar::create(builtin::poisson(), &[lambda])?;
        let s = RandomVar::create(builtin::exponential(), &[rate])?;
        t.push(CRow::new(
            vec![
                Equation::val(p.id as i64),
                (Equation::from(x.clone()) - Equation::from(s.clone())).simplify(),
            ],
            Conjunction::single(atoms::gt(Equation::from(x), Equation::from(s))),
        ))?;
    }
    Ok(t)
}

/// Numerically exact reference for Q5 per part:
///
/// `E[X − S | X > S] = Σ_k P[X=k]·(k − (1−e^{−rk})/r) / Σ_k P[X=k]·(1−e^{−rk})`
///
/// (integrating the exponential density over `s < k` in closed form and
/// summing the Poisson mass to `λ + 12√λ + 30`).
pub fn q5_exact(data: &TpchData) -> Vec<f64> {
    data.parts
        .iter()
        .map(|p| {
            let lambda = p.sales_rate;
            let r = 1.0 / (20.0 * lambda);
            let kmax = (lambda + 12.0 * lambda.sqrt() + 30.0) as usize;
            let mut num = 0.0;
            let mut den = 0.0;
            let mut log_pk = -lambda; // ln P[X=0]
            for k in 0..=kmax {
                if k > 0 {
                    log_pk += lambda.ln() - (k as f64).ln();
                }
                let pk = log_pk.exp();
                let kk = k as f64;
                let surv = 1.0 - (-r * kk).exp(); // P[S < k]
                                                  // E[(k − S)·1{S<k}] = k·P[S<k] − E[S·1{S<k}]
                                                  // E[S·1{S<k}] = (1/r)(1 − e^{−rk}) − k·e^{−rk}
                let es = (1.0 / r) * (1.0 - (-r * kk).exp()) - kk * (-r * kk).exp();
                num += pk * (kk * surv - es);
                den += pk * surv;
            }
            if den == 0.0 {
                f64::NAN
            } else {
                num / den
            }
        })
        .collect()
}

/// PIP evaluation of Q5 (rejection sampling: the condition compares two
/// random variables, so no CDF bound applies — paper Fig. 7b setup).
pub fn q5_pip(data: &TpchData, cfg: &SamplerConfig) -> Result<PerRow> {
    let t0 = Instant::now();
    let table = q5_ctable(data)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut estimates = Vec::with_capacity(table.len());
    for (i, row) in table.rows().iter().enumerate() {
        let r = expectation(&row.cells[1], &row.condition, false, cfg, i as u64)?;
        estimates.push(r.expectation);
    }
    Ok(PerRow {
        estimates,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

/// Sample-First evaluation of Q5.
pub fn q5_sf(data: &TpchData, n_worlds: usize, seed: u64) -> Result<PerRow> {
    let t0 = Instant::now();
    let ct = q5_ctable(data)?;
    let bt = BundleTable::instantiate(&ct, n_worlds, seed)?;
    let query_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let mut estimates = vec![f64::NAN; data.parts.len()];
    let means = sf_agg::conditional_mean(&bt, "under")?;
    let part_col = bt.col("part")?;
    for (b, m) in bt.bundles().iter().zip(means) {
        let id = b.cells[part_col].as_det()?.as_i64()? as usize;
        estimates[id] = m;
    }
    Ok(PerRow {
        estimates,
        query_secs,
        sample_secs: t1.elapsed().as_secs_f64(),
    })
}

/// RMS error of per-row estimates against exact values, normalized by
/// the exact value (the metric of Figure 7). NaN estimates (rows with no
/// surviving samples) count as 100% error, matching how a discarded
/// sample-first row has no answer at all.
pub fn normalized_rms(estimates: &[f64], exact: &[f64]) -> f64 {
    assert_eq!(estimates.len(), exact.len());
    let mut acc = 0.0;
    let mut n = 0usize;
    for (&e, &x) in estimates.iter().zip(exact) {
        if x == 0.0 || x.is_nan() {
            continue;
        }
        let rel = if e.is_nan() { 1.0 } else { (e - x) / x };
        acc += rel * rel;
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (acc / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, TpchConfig};

    fn small() -> TpchData {
        generate(&TpchConfig {
            n_customers: 20,
            n_parts: 25,
            n_suppliers: 10,
            seed: 77,
        })
    }

    #[test]
    fn q1_pip_matches_exact_via_linearity() {
        let data = small();
        let cfg = SamplerConfig::default();
        let r = q1_pip(&data, &cfg).unwrap();
        let exact = q1_exact(&data);
        // Linearity-of-expectation path: exact.
        assert!((r.value - exact).abs() < 1e-6, "{} vs {exact}", r.value);
    }

    #[test]
    fn q1_sf_converges() {
        let data = small();
        let exact = q1_exact(&data);
        let r = q1_sf(&data, 3000, 1).unwrap();
        assert!(
            (r.value - exact).abs() / exact < 0.1,
            "{} vs {exact}",
            r.value
        );
    }

    #[test]
    fn q2_pip_and_sf_agree() {
        let data = small();
        let cfg = SamplerConfig::default();
        let p = q2_pip(&data, &cfg, 2000).unwrap();
        let s = q2_sf(&data, 2000, 3).unwrap();
        assert!(
            (p.value - s.value).abs() / p.value.abs().max(1.0) < 0.1,
            "{} vs {}",
            p.value,
            s.value
        );
        // Max delivery must exceed the largest mean delivery.
        let max_mean = data
            .suppliers
            .iter()
            .filter(|s| s.japanese)
            .map(|s| s.mfg_mean + s.ship_mean)
            .fold(0.0, f64::max);
        assert!(p.value >= max_mean, "{} < {max_mean}", p.value);
    }

    #[test]
    fn q3_pip_close_to_exact() {
        let data = small();
        let cfg = SamplerConfig::default();
        let sel = 0.1;
        let r = q3_pip(&data, sel, &cfg).unwrap();
        let exact = q3_exact(&data, sel);
        assert!(
            (r.value - exact).abs() / exact < 0.1,
            "{} vs {exact}",
            r.value
        );
    }

    #[test]
    fn q4_pip_beats_sf_at_equal_samples() {
        let data = small();
        let sel = 0.02;
        let exact = q4_exact(&data, sel);
        let n = 300;
        let pip = q4_pip(&data, sel, &SamplerConfig::fixed_samples(n)).unwrap();
        let sf = q4_sf(&data, sel, n, 5).unwrap();
        let pip_err = normalized_rms(&pip.estimates, &exact);
        let sf_err = normalized_rms(&sf.estimates, &exact);
        // PIP's CDF-bounded sampling uses all n samples; SF has ~n·sel
        // effective samples (and many parts with none at all).
        assert!(
            pip_err < sf_err,
            "PIP err {pip_err} should beat SF err {sf_err}"
        );
        assert!(pip_err < 0.2, "pip_err {pip_err}");
    }

    #[test]
    fn q5_exact_reference_is_positive_and_bounded() {
        let data = small();
        let exact = q5_exact(&data);
        for (p, &e) in data.parts.iter().zip(&exact) {
            assert!(e > 0.0, "part {}: {e}", p.id);
            // Underproduction at most demand itself (roughly λ + tail).
            assert!(e <= p.sales_rate + 12.0 * p.sales_rate.sqrt() + 30.0);
        }
    }

    #[test]
    fn q5_pip_matches_exact_reference() {
        let data = generate(&TpchConfig {
            n_customers: 1,
            n_parts: 6,
            n_suppliers: 1,
            seed: 9,
        });
        let exact = q5_exact(&data);
        let pip = q5_pip(&data, &SamplerConfig::fixed_samples(3000)).unwrap();
        let err = normalized_rms(&pip.estimates, &exact);
        assert!(
            err < 0.15,
            "err {err}, est {:?} vs {exact:?}",
            pip.estimates
        );
    }

    #[test]
    fn normalized_rms_handles_nans() {
        assert!((normalized_rms(&[1.0, f64::NAN], &[1.0, 2.0]) - (0.5f64).sqrt()).abs() < 1e-12);
        assert!(normalized_rms(&[], &[]).is_nan());
        assert_eq!(normalized_rms(&[5.0], &[5.0]), 0.0);
    }
}
