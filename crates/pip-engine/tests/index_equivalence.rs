//! Property suite: secondary-index access paths are invisible except
//! for speed.
//!
//! Under random mutation streams — deterministic tuples, conditional
//! rows, symbolic cells landing in the indexed column — a query routed
//! through `IndexRangeScan`/`IndexNestedLoopJoin` must return exactly
//! the rows (cells *and* conditions) of the pre-index full-scan plan,
//! and its Monte-Carlo estimates must be bit-identical at 1, 2, and 4
//! sampler threads. A crash (reopening the data directory with no
//! clean shutdown) must rebuild the index byte-identically.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use pip_core::{tuple, DataType, Schema, Value};
use pip_ctable::CRow;
use pip_engine::prelude::*;
use pip_engine::OptimizerConfig;
use pip_expr::{atoms, Conjunction, Equation};
use pip_sampling::SamplerConfig;
use proptest::prelude::*;

fn no_index_cfg() -> OptimizerConfig {
    OptimizerConfig {
        use_indexes: false,
        ..OptimizerConfig::default()
    }
}

/// Fresh database with an indexed fact table `t(k INT, v FLOAT)` and a
/// small dimension table `d(dk INT, dv FLOAT)`.
fn indexed_db() -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        Schema::of(&[("k", DataType::Int), ("v", DataType::Float)]),
    )
    .unwrap();
    db.create_table(
        "d",
        Schema::of(&[("dk", DataType::Int), ("dv", DataType::Float)]),
    )
    .unwrap();
    let rows: Vec<_> = (0..6i64).map(|i| tuple![i * 5, i as f64]).collect();
    db.insert_tuples("d", &rows).unwrap();
    db.create_index("idx_k", "t", "k").unwrap();
    db
}

/// One mutation from the random stream, applied to the indexed table:
/// plain tuples, conditional rows with deterministic keys, and rows
/// whose *key cell* is symbolic (which the index must route to its
/// always-candidate list).
fn mutate(db: &Database, m: u64) {
    match m % 5 {
        0 | 1 => db
            .insert_tuples("t", &[tuple![(m % 40) as i64, m as f64 * 0.5]])
            .unwrap(),
        2 => db
            .insert_tuples(
                "t",
                &[
                    tuple![((m * 7) % 40) as i64, -(m as f64)],
                    tuple![((m * 11) % 40) as i64, 0.25],
                ],
            )
            .unwrap(),
        3 => {
            // Conditional row, deterministic key: indexed, but its
            // condition must survive the index path untouched.
            let v = db
                .create_variable("Normal", &[m as f64, 1.0 + (m % 3) as f64])
                .unwrap();
            db.insert_rows(
                "t",
                vec![CRow::new(
                    vec![Equation::val((m % 40) as i64), Equation::from(v.clone())],
                    Conjunction::single(atoms::gt(Equation::from(v), m as f64 - 0.5)),
                )],
            )
            .unwrap();
        }
        _ => {
            // Symbolic key cell: invisible to the ordered entries, so
            // the index must treat the row as an always-candidate.
            let v = db.create_variable("Uniform", &[0.0, 40.0]).unwrap();
            db.insert_rows(
                "t",
                vec![CRow::unconditional(vec![
                    Equation::from(v),
                    Equation::val(m as f64),
                ])],
            )
            .unwrap();
        }
    }
}

/// The two plans under test: a range selection on the indexed column
/// and an index-nested-loop-join candidate probing it.
fn range_plan(lo: i64, hi: i64) -> Plan {
    PlanBuilder::scan("t")
        .select(
            ScalarExpr::col("k")
                .ge(ScalarExpr::lit(lo))
                .and(ScalarExpr::col("k").lt(ScalarExpr::lit(hi))),
        )
        .unwrap()
        .build()
}

fn join_plan() -> Plan {
    PlanBuilder::scan("d")
        .equi_join(PlanBuilder::scan("t"), vec![("dk", "k")])
        .build()
}

/// The forced index twin of [`range_plan`] — same predicate, seeks
/// `idx_k` instead of scanning.
fn forced_index_scan(lo: i64, hi: i64) -> Plan {
    let Plan::Select { predicate, .. } = range_plan(lo, hi) else {
        unreachable!()
    };
    Plan::IndexScan {
        table: "t".into(),
        index: "idx_k".into(),
        column: "k".into(),
        lo: Some((Value::Int(lo), true)),
        hi: Some((Value::Int(hi), false)),
        predicate,
    }
}

/// The forced index twin of [`join_plan`].
fn forced_index_join() -> Plan {
    Plan::IndexJoin {
        left: Box::new(Plan::Scan("d".into())),
        table: "t".into(),
        index: "idx_k".into(),
        on: vec![("dk".into(), "k".into())],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Index-path results are row-identical — same cells, same
    /// conditions, same order — to the full-scan plan, whatever the
    /// mutation history and whether or not statistics were refreshed.
    #[test]
    fn index_paths_match_full_scan_rows(
        stream in prop::collection::vec(0u64..1000, 5..40),
        lo in 0i64..30,
        span in 1i64..15,
        analyze in 0u8..2,
    ) {
        let db = indexed_db();
        for (i, m) in stream.iter().enumerate() {
            mutate(&db, m.wrapping_add(i as u64));
        }
        if analyze == 1 {
            db.analyze_all().unwrap();
        }
        let cfg = SamplerConfig::default();
        // Forced index plans: every case exercises the index operators
        // regardless of what the cost model would pick.
        let pairs = [
            (range_plan(lo, lo + span), forced_index_scan(lo, lo + span)),
            (join_plan(), forced_index_join()),
        ];
        for (logical, forced) in pairs {
            let scan = optimize_with(&db, logical.clone(), &no_index_cfg()).unwrap();
            let a = execute(&db, &scan, &cfg).unwrap();
            let b = execute(&db, &forced, &cfg).unwrap();
            prop_assert_eq!(a, b);
            // And whatever the whole pipeline picks agrees too.
            let chosen = optimize(&db, logical).unwrap();
            let c = execute(&db, &chosen, &cfg).unwrap();
            let a = execute(&db, &scan, &cfg).unwrap();
            prop_assert_eq!(a, c);
        }
    }

    /// Monte-Carlo estimates through the index path are bit-identical
    /// to the full-scan path at 1, 2, and 4 sampler threads.
    #[test]
    fn estimates_bit_identical_across_threads(
        stream in prop::collection::vec(0u64..1000, 10..30),
        lo in 0i64..30,
    ) {
        let db = indexed_db();
        for (i, m) in stream.iter().enumerate() {
            mutate(&db, m.wrapping_add(i as u64));
        }
        db.analyze_all().unwrap();
        let agg = PlanBuilder::scan("t")
            .select(
                ScalarExpr::col("k")
                    .ge(ScalarExpr::lit(lo))
                    .and(ScalarExpr::col("k").lt(ScalarExpr::lit(lo + 8))),
            )
            .unwrap()
            .aggregate(vec![], vec![AggFunc::ExpectedSum("v".into()), AggFunc::ExpectedCount])
            .build();
        let scan = optimize_with(&db, agg.clone(), &no_index_cfg()).unwrap();
        let indexed = optimize(&db, agg).unwrap();
        for threads in [1usize, 2, 4] {
            let cfg = SamplerConfig::default().with_threads(threads);
            let a = execute(&db, &scan, &cfg).unwrap();
            let b = execute(&db, &indexed, &cfg).unwrap();
            let bits = |t: &pip_ctable::CTable| -> Vec<u64> {
                t.rows()
                    .iter()
                    .flat_map(|r| r.cells.iter())
                    .map(|c| {
                        c.as_const()
                            .and_then(|v| v.as_f64().ok())
                            .map_or(u64::MAX, f64::to_bits)
                    })
                    .collect()
            };
            prop_assert_eq!(bits(&a), bits(&b));
        }
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pip-index-eq-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Byte-level index equality: same column, same coverage, same ordered
/// `(key, row)` entries, same always-candidate list.
fn assert_index_bytes_equal(a: &pip_ctable::OrderedIndex, b: &pip_ctable::OrderedIndex) {
    assert_eq!(a.column(), b.column());
    assert_eq!(a.covered_rows(), b.covered_rows());
    assert_eq!(a.entries(), b.entries());
    assert_eq!(a.others(), b.others());
}

/// A crash — the data directory reopened with no clean shutdown, WAL
/// tail and all — rebuilds every index byte-identically, and queries
/// through the recovered index match the pre-crash scan path.
#[test]
fn index_survives_crash_recovery_byte_identically() {
    let dir = tmp_dir("crash");
    let pre = {
        let db = Database::open(&dir).unwrap();
        db.create_table(
            "t",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Float)]),
        )
        .unwrap();
        db.create_table(
            "d",
            Schema::of(&[("dk", DataType::Int), ("dv", DataType::Float)]),
        )
        .unwrap();
        db.create_index("idx_k", "t", "k").unwrap();
        db.create_index("idx_gone", "d", "dk").unwrap();
        db.drop_index("idx_gone").unwrap();
        for m in 0..60 {
            mutate(&db, m * 13 + 1);
        }
        db.index("idx_k").unwrap().index
        // Drop without checkpoint: recovery must come from snapshot+WAL.
    };
    let (db, _info) = Database::recover(&dir).unwrap();
    assert_eq!(db.index_names(), vec!["idx_k".to_string()], "catalog");
    let post = db.index("idx_k").unwrap().index;
    assert_index_bytes_equal(&pre, &post);
    // The recovered index serves the same rows as a full scan.
    let cfg = SamplerConfig::default();
    let scan = optimize_with(&db, range_plan(5, 20), &no_index_cfg()).unwrap();
    assert_eq!(
        execute(&db, &scan, &cfg).unwrap(),
        execute(&db, &forced_index_scan(5, 20), &cfg).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
