//! The PIP query rewriter (paper Section V-A).
//!
//! In the Postgres plugin, CTYPE (condition-typed) expressions appearing
//! in `WHERE` clauses are *moved into the row condition* rather than
//! evaluated as booleans, so deterministic query machinery never sees
//! probabilistic data. This module performs the equivalent step for our
//! engine: it compiles a [`ScalarExpr`] against a row's symbolic cells
//! and splits the result into a statically-known part (filter now) and a
//! symbolic part (atoms to conjoin to the row's condition).

use pip_core::{PipError, Result, Schema};
use pip_expr::{Atom, Equation};

use pip_ctable::SelectOutcome;

use crate::catalog::Database;
use crate::plan::ScalarExpr;

/// Compile a scalar (value) expression into an [`Equation`] over a row's
/// cells. `CREATE_VARIABLE` allocates a fresh variable per invocation.
pub fn compile_scalar(
    expr: &ScalarExpr,
    schema: &Schema,
    cells: &[Equation],
    db: &Database,
) -> Result<Equation> {
    Ok(match expr {
        ScalarExpr::Column(name) => {
            let i = schema.index_of(name)?;
            cells[i].clone()
        }
        ScalarExpr::Literal(v) => Equation::Const(v.clone()),
        ScalarExpr::Var(v) => Equation::Var(v.clone()),
        ScalarExpr::CreateVariable { class, params } => {
            Equation::Var(db.create_variable(class, params)?)
        }
        ScalarExpr::Binary { op, left, right } => Equation::binary(
            *op,
            compile_scalar(left, schema, cells, db)?,
            compile_scalar(right, schema, cells, db)?,
        ),
        ScalarExpr::Neg(e) => compile_scalar(e, schema, cells, db)?.neg(),
        ScalarExpr::Cmp { .. } | ScalarExpr::And(_) => {
            return Err(PipError::Sql(
                "boolean expression used where a value is required".into(),
            ))
        }
    })
}

/// Compile a predicate against a row: the CTYPE hoisting step.
///
/// Deterministic comparisons are decided immediately (`Keep`/`Drop`);
/// comparisons touching random variables become condition atoms.
pub fn compile_predicate(
    pred: &ScalarExpr,
    schema: &Schema,
    cells: &[Equation],
    db: &Database,
) -> Result<SelectOutcome> {
    let mut atoms: Vec<Atom> = Vec::new();
    if !collect_atoms(pred, schema, cells, db, &mut atoms)? {
        return Ok(SelectOutcome::Drop);
    }
    if atoms.is_empty() {
        Ok(SelectOutcome::Keep)
    } else {
        Ok(SelectOutcome::Conditional(atoms))
    }
}

/// Walk a predicate tree; returns `false` when statically refuted.
fn collect_atoms(
    pred: &ScalarExpr,
    schema: &Schema,
    cells: &[Equation],
    db: &Database,
    atoms: &mut Vec<Atom>,
) -> Result<bool> {
    match pred {
        ScalarExpr::And(ps) => {
            for p in ps {
                if !collect_atoms(p, schema, cells, db, atoms)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        ScalarExpr::Cmp { op, left, right } => {
            let l = compile_scalar(left, schema, cells, db)?.simplify();
            let r = compile_scalar(right, schema, cells, db)?.simplify();
            let atom = Atom::new(l, *op, r);
            match atom.const_truth() {
                Some(true) => Ok(true),
                Some(false) => Ok(false),
                None => {
                    atoms.push(atom);
                    Ok(true)
                }
            }
        }
        other => Err(PipError::Sql(format!(
            "unsupported predicate shape: {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{DataType, Value};
    use pip_expr::CmpOp;

    fn setup() -> (Database, Schema, Vec<Equation>) {
        let db = Database::new();
        let schema = Schema::of(&[("name", DataType::Str), ("price", DataType::Symbolic)]);
        let y = db.create_variable("Normal", &[100.0, 10.0]).unwrap();
        let cells = vec![Equation::val(Value::str("Joe")), Equation::from(y)];
        (db, schema, cells)
    }

    #[test]
    fn deterministic_predicate_decided_statically() {
        let (db, schema, cells) = setup();
        let keep = ScalarExpr::col("name").eq(ScalarExpr::lit("Joe"));
        assert_eq!(
            compile_predicate(&keep, &schema, &cells, &db).unwrap(),
            SelectOutcome::Keep
        );
        let drop = ScalarExpr::col("name").eq(ScalarExpr::lit("Bob"));
        assert_eq!(
            compile_predicate(&drop, &schema, &cells, &db).unwrap(),
            SelectOutcome::Drop
        );
    }

    #[test]
    fn symbolic_predicate_hoists_atoms() {
        let (db, schema, cells) = setup();
        let p = ScalarExpr::col("price").ge(ScalarExpr::lit(90.0));
        match compile_predicate(&p, &schema, &cells, &db).unwrap() {
            SelectOutcome::Conditional(atoms) => {
                assert_eq!(atoms.len(), 1);
                assert_eq!(atoms[0].op, CmpOp::Ge);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_and_short_circuits_on_static_false() {
        let (db, schema, cells) = setup();
        let p = ScalarExpr::col("name")
            .eq(ScalarExpr::lit("Bob"))
            .and(ScalarExpr::col("price").ge(ScalarExpr::lit(90.0)));
        assert_eq!(
            compile_predicate(&p, &schema, &cells, &db).unwrap(),
            SelectOutcome::Drop
        );
    }

    #[test]
    fn scalar_compilation_arithmetic() {
        let (db, schema, cells) = setup();
        let e = ScalarExpr::col("price")
            .mul(ScalarExpr::lit(2.0))
            .add(ScalarExpr::lit(1.0));
        let eq = compile_scalar(&e, &schema, &cells, &db).unwrap();
        assert_eq!(eq.variables().len(), 1);
        let bad = ScalarExpr::col("nope");
        assert!(compile_scalar(&bad, &schema, &cells, &db).is_err());
    }

    #[test]
    fn create_variable_allocates_fresh() {
        let (db, schema, cells) = setup();
        let e = ScalarExpr::CreateVariable {
            class: "Exponential".into(),
            params: vec![1.0],
        };
        let a = compile_scalar(&e, &schema, &cells, &db).unwrap();
        let b = compile_scalar(&e, &schema, &cells, &db).unwrap();
        let (va, vb) = (a.variables(), b.variables());
        assert_ne!(va[0].key, vb[0].key, "each evaluation is a new variable");
    }

    #[test]
    fn value_in_boolean_position_rejected() {
        let (db, schema, cells) = setup();
        let e = ScalarExpr::lit(1i64);
        let mut atoms = Vec::new();
        assert!(collect_atoms(&e, &schema, &cells, &db, &mut atoms).is_err());
        let b = ScalarExpr::col("price").gt(ScalarExpr::lit(0.0));
        assert!(compile_scalar(&b, &schema, &cells, &db).is_err());
    }
}
