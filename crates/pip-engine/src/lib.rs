//! # pip-engine
//!
//! The query engine PIP runs on — the role PostgreSQL plays for the
//! paper's plugin (Section V): a catalog of c-tables, logical plans with
//! a fluent builder, an optimizer (predicate + projection pushdown), a
//! pipelined physical executor ([`physical`]) with a materializing
//! reference interpreter beside it, the CTYPE-hoisting rewriter, and a
//! SQL front-end supporting `CREATE TABLE` / `INSERT` / `SELECT` /
//! `EXPLAIN [ANALYZE]` with `create_variable(...)`, `expected_sum`,
//! `expected_count`, `expected_avg`, `expected_max` and `conf()`.

pub mod catalog;
pub mod exec;
pub mod optimize;
pub mod physical;
pub mod plan;
pub mod rewrite;
pub mod sql;

pub use catalog::Database;
pub use exec::{
    execute, execute_materialized, execute_materialized_with_stats, execute_with_stats,
    scalar_result, QueryStats,
};
pub use optimize::{optimize, plan_schema};
pub use physical::{lower, OpProfile, PhysicalPlan};
pub use plan::{AggFunc, Plan, PlanBuilder, ScalarExpr};
pub use rewrite::{compile_predicate, compile_scalar};

/// Glob-import surface.
pub mod prelude {
    pub use crate::catalog::Database;
    pub use crate::exec::{
        execute, execute_materialized, execute_materialized_with_stats, execute_with_stats,
        scalar_result, QueryStats,
    };
    pub use crate::optimize::{optimize, plan_schema};
    pub use crate::physical::{lower, OpProfile, PhysicalPlan};
    pub use crate::plan::{AggFunc, Plan, PlanBuilder, ScalarExpr};
    pub use crate::sql;
}
