//! # pip-engine
//!
//! The query engine PIP runs on — the role PostgreSQL plays for the
//! paper's plugin (Section V): a catalog of c-tables with optimizer
//! statistics, logical plans with a fluent builder, a cost-based
//! optimizer ([`optimize`] — predicate pushdown, cardinality-driven
//! join reordering, cost-gated projection pushdown over the [`stats`]
//! layer), a pipelined physical executor ([`physical`]) with a
//! materializing reference interpreter beside it, the CTYPE-hoisting
//! rewriter, and a SQL front-end supporting `CREATE TABLE` / `INSERT` /
//! `SELECT` / `ANALYZE` / `EXPLAIN [ANALYZE] [(FORMAT JSON)]` with
//! `create_variable(...)`, `expected_sum`, `expected_count`,
//! `expected_avg`, `expected_max` and `conf()`.

pub mod catalog;
pub mod exec;
pub mod metrics;
pub mod optimize;
pub mod persist;
pub mod physical;
pub mod plan;
pub mod rewrite;
pub mod sql;
pub mod stats;

pub use catalog::{Database, RecoveryInfo};
pub use metrics::EngineMetrics;
// The durability knob travels with the catalog API.
pub use exec::{
    execute, execute_materialized, execute_materialized_with_stats, execute_with_stats,
    scalar_result, QueryStats,
};
pub use optimize::{
    optimize, optimize_with, plan_schema, push_selects, OptimizerConfig, PruneMode,
};
pub use physical::{lower, lower_annotated, OpProfile, PhysicalPlan};
pub use pip_store::Durability;
pub use plan::{AggFunc, Plan, PlanBuilder, ScalarExpr};
pub use rewrite::{compile_predicate, compile_scalar};
pub use stats::{estimate, plan_cost, ColumnStats, CostModel, ExecTarget, PlanEst, TableStats};

/// Glob-import surface.
pub mod prelude {
    pub use crate::catalog::Database;
    pub use crate::exec::{
        execute, execute_materialized, execute_materialized_with_stats, execute_with_stats,
        scalar_result, QueryStats,
    };
    pub use crate::optimize::{
        optimize, optimize_with, plan_schema, push_selects, OptimizerConfig, PruneMode,
    };
    pub use crate::physical::{lower, lower_annotated, OpProfile, PhysicalPlan};
    pub use crate::plan::{AggFunc, Plan, PlanBuilder, ScalarExpr};
    pub use crate::sql;
    pub use crate::stats::{
        estimate, plan_cost, ColumnStats, CostModel, ExecTarget, PlanEst, TableStats,
    };
}
