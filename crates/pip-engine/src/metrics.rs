//! Engine-level metric handles, one set per [`crate::Database`].
//!
//! Registered into the database's own [`pip_obs::Registry`] so that two
//! databases in one process (tests, embedded uses) never share counters.
//! The hot-path cost is a handful of relaxed atomic ops per query; phase
//! histograms are gated by the global observability switch.

use crate::plan::Plan;
use pip_obs::{Counter, Histogram, Registry};
use std::sync::Arc;

#[derive(Debug)]
pub struct EngineMetrics {
    /// SELECTs executed through the pipelined executor.
    pub queries_total: Arc<Counter>,
    /// Logical catalog mutations (DDL + DML) applied.
    pub mutations_total: Arc<Counter>,
    /// SQL text parse latency (recorded by front-ends that parse).
    pub parse_seconds: Arc<Histogram>,
    /// Optimizer latency (full pipeline: pushdown, reorder, access paths).
    pub optimize_seconds: Arc<Histogram>,
    /// Symbolic (relational algebra) phase latency per query.
    pub query_phase_seconds: Arc<Histogram>,
    /// Sampling/integration phase latency per query.
    pub sample_phase_seconds: Arc<Histogram>,
    /// Optimizer access-path choices in final plans, by leaf kind.
    pub access_table_scan_total: Arc<Counter>,
    pub access_index_scan_total: Arc<Counter>,
    pub access_index_join_total: Arc<Counter>,
}

impl EngineMetrics {
    pub fn register(r: &Registry) -> EngineMetrics {
        EngineMetrics {
            queries_total: r.counter(
                "pip_engine_queries_total",
                "SELECT statements executed by the pipelined executor.",
            ),
            mutations_total: r.counter(
                "pip_engine_mutations_total",
                "Logical catalog mutations (DDL and DML) applied.",
            ),
            parse_seconds: r.histogram("pip_engine_parse_seconds", "SQL parse latency."),
            optimize_seconds: r.histogram(
                "pip_engine_optimize_seconds",
                "Optimizer latency (pushdown, join reorder, access paths, pruning).",
            ),
            query_phase_seconds: r.histogram(
                "pip_engine_query_phase_seconds",
                "Symbolic (relational algebra) phase latency per query.",
            ),
            sample_phase_seconds: r.histogram(
                "pip_engine_sample_phase_seconds",
                "Sampling/integration phase latency per query.",
            ),
            access_table_scan_total: r.counter(
                "pip_engine_access_path_table_scan_total",
                "Optimized plans' base-table scan leaves.",
            ),
            access_index_scan_total: r.counter(
                "pip_engine_access_path_index_scan_total",
                "Optimized plans' index-scan leaves.",
            ),
            access_index_join_total: r.counter(
                "pip_engine_access_path_index_join_total",
                "Optimized plans' index-join operators.",
            ),
        }
    }

    /// Count the access paths the optimizer settled on in a final plan.
    pub fn note_plan(&self, plan: &Plan) {
        if !pip_obs::enabled() {
            return;
        }
        let mut scans = 0u64;
        let mut index_scans = 0u64;
        let mut index_joins = 0u64;
        walk(plan, &mut scans, &mut index_scans, &mut index_joins);
        if scans > 0 {
            self.access_table_scan_total.add(scans);
        }
        if index_scans > 0 {
            self.access_index_scan_total.add(index_scans);
        }
        if index_joins > 0 {
            self.access_index_join_total.add(index_joins);
        }
    }
}

fn walk(plan: &Plan, scans: &mut u64, index_scans: &mut u64, index_joins: &mut u64) {
    match plan {
        Plan::Scan(_) => *scans += 1,
        Plan::IndexScan { .. } => *index_scans += 1,
        Plan::IndexJoin { left, .. } => {
            *index_joins += 1;
            walk(left, scans, index_scans, index_joins);
        }
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => walk(input, scans, index_scans, index_joins),
        Plan::Distinct(input) | Plan::Conf(input) => walk(input, scans, index_scans, index_joins),
        Plan::Aggregate { input, .. } => walk(input, scans, index_scans, index_joins),
        Plan::Product { left, right }
        | Plan::EquiJoin { left, right, .. }
        | Plan::Union { left, right }
        | Plan::Difference { left, right } => {
            walk(left, scans, index_scans, index_joins);
            walk(right, scans, index_scans, index_joins);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;

    #[test]
    fn note_plan_counts_leaves() {
        let r = Registry::new();
        let m = EngineMetrics::register(&r);
        let plan = PlanBuilder::scan("a")
            .product(PlanBuilder::scan("b"))
            .build();
        m.note_plan(&plan);
        assert_eq!(m.access_table_scan_total.get(), 2);
        assert_eq!(m.access_index_scan_total.get(), 0);
    }
}
