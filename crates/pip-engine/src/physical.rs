//! The pipelined physical execution layer.
//!
//! [`lower`] turns an optimized logical [`Plan`] into a tree of
//! pull-based physical operators (the Volcano iterator model): each
//! operator yields one [`CRow`] per [`PhysicalPlan::next_row`] call, so
//! `Scan → Filter → Project → Join` pipelines never materialize
//! intermediate c-tables and base tables are read through shared
//! [`Arc`] snapshots rather than cloned. Lowering fuses adjacent
//! `Select`/`Project` nodes into a single [`Fused` stage](StageOp) and
//! compiles `EquiJoin` to a build/probe hash join.
//!
//! Operators that genuinely need their whole input — `distinct`,
//! `difference`, `sort`, and the group-by sampling head — buffer it and
//! delegate to the same [`pip_ctable::algebra`] / sampling-head code the
//! materializing executor uses, which is what keeps the two executors
//! row-for-row and bit-for-bit equivalent (asserted by
//! `tests/physical_equivalence.rs`). The row-level `conf()` head streams
//! in fixed-size waves via [`pip_sampling::ConfStream`].
//!
//! Every operator tracks rows-out and inclusive wall time; the driver
//! surfaces them through [`OpProfile`] and `EXPLAIN ANALYZE`.
//!
//! One caveat, shared with all pipelined engines: `CREATE_VARIABLE` in
//! *multiple* pipeline stages of one plan allocates fresh variables in
//! per-row (pipelined) order rather than per-operator (materialized)
//! order. The result tables are distributionally identical but the
//! opaque variable keys can differ from the materializing executor's.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use pip_core::{PipError, Result, Schema, Value};
use pip_expr::{Atom, Equation};

use pip_ctable::{algebra, filter_row, join_rows, map_row, CRow, CTable, OrderedIndex};
use pip_sampling::parallel::ParallelSampler;
use pip_sampling::{ConfStream, SamplerConfig, StreamingGroups};

use crate::catalog::Database;
use crate::exec::{aggregate_schema, group_head_rows, output_type, project_cell};
use crate::plan::{AggFunc, Plan, ScalarExpr};
use crate::rewrite::compile_predicate;

/// Execution profile of one physical operator (inclusive timings).
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Operator label as rendered by EXPLAIN.
    pub name: String,
    /// Depth in the operator tree (root = 0).
    pub depth: usize,
    /// Optimizer cardinality estimate for the operator's output (`None`
    /// when estimation failed, e.g. statistics were unavailable).
    pub est_rows: Option<f64>,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Wall time inside the operator, including its children.
    pub secs: f64,
    /// Wall time minus the children's share (the operator's own work).
    pub exclusive_secs: f64,
    /// True for sampling heads (aggregate / conf): their exclusive time
    /// is the query's sample phase.
    pub sampling: bool,
}

/// A pull-based physical operator body. State and profiling live in the
/// wrapping [`OpNode`]; implementations only produce rows.
trait Operator<'a> {
    fn next(&mut self) -> Result<Option<CRow>>;
    fn children(&self) -> Vec<&OpNode<'a>>;
}

/// One node of the physical tree: an operator plus its schema, label,
/// and execution counters.
pub struct OpNode<'a> {
    op: Box<dyn Operator<'a> + 'a>,
    schema: Schema,
    label: String,
    sampling: bool,
    est_rows: Option<f64>,
    rows_out: u64,
    secs: f64,
}

impl<'a> OpNode<'a> {
    fn new(
        op: impl Operator<'a> + 'a,
        schema: Schema,
        label: impl Into<String>,
        sampling: bool,
    ) -> Self {
        OpNode {
            op: Box::new(op),
            schema,
            label: label.into(),
            sampling,
            est_rows: None,
            rows_out: 0,
            secs: 0.0,
        }
    }

    /// Pull the next row, accounting rows-out and inclusive wall time.
    pub fn next_row(&mut self) -> Result<Option<CRow>> {
        let t0 = Instant::now();
        let out = self.op.next();
        self.secs += t0.elapsed().as_secs_f64();
        if let Ok(Some(_)) = &out {
            self.rows_out += 1;
        }
        out
    }

    /// The operator's output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn profile_into(&self, depth: usize, out: &mut Vec<OpProfile>) {
        let children = self.op.children();
        let child_secs: f64 = children.iter().map(|c| c.secs).sum();
        out.push(OpProfile {
            name: self.label.clone(),
            depth,
            est_rows: self.est_rows,
            rows_out: self.rows_out,
            secs: self.secs,
            exclusive_secs: (self.secs - child_secs).max(0.0),
            sampling: self.sampling,
        });
        for c in children {
            c.profile_into(depth + 1, out);
        }
    }
}

/// An executable physical plan: the operator tree plus driver surface.
pub struct PhysicalPlan<'a> {
    root: OpNode<'a>,
}

impl<'a> PhysicalPlan<'a> {
    /// The result schema.
    pub fn schema(&self) -> &Schema {
        self.root.schema()
    }

    /// Pull the next result row (`None` when the stream is exhausted).
    pub fn next_row(&mut self) -> Result<Option<CRow>> {
        self.root.next_row()
    }

    /// Drain the stream into a materialized result table.
    pub fn collect(&mut self) -> Result<CTable> {
        let mut out = CTable::empty(self.schema().clone());
        while let Some(row) = self.next_row()? {
            out.push(row)?;
        }
        Ok(out)
    }

    /// Per-operator profiles in pre-order (root first).
    pub fn profiles(&self) -> Vec<OpProfile> {
        let mut out = Vec::new();
        self.root.profile_into(0, &mut out);
        out
    }

    /// Render the physical tree with the optimizer's cardinality
    /// estimates (present when lowered via [`lower_annotated`]); with
    /// `analyze`, append each operator's actual rows-out, inclusive
    /// (`total`) and exclusive (`self`) wall time (call after
    /// draining).
    pub fn explain(&self, analyze: bool) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for p in self.profiles() {
            let pad = "  ".repeat(p.depth);
            let mut parts: Vec<String> = Vec::new();
            if let Some(e) = p.est_rows {
                parts.push(format!("est_rows={e:.0}"));
            }
            if analyze {
                parts.push(format!("rows={}", p.rows_out));
                parts.push(format!("total={:.6}s", p.secs));
                parts.push(format!("self={:.6}s", p.exclusive_secs));
            }
            if parts.is_empty() {
                let _ = writeln!(s, "{pad}{}", p.name);
            } else {
                let _ = writeln!(s, "{pad}{} ({})", p.name, parts.join(", "));
            }
        }
        s
    }
}

/// Lower an (ideally already optimized) logical plan to a physical
/// operator tree over `db`.
pub fn lower<'a>(db: &'a Database, plan: &Plan, cfg: &SamplerConfig) -> Result<PhysicalPlan<'a>> {
    Ok(PhysicalPlan {
        root: build(db, plan, cfg, false)?,
    })
}

/// [`lower`], with every operator annotated with the optimizer's
/// cardinality estimate for its logical source node (the EXPLAIN path;
/// the plain execute path skips the extra estimator walks).
pub fn lower_annotated<'a>(
    db: &'a Database,
    plan: &Plan,
    cfg: &SamplerConfig,
) -> Result<PhysicalPlan<'a>> {
    Ok(PhysicalPlan {
        root: build(db, plan, cfg, true)?,
    })
}

// ---------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------

/// A fused per-row transform inside one pipeline stage.
enum Transform {
    /// σ — CTYPE-hoisting filter over the stage's current schema.
    Filter {
        predicate: ScalarExpr,
        schema: Schema,
    },
    /// π — generalized projection (computed cells).
    Map {
        exprs: Vec<(String, ScalarExpr)>,
        in_schema: Schema,
    },
}

impl Transform {
    fn label(&self) -> String {
        match self {
            Transform::Filter { predicate, .. } => format!("Filter: {predicate:?}"),
            Transform::Map { exprs, .. } => {
                let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                format!("Project: [{}]", names.join(", "))
            }
        }
    }
}

/// Build one operator node; with `annotate`, attach the optimizer's
/// cardinality estimate for its logical source node (best effort —
/// estimation failures leave the annotation empty, never fail the
/// query).
fn build<'a>(
    db: &'a Database,
    plan: &Plan,
    cfg: &SamplerConfig,
    annotate: bool,
) -> Result<OpNode<'a>> {
    let mut node = build_op(db, plan, cfg, annotate)?;
    if annotate {
        node.est_rows = crate::stats::estimate(db, plan).ok().map(|e| e.rows);
    }
    Ok(node)
}

fn build_op<'a>(
    db: &'a Database,
    plan: &Plan,
    cfg: &SamplerConfig,
    annotate: bool,
) -> Result<OpNode<'a>> {
    match plan {
        Plan::Scan(name) => {
            let table = db.table(name)?;
            let schema = table.schema().clone();
            Ok(OpNode::new(
                ScanOp { table, idx: 0 },
                schema,
                format!("Scan: {name}"),
                false,
            ))
        }
        Plan::IndexScan {
            table,
            index,
            column,
            lo,
            hi,
            predicate,
        } => {
            let t = db.table(table)?;
            let entry = db
                .index(index)
                .ok_or_else(|| PipError::NotFound(format!("index '{index}'")))?;
            let schema = t.schema().clone();
            // Seek once at lowering time against the pinned snapshot.
            // The candidate list is a superset of the matching rows in
            // ascending row order; rows past the index watermark (a
            // snapshot racing an insert) are appended as candidates and
            // ids past the table length are dropped — the residual
            // predicate below decides every candidate either way.
            let mut ids = entry.index.seek(lo.as_ref(), hi.as_ref());
            ids.retain(|&id| (id as usize) < t.len());
            ids.extend((entry.index.covered_rows() as usize..t.len()).map(|i| i as u32));
            let label = format!(
                "IndexRangeScan: {table} via {index} ({})",
                bound_label(column, lo, hi)
            );
            Ok(OpNode::new(
                IndexRangeScanOp {
                    table: t,
                    db,
                    predicate: predicate.clone(),
                    schema: schema.clone(),
                    ids,
                    pos: 0,
                },
                schema,
                label,
                false,
            ))
        }
        Plan::IndexJoin {
            left,
            table,
            index,
            on,
        } => {
            let l = build(db, left, cfg, annotate)?;
            let t = db.table(table)?;
            let entry = db
                .index(index)
                .ok_or_else(|| PipError::NotFound(format!("index '{index}'")))?;
            let l_key = on
                .iter()
                .map(|(a, _)| l.schema().index_of(a))
                .collect::<Result<Vec<_>>>()?;
            let r_key = on
                .iter()
                .map(|(_, b)| t.schema().index_of(b))
                .collect::<Result<Vec<_>>>()?;
            let seek_pair = on
                .iter()
                .position(|(_, b)| b == &entry.column)
                .ok_or_else(|| {
                    PipError::Schema(format!(
                        "index '{index}' on column '{}' serves no key of the join",
                        entry.column
                    ))
                })?;
            let schema = l.schema().join(t.schema())?;
            let pairs: Vec<String> = on.iter().map(|(a, b)| format!("{a}={b}")).collect();
            let tail: Vec<u32> = (entry.index.covered_rows() as usize..t.len())
                .map(|i| i as u32)
                .collect();
            Ok(OpNode::new(
                IndexNestedLoopJoinOp {
                    left: l,
                    table: t,
                    index: Arc::clone(&entry.index),
                    l_key,
                    r_key,
                    seek_pair,
                    tail,
                    probe: None,
                    candidates: Candidates::List(Vec::new()),
                    cand_pos: 0,
                },
                schema,
                format!(
                    "IndexNestedLoopJoin: {} (probe={table} via {index})",
                    pairs.join(" AND ")
                ),
                false,
            ))
        }
        Plan::Select { .. } | Plan::Project { .. } => {
            // Walk the maximal Select/Project chain and fuse it into one
            // stage (innermost transform first).
            let mut chain: Vec<&Plan> = Vec::new();
            let mut cur = plan;
            while let Plan::Select { input, .. } | Plan::Project { input, .. } = cur {
                chain.push(cur);
                cur = input;
            }
            let input = build(db, cur, cfg, annotate)?;
            let mut schema = input.schema().clone();
            let mut transforms = Vec::with_capacity(chain.len());
            for node in chain.into_iter().rev() {
                match node {
                    Plan::Select { predicate, .. } => transforms.push(Transform::Filter {
                        predicate: predicate.clone(),
                        schema: schema.clone(),
                    }),
                    Plan::Project { exprs, .. } => {
                        let out_schema = Schema::new(
                            exprs
                                .iter()
                                .map(|(n, e)| {
                                    pip_core::Column::new(n.clone(), output_type(e, &schema))
                                })
                                .collect(),
                        )?;
                        transforms.push(Transform::Map {
                            exprs: exprs.clone(),
                            in_schema: schema.clone(),
                        });
                        schema = out_schema;
                    }
                    _ => unreachable!("chain holds only Select/Project"),
                }
            }
            let label = if transforms.len() == 1 {
                transforms[0].label()
            } else {
                format!(
                    "Fused: {}",
                    transforms
                        .iter()
                        .map(Transform::label)
                        .collect::<Vec<_>>()
                        .join(" → ")
                )
            };
            Ok(OpNode::new(
                StageOp {
                    input,
                    db,
                    transforms,
                },
                schema,
                label,
                false,
            ))
        }
        Plan::Product { left, right } => {
            let l = build(db, left, cfg, annotate)?;
            let r = build(db, right, cfg, annotate)?;
            let schema = l.schema().join(r.schema())?;
            Ok(OpNode::new(
                ProductOp {
                    left: l,
                    right: r,
                    right_rows: None,
                    current: None,
                    r_idx: 0,
                },
                schema,
                "Product",
                false,
            ))
        }
        Plan::EquiJoin { left, right, on } => {
            let l = build(db, left, cfg, annotate)?;
            let r = build(db, right, cfg, annotate)?;
            let l_key = on
                .iter()
                .map(|(a, _)| l.schema().index_of(a))
                .collect::<Result<Vec<_>>>()?;
            let r_key = on
                .iter()
                .map(|(_, b)| r.schema().index_of(b))
                .collect::<Result<Vec<_>>>()?;
            let schema = l.schema().join(r.schema())?;
            let pairs: Vec<String> = on.iter().map(|(a, b)| format!("{a}={b}")).collect();
            Ok(OpNode::new(
                HashJoinOp {
                    left: l,
                    right: r,
                    l_key,
                    r_key,
                    build: None,
                    probe: None,
                    candidates: Candidates::List(Vec::new()),
                    cand_pos: 0,
                },
                schema,
                format!("HashJoin: {} (build=right)", pairs.join(" AND ")),
                false,
            ))
        }
        Plan::Union { left, right } => {
            let l = build(db, left, cfg, annotate)?;
            let r = build(db, right, cfg, annotate)?;
            if l.schema().len() != r.schema().len() {
                return Err(PipError::Schema(format!(
                    "union arity mismatch: {} vs {}",
                    l.schema().len(),
                    r.schema().len()
                )));
            }
            let schema = l.schema().clone();
            Ok(OpNode::new(
                UnionOp {
                    left: l,
                    right: r,
                    on_right: false,
                },
                schema,
                "Union",
                false,
            ))
        }
        Plan::Distinct(input) => {
            let input = build(db, input, cfg, annotate)?;
            let schema = input.schema().clone();
            Ok(OpNode::new(
                DistinctOp {
                    input,
                    out: Replay::default(),
                },
                schema,
                "Distinct",
                false,
            ))
        }
        Plan::Difference { left, right } => {
            let l = build(db, left, cfg, annotate)?;
            let r = build(db, right, cfg, annotate)?;
            if l.schema().len() != r.schema().len() {
                return Err(PipError::Schema(format!(
                    "difference arity mismatch: {} vs {}",
                    l.schema().len(),
                    r.schema().len()
                )));
            }
            let schema = l.schema().clone();
            Ok(OpNode::new(
                DifferenceOp {
                    left: l,
                    right: r,
                    out: Replay::default(),
                },
                schema,
                "Difference",
                false,
            ))
        }
        Plan::Sort { input, keys } => {
            let input = build(db, input, cfg, annotate)?;
            let idx = keys
                .iter()
                .map(|(c, d)| Ok((input.schema().index_of(c)?, *d)))
                .collect::<Result<Vec<_>>>()?;
            let schema = input.schema().clone();
            let ks: Vec<String> = keys
                .iter()
                .map(|(c, d)| format!("{c}{}", if *d { " DESC" } else { "" }))
                .collect();
            Ok(OpNode::new(
                SortOp {
                    input,
                    keys: idx,
                    out: Replay::default(),
                },
                schema,
                format!("Sort: [{}]", ks.join(", ")),
                false,
            ))
        }
        Plan::Limit { input, n } => {
            let input = build(db, input, cfg, annotate)?;
            let schema = input.schema().clone();
            Ok(OpNode::new(
                LimitOp {
                    input,
                    n: *n,
                    emitted: 0,
                },
                schema,
                format!("Limit: {n}"),
                false,
            ))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let input = build(db, input, cfg, annotate)?;
            let schema = aggregate_schema(input.schema(), group_by, aggs)?;
            let names: Vec<String> = aggs.iter().map(|a| a.output_name()).collect();
            Ok(OpNode::new(
                AggregateOp {
                    input,
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                    cfg: cfg.clone(),
                    out: Replay::default(),
                },
                schema,
                format!(
                    "Aggregate: [{}] group by [{}]",
                    names.join(", "),
                    group_by.join(", ")
                ),
                true,
            ))
        }
        Plan::Conf(input) => {
            let input = build(db, input, cfg, annotate)?;
            let mut cols = input.schema().columns().to_vec();
            cols.push(pip_core::Column::new("conf()", pip_core::DataType::Float));
            let schema = Schema::new(cols)?;
            Ok(OpNode::new(
                ConfOp {
                    input,
                    stream: ConfStream::new(cfg, ParallelSampler::global()),
                    out: std::collections::VecDeque::new(),
                    done: false,
                },
                schema,
                "Conf",
                true,
            ))
        }
    }
}

// ---------------------------------------------------------------------
// Operators.
// ---------------------------------------------------------------------

/// Zero-copy base-table scan: rows stream out of the shared catalog
/// snapshot; the table itself is never cloned.
struct ScanOp {
    table: Arc<CTable>,
    idx: usize,
}

impl<'a> Operator<'a> for ScanOp {
    fn next(&mut self) -> Result<Option<CRow>> {
        let row = self.table.rows().get(self.idx).cloned();
        self.idx += row.is_some() as usize;
        Ok(row)
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        Vec::new()
    }
}

/// Render the seek range of an index scan for EXPLAIN.
fn bound_label(column: &str, lo: &Option<(Value, bool)>, hi: &Option<(Value, bool)>) -> String {
    match (lo, hi) {
        (None, None) => format!("{column} unbounded"),
        (Some((v, inc)), None) => format!("{column} {} {v}", if *inc { ">=" } else { ">" }),
        (None, Some((v, inc))) => format!("{column} {} {v}", if *inc { "<=" } else { "<" }),
        (Some((lv, li)), Some((hv, hi_inc))) => format!(
            "{lv} {} {column} {} {hv}",
            if *li { "<=" } else { "<" },
            if *hi_inc { "<=" } else { "<" }
        ),
    }
}

/// Index-driven base-table access: candidate rows come from one ordered
/// seek (ascending row order, symbolic cells always included), then the
/// *full* predicate re-decides every candidate — semantically identical
/// to `Filter(Scan)`, row-for-row and condition-for-condition, just
/// skipping rows the index proves cannot match.
struct IndexRangeScanOp<'a> {
    table: Arc<CTable>,
    db: &'a Database,
    predicate: ScalarExpr,
    schema: Schema,
    ids: Vec<u32>,
    pos: usize,
}

impl<'a> Operator<'a> for IndexRangeScanOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        while let Some(&id) = self.ids.get(self.pos) {
            self.pos += 1;
            let row = self.table.rows()[id as usize].clone();
            let outcome = compile_predicate(&self.predicate, &self.schema, &row.cells, self.db)?;
            if let Some(r) = filter_row(row, outcome) {
                return Ok(Some(r));
            }
        }
        Ok(None)
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        Vec::new()
    }
}

/// Index nested-loop join: for every probe (left) row, candidate base
/// rows come from an equality seek on the indexed key column instead of
/// a hash bucket. Candidates arrive in ascending base order with the
/// symbolic-key rows merged in — the same candidate set and order a
/// [`HashJoinOp`] would visit — and every key pair is then re-decided
/// exactly as the hash join does (const keys filter, symbolic keys
/// hoist equality atoms), so the output is bit-identical.
struct IndexNestedLoopJoinOp<'a> {
    left: OpNode<'a>,
    table: Arc<CTable>,
    index: Arc<OrderedIndex>,
    l_key: Vec<usize>,
    r_key: Vec<usize>,
    /// Which `on` pair the index serves.
    seek_pair: usize,
    /// Base rows past the index watermark (snapshot skew): always
    /// candidates, decided by the key checks like any other row.
    tail: Vec<u32>,
    probe: Option<CRow>,
    candidates: Candidates,
    cand_pos: usize,
}

impl IndexNestedLoopJoinOp<'_> {
    /// Candidate base-row indices for `probe`, ascending.
    fn candidates_for(&self, probe: &CRow) -> Candidates {
        match probe.cells[self.l_key[self.seek_pair]].as_const() {
            None => Candidates::All(self.table.len()),
            Some(key) => {
                let mut ids = self.index.equal_candidates(key);
                ids.extend_from_slice(&self.tail);
                ids.retain(|&id| (id as usize) < self.table.len());
                Candidates::List(ids.into_iter().map(|id| id as usize).collect())
            }
        }
    }
}

impl<'a> Operator<'a> for IndexNestedLoopJoinOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        loop {
            if self.probe.is_none() {
                self.probe = self.left.next_row()?;
                match &self.probe {
                    None => return Ok(None),
                    Some(p) => {
                        self.candidates = self.candidates_for(p);
                        self.cand_pos = 0;
                    }
                }
            }
            let probe = self.probe.as_ref().expect("checked");
            'cands: while let Some(idx) = self.candidates.get(self.cand_pos) {
                let r = &self.table.rows()[idx];
                self.cand_pos += 1;
                // Conjoin conditions first (product), then decide keys
                // (select) — mirroring HashJoinOp exactly.
                let Some(joined) = join_rows(probe, r) else {
                    continue;
                };
                let mut atoms: Vec<Atom> = Vec::new();
                for (&li, &ri) in self.l_key.iter().zip(&self.r_key) {
                    let (l, rc) = (&probe.cells[li], &r.cells[ri]);
                    match (l.as_const(), rc.as_const()) {
                        (Some(a), Some(b)) => {
                            if !a.sql_eq(b) {
                                continue 'cands;
                            }
                        }
                        _ => atoms.push(Atom::new(l.clone(), pip_expr::CmpOp::Eq, rc.clone())),
                    }
                }
                let out = if atoms.is_empty() {
                    Some(joined)
                } else {
                    filter_row(joined, algebra::SelectOutcome::Conditional(atoms))
                };
                if let Some(row) = out {
                    return Ok(Some(row));
                }
            }
            self.probe = None;
        }
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.left]
    }
}

/// A fused pipeline stage: any run of filters and projections applied
/// per row, with no operator boundary (and no intermediate table)
/// between them.
struct StageOp<'a> {
    input: OpNode<'a>,
    db: &'a Database,
    transforms: Vec<Transform>,
}

impl<'a> Operator<'a> for StageOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        'rows: while let Some(mut row) = self.input.next_row()? {
            for t in &self.transforms {
                match t {
                    Transform::Filter { predicate, schema } => {
                        let outcome = compile_predicate(predicate, schema, &row.cells, self.db)?;
                        match filter_row(row, outcome) {
                            Some(r) => row = r,
                            None => continue 'rows,
                        }
                    }
                    Transform::Map { exprs, in_schema } => {
                        let cells = exprs
                            .iter()
                            .map(|(_, e)| project_cell(e, in_schema, &row.cells, self.db))
                            .collect::<Result<Vec<Equation>>>()?;
                        row = map_row(&row, cells);
                    }
                }
            }
            return Ok(Some(row));
        }
        Ok(None)
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.input]
    }
}

/// × — streams the left input, buffering the right side once.
struct ProductOp<'a> {
    left: OpNode<'a>,
    right: OpNode<'a>,
    right_rows: Option<Vec<CRow>>,
    current: Option<CRow>,
    r_idx: usize,
}

impl<'a> ProductOp<'a> {
    fn right_rows(&mut self) -> Result<&[CRow]> {
        if self.right_rows.is_none() {
            let mut rows = Vec::new();
            while let Some(r) = self.right.next_row()? {
                rows.push(r);
            }
            self.right_rows = Some(rows);
        }
        Ok(self.right_rows.as_deref().expect("just built"))
    }
}

impl<'a> Operator<'a> for ProductOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        self.right_rows()?;
        loop {
            if self.current.is_none() {
                self.current = self.left.next_row()?;
                self.r_idx = 0;
                if self.current.is_none() {
                    return Ok(None);
                }
            }
            let right = self.right_rows.as_deref().expect("built above");
            let l = self.current.as_ref().expect("checked");
            while self.r_idx < right.len() {
                let r = &right[self.r_idx];
                self.r_idx += 1;
                if let Some(row) = join_rows(l, r) {
                    return Ok(Some(row));
                }
            }
            self.current = None;
        }
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.left, &self.right]
    }
}

/// Build-side index of the hash join: rows whose key cells are all
/// constants live in hash buckets; rows with any symbolic key cell must
/// be probed pairwise (their equality becomes a condition atom).
struct JoinBuild {
    rows: Vec<CRow>,
    buckets: HashMap<Vec<Value>, Vec<usize>>,
    symbolic: Vec<usize>,
}

/// Equi-join as build (right) / probe (left) hash join.
///
/// For every probe row, candidate build rows are visited in build order
/// — hash-bucket matches merged with the symbolic-key rows — so the
/// output ordering (and every row condition) is identical to the
/// product-then-select definition the materializing executor runs.
struct HashJoinOp<'a> {
    left: OpNode<'a>,
    right: OpNode<'a>,
    l_key: Vec<usize>,
    r_key: Vec<usize>,
    build: Option<JoinBuild>,
    probe: Option<CRow>,
    candidates: Candidates,
    cand_pos: usize,
}

/// Candidate build rows for one probe row, in build order.
enum Candidates {
    /// Every build row (the probe key has a symbolic cell).
    All(usize),
    /// An explicit ascending index list (bucket merged with the
    /// symbolic-key rows).
    List(Vec<usize>),
}

impl Candidates {
    fn get(&self, pos: usize) -> Option<usize> {
        match self {
            Candidates::All(n) => (pos < *n).then_some(pos),
            Candidates::List(v) => v.get(pos).copied(),
        }
    }
}

impl<'a> HashJoinOp<'a> {
    fn build_side(&mut self) -> Result<()> {
        if self.build.is_some() {
            return Ok(());
        }
        let mut rows = Vec::new();
        while let Some(r) = self.right.next_row()? {
            rows.push(r);
        }
        let mut buckets: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        let mut symbolic = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            let key: Option<Vec<Value>> = self
                .r_key
                .iter()
                .map(|&k| row.cells[k].as_const().cloned())
                .collect();
            match key {
                Some(k) => buckets.entry(k).or_default().push(i),
                None => symbolic.push(i),
            }
        }
        self.build = Some(JoinBuild {
            rows,
            buckets,
            symbolic,
        });
        Ok(())
    }

    /// Candidate build-row indices for `probe`, ascending.
    fn candidates_for(&self, probe: &CRow) -> Candidates {
        let build = self.build.as_ref().expect("built");
        let key: Option<Vec<Value>> = self
            .l_key
            .iter()
            .map(|&k| probe.cells[k].as_const().cloned())
            .collect();
        match key {
            None => Candidates::All(build.rows.len()),
            Some(k) => {
                let bucket = build.buckets.get(&k).map(Vec::as_slice).unwrap_or(&[]);
                Candidates::List(merge_sorted(bucket, &build.symbolic))
            }
        }
    }
}

/// Merge two ascending index lists into one ascending list.
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl<'a> Operator<'a> for HashJoinOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        self.build_side()?;
        loop {
            if self.probe.is_none() {
                self.probe = self.left.next_row()?;
                match &self.probe {
                    None => return Ok(None),
                    Some(p) => {
                        self.candidates = self.candidates_for(p);
                        self.cand_pos = 0;
                    }
                }
            }
            let probe = self.probe.as_ref().expect("checked");
            let build = self.build.as_ref().expect("built");
            'cands: while let Some(idx) = self.candidates.get(self.cand_pos) {
                let r = &build.rows[idx];
                self.cand_pos += 1;
                // Conjoin conditions first (product), then decide keys
                // (select) — the exact order of the algebraic definition.
                let Some(joined) = join_rows(probe, r) else {
                    continue;
                };
                let mut atoms: Vec<Atom> = Vec::new();
                for (&li, &ri) in self.l_key.iter().zip(&self.r_key) {
                    let (l, rc) = (&probe.cells[li], &r.cells[ri]);
                    match (l.as_const(), rc.as_const()) {
                        (Some(a), Some(b)) => {
                            if !a.sql_eq(b) {
                                continue 'cands;
                            }
                        }
                        _ => atoms.push(Atom::new(l.clone(), pip_expr::CmpOp::Eq, rc.clone())),
                    }
                }
                let out = if atoms.is_empty() {
                    Some(joined)
                } else {
                    filter_row(joined, algebra::SelectOutcome::Conditional(atoms))
                };
                if let Some(row) = out {
                    return Ok(Some(row));
                }
            }
            self.probe = None;
        }
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.left, &self.right]
    }
}

/// ∪ — bag union: stream left, then right.
struct UnionOp<'a> {
    left: OpNode<'a>,
    right: OpNode<'a>,
    on_right: bool,
}

impl<'a> Operator<'a> for UnionOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        if !self.on_right {
            if let Some(r) = self.left.next_row()? {
                return Ok(Some(r));
            }
            self.on_right = true;
        }
        self.right.next_row()
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.left, &self.right]
    }
}

/// Drain an input node into a c-table (pipeline breakers share this).
fn drain(node: &mut OpNode<'_>) -> Result<CTable> {
    let mut t = CTable::empty(node.schema().clone());
    while let Some(row) = node.next_row()? {
        t.push(row)?;
    }
    Ok(t)
}

/// Shared buffer-then-replay state of the pipeline breakers: `fill`
/// runs once on the first pull, then rows replay in order.
#[derive(Default)]
struct Replay {
    rows: Option<Vec<CRow>>,
    pos: usize,
}

impl Replay {
    fn next(&mut self, fill: impl FnOnce() -> Result<Vec<CRow>>) -> Result<Option<CRow>> {
        if self.rows.is_none() {
            self.rows = Some(fill()?);
        }
        let rows = self.rows.as_ref().expect("just filled");
        let row = rows.get(self.pos).cloned();
        self.pos += row.is_some() as usize;
        Ok(row)
    }
}

/// `distinct` — blocking; delegates to the algebra operator.
struct DistinctOp<'a> {
    input: OpNode<'a>,
    out: Replay,
}

impl<'a> Operator<'a> for DistinctOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        let input = &mut self.input;
        self.out
            .next(|| Ok(algebra::distinct(&drain(input)?)?.rows().to_vec()))
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.input]
    }
}

/// − — blocking; delegates to the algebra operator.
struct DifferenceOp<'a> {
    left: OpNode<'a>,
    right: OpNode<'a>,
    out: Replay,
}

impl<'a> Operator<'a> for DifferenceOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        let (left, right) = (&mut self.left, &mut self.right);
        self.out.next(|| {
            let l = drain(left)?;
            let r = drain(right)?;
            Ok(algebra::difference(&l, &r)?.rows().to_vec())
        })
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.left, &self.right]
    }
}

/// Sort — blocking; deterministic keys only, stable order (the same
/// kernel the materializing executor runs).
struct SortOp<'a> {
    input: OpNode<'a>,
    keys: Vec<(usize, bool)>,
    out: Replay,
}

impl<'a> Operator<'a> for SortOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        let (input, keys) = (&mut self.input, &self.keys);
        self.out.next(|| {
            let t = drain(input)?;
            crate::exec::sort_rows(t.schema(), t.rows().to_vec(), keys)
        })
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.input]
    }
}

/// Limit — stops pulling its input once `n` rows were emitted.
struct LimitOp<'a> {
    input: OpNode<'a>,
    n: usize,
    emitted: usize,
}

impl<'a> Operator<'a> for LimitOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        if self.emitted >= self.n {
            return Ok(None);
        }
        let row = self.input.next_row()?;
        self.emitted += row.is_some() as usize;
        Ok(row)
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.input]
    }
}

/// The group-by sampling head: groups stream in incrementally, then the
/// per-group aggregate operators fan out on the shared pool — the same
/// head code (and the same deterministic per-row sites) as the
/// materializing executor.
struct AggregateOp<'a> {
    input: OpNode<'a>,
    group_by: Vec<String>,
    aggs: Vec<AggFunc>,
    cfg: SamplerConfig,
    out: Replay,
}

impl<'a> Operator<'a> for AggregateOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        let Self {
            input,
            group_by,
            aggs,
            cfg,
            out,
        } = self;
        out.next(|| {
            let mut groups = StreamingGroups::new(input.schema().clone(), group_by)?;
            while let Some(row) = input.next_row()? {
                groups.push(row)?;
            }
            let rows = group_head_rows(&groups.finish()?, aggs, cfg)?;
            Ok(rows.into_iter().map(CRow::unconditional).collect())
        })
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.input]
    }
}

/// The row-level `conf()` head: confidences computed a wave at a time
/// while upstream rows are still being produced.
struct ConfOp<'a> {
    input: OpNode<'a>,
    stream: ConfStream<'static>,
    out: std::collections::VecDeque<CRow>,
    done: bool,
}

impl ConfOp<'_> {
    fn enqueue(&mut self, batch: Vec<(CRow, f64)>) {
        for (row, p) in batch {
            let mut cells = row.cells;
            cells.push(Equation::val(p));
            self.out.push_back(CRow::unconditional(cells));
        }
    }
}

impl<'a> Operator<'a> for ConfOp<'a> {
    fn next(&mut self) -> Result<Option<CRow>> {
        while self.out.is_empty() && !self.done {
            match self.input.next_row()? {
                Some(row) => {
                    let batch = self.stream.push(row)?;
                    self.enqueue(batch);
                }
                None => {
                    let batch = self.stream.finish()?;
                    self.enqueue(batch);
                    self.done = true;
                }
            }
        }
        Ok(self.out.pop_front())
    }

    fn children(&self) -> Vec<&OpNode<'a>> {
        vec![&self.input]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pip_core::{tuple, DataType};

    fn join_db() -> Database {
        let db = Database::new();
        db.create_table(
            "l",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
        )
        .unwrap();
        db.create_table(
            "r",
            Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]),
        )
        .unwrap();
        db.insert_tuples(
            "l",
            &[
                tuple![1i64, 10i64],
                tuple![2i64, 20i64],
                tuple![3i64, 30i64],
            ],
        )
        .unwrap();
        db.insert_tuples(
            "r",
            &[
                tuple![2i64, 200i64],
                tuple![1i64, 100i64],
                tuple![1i64, 101i64],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn hash_join_matches_algebra_equi_join() {
        let db = join_db();
        let cfg = SamplerConfig::default();
        let plan = PlanBuilder::scan("l")
            .equi_join(PlanBuilder::scan("r"), vec![("a", "c")])
            .build();
        let mut phys = lower(&db, &plan, &cfg).unwrap();
        let streamed = phys.collect().unwrap();
        let l = db.table("l").unwrap();
        let r = db.table("r").unwrap();
        let reference = algebra::equi_join(&l, &r, &[("a", "c")]).unwrap();
        assert_eq!(streamed, reference);
        // Build-order candidates: l row a=1 pairs with BOTH r rows (in
        // right order), so ordering is left-major, right-original.
        assert_eq!(streamed.len(), 3);
    }

    #[test]
    fn hash_join_with_symbolic_keys_matches_algebra() {
        // Symbolic key cells on both sides: probe rows fall back to the
        // all-candidates scan, build rows to the symbolic list, and key
        // equality hoists into condition atoms.
        let db = Database::new();
        db.create_table(
            "a",
            Schema::of(&[
                ("x", pip_core::DataType::Symbolic),
                ("i", pip_core::DataType::Int),
            ]),
        )
        .unwrap();
        db.create_table("b", Schema::of(&[("y", pip_core::DataType::Symbolic)]))
            .unwrap();
        // Discrete keys: equality on continuous variables is zero-
        // measure and both executors drop such rows outright.
        let v1 = db.create_variable("Poisson", &[2.0]).unwrap();
        let v2 = db.create_variable("Poisson", &[3.0]).unwrap();
        db.insert_rows(
            "a",
            vec![
                CRow::unconditional(vec![pip_expr::Equation::from(v1.clone()), 1i64.into()]),
                CRow::unconditional(vec![pip_expr::Equation::val(2.0), 2i64.into()]),
            ],
        )
        .unwrap();
        db.insert_rows(
            "b",
            vec![
                CRow::unconditional(vec![pip_expr::Equation::val(2.0)]),
                CRow::unconditional(vec![pip_expr::Equation::from(v2)]),
            ],
        )
        .unwrap();
        let cfg = SamplerConfig::default();
        let plan = PlanBuilder::scan("a")
            .equi_join(PlanBuilder::scan("b"), vec![("x", "y")])
            .build();
        let streamed = lower(&db, &plan, &cfg).unwrap().collect().unwrap();
        let reference = algebra::equi_join(
            &db.table("a").unwrap(),
            &db.table("b").unwrap(),
            &[("x", "y")],
        )
        .unwrap();
        assert_eq!(streamed, reference);
        // All four pairs survive: the const=const key pair is kept
        // unconditionally, the three pairs with a symbolic side carry
        // hoisted equality atoms.
        assert_eq!(streamed.len(), 4);
        assert_eq!(
            streamed
                .rows()
                .iter()
                .filter(|r| !r.condition.is_trivially_true())
                .count(),
            3
        );
    }

    #[test]
    fn fused_stage_collapses_select_project_chain() {
        let db = join_db();
        let cfg = SamplerConfig::default();
        let plan = PlanBuilder::scan("l")
            .select(ScalarExpr::col("a").gt(ScalarExpr::lit(1i64)))
            .unwrap()
            .project(vec![(
                "a2",
                ScalarExpr::col("a").mul(ScalarExpr::lit(2i64)),
            )])
            .build();
        let phys = lower(&db, &plan, &cfg).unwrap();
        let text = phys.explain(false);
        assert!(text.starts_with("Fused: Filter:"), "{text}");
        assert!(text.contains("Project: [a2]"), "{text}");
        // One stage over one scan: exactly two operators.
        assert_eq!(phys.profiles().len(), 2, "{text}");
    }

    #[test]
    fn profiles_count_rows_and_depths() {
        let db = join_db();
        let cfg = SamplerConfig::default();
        let plan = PlanBuilder::scan("l")
            .equi_join(PlanBuilder::scan("r"), vec![("a", "c")])
            .limit(2)
            .build();
        let mut phys = lower(&db, &plan, &cfg).unwrap();
        let t = phys.collect().unwrap();
        assert_eq!(t.len(), 2);
        let profiles = phys.profiles();
        assert_eq!(profiles[0].name, "Limit: 2");
        assert_eq!(profiles[0].rows_out, 2);
        assert_eq!(profiles[0].depth, 0);
        assert!(profiles[1].name.starts_with("HashJoin"));
        assert_eq!(profiles[1].depth, 1);
        // Limit stopped the join after 2 rows.
        assert_eq!(profiles[1].rows_out, 2);
        let scan_l = profiles.iter().find(|p| p.name == "Scan: l").unwrap();
        // The probe side was not fully drained.
        assert!(scan_l.rows_out < 3, "{}", scan_l.rows_out);
        let analyzed = phys.explain(true);
        assert!(analyzed.contains("rows=2"), "{analyzed}");
    }

    #[test]
    fn limit_stops_pulling_upstream() {
        let db = join_db();
        let cfg = SamplerConfig::default();
        let plan = PlanBuilder::scan("l").limit(1).build();
        let mut phys = lower(&db, &plan, &cfg).unwrap();
        let t = phys.collect().unwrap();
        assert_eq!(t.len(), 1);
        let scans = phys.profiles();
        assert_eq!(scans[1].rows_out, 1, "scan pulled exactly one row");
    }

    #[test]
    fn merge_sorted_interleaves() {
        assert_eq!(merge_sorted(&[0, 3, 5], &[1, 2, 4]), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(merge_sorted(&[], &[1]), vec![1]);
        assert_eq!(merge_sorted(&[7], &[]), vec![7]);
    }
}
