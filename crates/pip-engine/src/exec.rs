//! The plan executors: logical plans → c-tables (and, at aggregate
//! heads, deterministic result tables).
//!
//! Query evaluation in PIP is split into two phases (paper Section IV):
//! the *query phase* manipulates c-tables symbolically, the *sampling
//! phase* (aggregate / conf nodes) converts symbolic results into
//! numbers. Two executors implement that contract:
//!
//! * [`execute`] — the default path: lowers the plan through
//!   [`crate::physical`] into a pipelined operator tree (zero-copy
//!   scans, fused select/project stages, hash joins) and streams rows
//!   into the sampling heads. [`QueryStats`] carries the query/sample
//!   phase split of Figure 6 plus per-operator row counts and timings.
//! * [`execute_materialized`] — the original recursive interpreter that
//!   materializes every intermediate c-table. It is kept as the
//!   executable semantics reference: `tests/physical_equivalence.rs`
//!   asserts the two produce identical tables and bit-identical sampled
//!   numbers.

use std::sync::Arc;
use std::time::Instant;

use pip_core::{Column, DataType, PipError, Result, Schema, Value};
use pip_expr::Equation;

use pip_ctable::{algebra, CRow, CTable};
use pip_sampling::parallel::{conf_rows_parallel, ParallelSampler};
use pip_sampling::{
    aconf, conf, expected_avg, expected_count, expected_max_const, expected_sum, SamplerConfig,
};

use crate::catalog::Database;
use crate::physical::{self, OpProfile};
use crate::plan::{AggFunc, Plan, ScalarExpr};
use crate::rewrite::{compile_predicate, compile_scalar};

/// Wall-clock breakdown of one query execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Seconds spent in the symbolic (relational algebra) phase.
    pub query_secs: f64,
    /// Seconds spent sampling / integrating.
    pub sample_secs: f64,
    /// Per-operator profiles of the physical tree, pre-order (empty for
    /// the materializing executor, which has no operator tree).
    pub ops: Vec<OpProfile>,
}

/// Execute `plan` against `db` through the pipelined physical layer,
/// returning the result table and the query/sample timing split with
/// per-operator profiles.
pub fn execute_with_stats(
    db: &Database,
    plan: &Plan,
    cfg: &SamplerConfig,
) -> Result<(CTable, QueryStats)> {
    let mut phys = physical::lower(db, plan, cfg)?;
    let t0 = Instant::now();
    let table = phys.collect()?;
    let total = t0.elapsed().as_secs_f64();
    let ops = phys.profiles();
    let sample_secs: f64 = ops
        .iter()
        .filter(|p| p.sampling)
        .map(|p| p.exclusive_secs)
        .sum();
    let stats = QueryStats {
        query_secs: (total - sample_secs).max(0.0),
        sample_secs,
        ops,
    };
    let m = db.metrics();
    m.queries_total.inc();
    m.query_phase_seconds.observe_secs(stats.query_secs);
    m.sample_phase_seconds.observe_secs(stats.sample_secs);
    Ok((table, stats))
}

/// Execute `plan` against `db` (pipelined executor).
pub fn execute(db: &Database, plan: &Plan, cfg: &SamplerConfig) -> Result<CTable> {
    execute_with_stats(db, plan, cfg).map(|(t, _)| t)
}

/// Execute `plan` with the legacy materializing interpreter (the
/// semantics reference for the pipelined executor).
pub fn execute_materialized(db: &Database, plan: &Plan, cfg: &SamplerConfig) -> Result<CTable> {
    execute_materialized_with_stats(db, plan, cfg).map(|(t, _)| t)
}

/// [`execute_materialized`] with the query/sample timing split.
pub fn execute_materialized_with_stats(
    db: &Database,
    plan: &Plan,
    cfg: &SamplerConfig,
) -> Result<(CTable, QueryStats)> {
    let mut stats = QueryStats::default();
    let table = run(db, plan, cfg, &mut stats)?;
    // The root result is owned unless the plan is a bare table scan, in
    // which case the catalog still shares it and one clone is due.
    let table = Arc::try_unwrap(table).unwrap_or_else(|arc| (*arc).clone());
    Ok((table, stats))
}

/// The recursive materializing interpreter. Base-table scans hand back
/// the catalog's shared [`Arc`] snapshot — operators above borrow it, so
/// scans never copy the table.
fn run(
    db: &Database,
    plan: &Plan,
    cfg: &SamplerConfig,
    stats: &mut QueryStats,
) -> Result<Arc<CTable>> {
    match plan {
        Plan::Scan(name) => db.table(name),
        Plan::Select { input, predicate } => {
            let t = run(db, input, cfg, stats)?;
            let start = Instant::now();
            let schema = t.schema().clone();
            let out =
                algebra::select(&t, |cells| compile_predicate(predicate, &schema, cells, db))?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::Project { input, exprs } => {
            let t = run(db, input, cfg, stats)?;
            let start = Instant::now();
            let in_schema = t.schema().clone();
            let out_schema = Schema::new(
                exprs
                    .iter()
                    .map(|(name, e)| Column::new(name.clone(), output_type(e, &in_schema)))
                    .collect(),
            )?;
            let out = algebra::map(&t, out_schema, |cells| {
                exprs
                    .iter()
                    .map(|(_, e)| project_cell(e, &in_schema, cells, db))
                    .collect()
            })?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::Product { left, right } => {
            let l = run(db, left, cfg, stats)?;
            let r = run(db, right, cfg, stats)?;
            let start = Instant::now();
            let out = algebra::product(&l, &r)?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::EquiJoin { left, right, on } => {
            let l = run(db, left, cfg, stats)?;
            let r = run(db, right, cfg, stats)?;
            let start = Instant::now();
            let pairs: Vec<(&str, &str)> =
                on.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let out = algebra::equi_join(&l, &r, &pairs)?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::Union { left, right } => {
            let l = run(db, left, cfg, stats)?;
            let r = run(db, right, cfg, stats)?;
            let start = Instant::now();
            let out = algebra::union(&l, &r)?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::Distinct(input) => {
            let t = run(db, input, cfg, stats)?;
            let start = Instant::now();
            let out = algebra::distinct(&t)?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::Difference { left, right } => {
            let l = run(db, left, cfg, stats)?;
            let r = run(db, right, cfg, stats)?;
            let start = Instant::now();
            let out = algebra::difference(&l, &r)?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let t = run(db, input, cfg, stats)?;
            let start = Instant::now();
            let out = aggregate(&t, group_by, aggs, cfg)?;
            stats.sample_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::Conf(input) => {
            let t = run(db, input, cfg, stats)?;
            let start = Instant::now();
            let out = conf_table(&t, cfg)?;
            stats.sample_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::Sort { input, keys } => {
            let t = run(db, input, cfg, stats)?;
            let start = Instant::now();
            let idx = keys
                .iter()
                .map(|(c, d)| Ok((t.schema().index_of(c)?, *d)))
                .collect::<Result<Vec<_>>>()?;
            let rows = sort_rows(t.schema(), t.rows().to_vec(), &idx)?;
            let out = CTable::new(t.schema().clone(), rows)?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::Limit { input, n } => {
            let t = run(db, input, cfg, stats)?;
            let rows = t.rows().iter().take(*n).cloned().collect();
            Ok(Arc::new(CTable::new(t.schema().clone(), rows)?))
        }
        // The index access paths are physical details: the materializing
        // interpreter executes their logical equivalents, which is
        // exactly what makes it the semantics oracle for them.
        Plan::IndexScan {
            table, predicate, ..
        } => {
            let t = db.table(table)?;
            let start = Instant::now();
            let schema = t.schema().clone();
            let out =
                algebra::select(&t, |cells| compile_predicate(predicate, &schema, cells, db))?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
        Plan::IndexJoin {
            left, table, on, ..
        } => {
            let l = run(db, left, cfg, stats)?;
            let r = db.table(table)?;
            let start = Instant::now();
            let pairs: Vec<(&str, &str)> =
                on.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            let out = algebra::equi_join(&l, &r, &pairs)?;
            stats.query_secs += start.elapsed().as_secs_f64();
            Ok(Arc::new(out))
        }
    }
}

/// Compute one projection cell. A bare column reference is an identity
/// projection — the cell is copied verbatim (no re-simplification);
/// computed expressions compile and simplify. Both executors share this.
pub(crate) fn project_cell(
    expr: &ScalarExpr,
    schema: &Schema,
    cells: &[Equation],
    db: &Database,
) -> Result<Equation> {
    let eq = compile_scalar(expr, schema, cells, db)?;
    Ok(if matches!(expr, ScalarExpr::Column(_)) {
        eq
    } else {
        eq.simplify()
    })
}

/// Static output type inference for projection expressions.
pub(crate) fn output_type(expr: &ScalarExpr, schema: &Schema) -> DataType {
    match expr {
        ScalarExpr::Column(name) => schema
            .column(name)
            .map(|c| c.dtype)
            .unwrap_or(DataType::Symbolic),
        ScalarExpr::Literal(v) => match v {
            pip_core::Value::Bool(_) => DataType::Bool,
            pip_core::Value::Int(_) => DataType::Int,
            pip_core::Value::Float(_) => DataType::Float,
            pip_core::Value::Str(_) => DataType::Str,
            pip_core::Value::Null => DataType::Symbolic,
        },
        _ => DataType::Symbolic,
    }
}

/// The ORDER BY kernel both executors share: validate that every sort
/// key cell is deterministic (like group-by keys), then stably sort by
/// `(column index, descending)` keys under the total value order.
pub(crate) fn sort_rows(
    schema: &Schema,
    mut rows: Vec<CRow>,
    keys: &[(usize, bool)],
) -> Result<Vec<CRow>> {
    for row in &rows {
        for &(i, _) in keys {
            if row.cells[i].as_const().is_none() {
                return Err(PipError::Unsupported(format!(
                    "ORDER BY on uncertain column '{}'",
                    schema.columns()[i].name
                )));
            }
        }
    }
    rows.sort_by(|a, b| {
        for &(i, desc) in keys {
            let av = a.cells[i].as_const().expect("validated");
            let bv = b.cells[i].as_const().expect("validated");
            let ord = av.cmp_total(bv);
            let ord = if desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(rows)
}

/// Output schema of an aggregate head: the group keys followed by one
/// Float column per aggregate.
pub(crate) fn aggregate_schema(
    in_schema: &Schema,
    group_by: &[String],
    aggs: &[AggFunc],
) -> Result<Schema> {
    let mut cols: Vec<Column> = Vec::new();
    for g in group_by {
        cols.push(in_schema.column(g)?.clone());
    }
    for a in aggs {
        cols.push(Column::new(a.output_name(), DataType::Float));
    }
    Schema::new(cols)
}

/// Run the aggregate sampling operators over pre-partitioned groups,
/// returning one output cell vector per group (in group order).
///
/// Per-group sampling sites derive from the group's row contents (row
/// index within the part), never from scheduling, so groups can fan out
/// onto the shared pool without changing any number; the fold back into
/// the result rows stays in group order. Both executors call this.
pub(crate) fn group_head_rows(
    groups: &[(Vec<Value>, CTable)],
    aggs: &[AggFunc],
    cfg: &SamplerConfig,
) -> Result<Vec<Vec<Equation>>> {
    let group_row = |(key, part): &(Vec<Value>, CTable)| -> Result<Vec<Equation>> {
        let mut cells: Vec<Equation> = key.iter().cloned().map(Equation::Const).collect();
        for a in aggs {
            let v = match a {
                AggFunc::ExpectedSum(col) => expected_sum(part, col, cfg)?.value,
                AggFunc::ExpectedCount => expected_count(part, cfg)?.value,
                AggFunc::ExpectedAvg(col) => expected_avg(part, col, cfg)?.value,
                AggFunc::ExpectedMax { column, precision } => {
                    expected_max_const(part, column, cfg, *precision)?.value
                }
                AggFunc::Conf => {
                    // Probability the group is non-empty: aconf over the
                    // disjunction of all row conditions.
                    let dnf = pip_expr::Dnf::of(
                        part.rows().iter().map(|r| r.condition.clone()).collect(),
                    );
                    aconf(&dnf, cfg, 0)?
                }
            };
            cells.push(Equation::val(v));
        }
        Ok(cells)
    };

    let rows: Vec<Result<Vec<Equation>>> = if cfg.threads > 1 && groups.len() > 1 {
        let pool = ParallelSampler::global();
        pool.run(cfg.threads, groups.len(), |i| group_row(&groups[i]))
    } else {
        groups.iter().map(group_row).collect()
    };
    rows.into_iter().collect()
}

/// Execute the aggregate head: group, then run sampling operators.
fn aggregate(
    table: &CTable,
    group_by: &[String],
    aggs: &[AggFunc],
    cfg: &SamplerConfig,
) -> Result<CTable> {
    let out_schema = aggregate_schema(table.schema(), group_by, aggs)?;
    let mut out = CTable::empty(out_schema);

    let groups: Vec<(Vec<Value>, CTable)> = if group_by.is_empty() {
        vec![(Vec::new(), table.clone())]
    } else {
        let keys: Vec<&str> = group_by.iter().map(String::as_str).collect();
        algebra::partition_by(table, &keys)?
    };

    for cells in group_head_rows(&groups, aggs, cfg)? {
        out.push(CRow::unconditional(cells))?;
    }
    Ok(out)
}

/// The row-level confidence operator: append `conf()`, strip conditions.
///
/// Each row's `conf` is seeded by its row index, so with `threads > 1`
/// the rows fan out onto the shared pool bit-identically to the serial
/// loop.
fn conf_table(table: &CTable, cfg: &SamplerConfig) -> Result<CTable> {
    let mut cols = table.schema().columns().to_vec();
    cols.push(Column::new("conf()", DataType::Float));
    let out_schema = Schema::new(cols)?;
    let mut out = CTable::empty(out_schema);
    let probs: Vec<f64> = if cfg.threads > 1 {
        conf_rows_parallel(table, cfg, ParallelSampler::global())?
    } else {
        table
            .rows()
            .iter()
            .enumerate()
            .map(|(i, row)| conf(&row.condition, cfg, i as u64))
            .collect::<Result<_>>()?
    };
    for (row, p) in table.rows().iter().zip(probs) {
        let mut cells = row.cells.clone();
        cells.push(Equation::val(p));
        out.push(CRow::unconditional(cells))?;
    }
    Ok(out)
}

/// Convenience: extract a single scalar f64 from a 1×1 result table.
pub fn scalar_result(table: &CTable) -> Result<f64> {
    if table.len() != 1 || table.schema().len() != 1 {
        return Err(PipError::Eval(format!(
            "expected 1x1 result, got {}x{}",
            table.len(),
            table.schema().len()
        )));
    }
    table.rows()[0].cells[0]
        .as_const()
        .ok_or_else(|| PipError::Eval("result cell is symbolic".into()))?
        .as_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pip_core::{tuple, Value};
    use pip_dist::special;

    /// The paper's running example as a full engine test.
    fn shipping_db() -> Database {
        let db = Database::new();
        db.create_table(
            "orders",
            Schema::of(&[
                ("cust", DataType::Str),
                ("ship_to", DataType::Str),
                ("price", DataType::Symbolic),
            ]),
        )
        .unwrap();
        db.create_table(
            "shipping",
            Schema::of(&[("dest", DataType::Str), ("duration", DataType::Symbolic)]),
        )
        .unwrap();
        let x1 = db.create_variable("Normal", &[100.0, 10.0]).unwrap();
        let x3 = db.create_variable("Normal", &[50.0, 5.0]).unwrap();
        let x2 = db.create_variable("Normal", &[5.0, 2.0]).unwrap();
        let x4 = db.create_variable("Normal", &[9.0, 2.0]).unwrap();
        db.insert_rows(
            "orders",
            vec![
                CRow::unconditional(vec![
                    Equation::val(Value::str("Joe")),
                    Equation::val(Value::str("NY")),
                    Equation::from(x1),
                ]),
                CRow::unconditional(vec![
                    Equation::val(Value::str("Bob")),
                    Equation::val(Value::str("LA")),
                    Equation::from(x3),
                ]),
            ],
        )
        .unwrap();
        db.insert_rows(
            "shipping",
            vec![
                CRow::unconditional(vec![Equation::val(Value::str("NY")), Equation::from(x2)]),
                CRow::unconditional(vec![Equation::val(Value::str("LA")), Equation::from(x4)]),
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn paper_intro_query_end_to_end() {
        // select expected_sum(price) from orders o, shipping s
        // where o.ship_to = s.dest and o.cust = 'Joe' and s.duration >= 7
        let db = shipping_db();
        let plan = PlanBuilder::scan("orders")
            .select(ScalarExpr::col("cust").eq(ScalarExpr::lit("Joe")))
            .unwrap()
            .equi_join(PlanBuilder::scan("shipping"), vec![("ship_to", "dest")])
            .select(ScalarExpr::col("duration").ge(ScalarExpr::lit(7.0)))
            .unwrap()
            .aggregate(vec![], vec![AggFunc::ExpectedSum("price".into())])
            .build();
        let cfg = SamplerConfig::default();
        let (result, stats) = execute_with_stats(&db, &plan, &cfg).unwrap();
        let v = scalar_result(&result).unwrap();
        // E[X1]·P[X2 ≥ 7]: price independent of duration.
        let truth = 100.0 * (1.0 - special::normal_cdf((7.0 - 5.0) / 2.0));
        assert!((v - truth).abs() < 2.0, "{v} vs {truth}");
        assert!(stats.query_secs >= 0.0 && stats.sample_secs > 0.0);
        // The physical tree was profiled: an aggregate head over a join.
        assert!(
            stats.ops[0].name.starts_with("Aggregate"),
            "{:?}",
            stats.ops
        );
        assert!(stats.ops[0].sampling);
        assert!(stats.ops.iter().any(|p| p.name.starts_with("HashJoin")));
    }

    #[test]
    fn streaming_matches_materialized_on_the_paper_query() {
        let db = shipping_db();
        let plan = PlanBuilder::scan("orders")
            .equi_join(PlanBuilder::scan("shipping"), vec![("ship_to", "dest")])
            .select(ScalarExpr::col("duration").ge(ScalarExpr::lit(7.0)))
            .unwrap()
            .aggregate(
                vec!["cust"],
                vec![AggFunc::ExpectedSum("price".into()), AggFunc::Conf],
            )
            .build();
        let cfg = SamplerConfig::default();
        let streamed = execute(&db, &plan, &cfg).unwrap();
        let materialized = execute_materialized(&db, &plan, &cfg).unwrap();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn conf_operator_appends_probability_column() {
        let db = shipping_db();
        let plan = PlanBuilder::scan("shipping")
            .select(ScalarExpr::col("duration").ge(ScalarExpr::lit(7.0)))
            .unwrap()
            .conf()
            .build();
        let cfg = SamplerConfig::default();
        let t = execute(&db, &plan, &cfg).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().columns().last().unwrap().name, "conf()");
        // NY: P[N(5,2) ≥ 7] ≈ 0.1587; LA: P[N(9,2) ≥ 7] ≈ 0.8413.
        let p_ny = t.rows()[0].cells[2].as_const().unwrap().as_f64().unwrap();
        let p_la = t.rows()[1].cells[2].as_const().unwrap().as_f64().unwrap();
        assert!((p_ny - 0.1587).abs() < 1e-3, "{p_ny}");
        assert!((p_la - 0.8413).abs() < 1e-3, "{p_la}");
        // Conditions stripped.
        assert!(t.rows().iter().all(|r| r.condition.is_trivially_true()));
    }

    #[test]
    fn group_by_aggregates() {
        let db = Database::new();
        db.create_table(
            "sales",
            Schema::of(&[("region", DataType::Str), ("amount", DataType::Symbolic)]),
        )
        .unwrap();
        db.insert_tuples(
            "sales",
            &[
                tuple!["east", 10.0],
                tuple!["east", 20.0],
                tuple!["west", 5.0],
            ],
        )
        .unwrap();
        let plan = PlanBuilder::scan("sales")
            .aggregate(
                vec!["region"],
                vec![
                    AggFunc::ExpectedSum("amount".into()),
                    AggFunc::ExpectedCount,
                ],
            )
            .build();
        let cfg = SamplerConfig::default();
        let t = execute(&db, &plan, &cfg).unwrap();
        assert_eq!(t.len(), 2);
        let east = &t.rows()[0];
        assert_eq!(east.cells[0].as_const().unwrap(), &Value::str("east"));
        assert_eq!(east.cells[1].as_const().unwrap().as_f64().unwrap(), 30.0);
        assert_eq!(east.cells[2].as_const().unwrap().as_f64().unwrap(), 2.0);
    }

    #[test]
    fn projection_with_arithmetic_and_fresh_variables() {
        let db = Database::new();
        db.create_table("base", Schema::of(&[("x", DataType::Float)]))
            .unwrap();
        db.insert_tuples("base", &[tuple![3.0], tuple![4.0]])
            .unwrap();
        let plan = PlanBuilder::scan("base")
            .project(vec![
                ("doubled", ScalarExpr::col("x").mul(ScalarExpr::lit(2.0))),
                (
                    "noise",
                    ScalarExpr::CreateVariable {
                        class: "Normal".into(),
                        params: vec![0.0, 1.0],
                    },
                ),
            ])
            .build();
        let cfg = SamplerConfig::default();
        let t = execute(&db, &plan, &cfg).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.rows()[0].cells[0].as_const().unwrap().as_f64().unwrap(),
            6.0
        );
        // Fresh variable per row.
        let v0 = t.rows()[0].cells[1].variables();
        let v1 = t.rows()[1].cells[1].variables();
        assert_ne!(v0[0].key, v1[0].key);
    }

    #[test]
    fn union_distinct_difference_through_plans() {
        let db = Database::new();
        db.create_table("a", Schema::of(&[("v", DataType::Int)]))
            .unwrap();
        db.create_table("b", Schema::of(&[("v", DataType::Int)]))
            .unwrap();
        db.insert_tuples("a", &[tuple![1i64], tuple![2i64], tuple![2i64]])
            .unwrap();
        db.insert_tuples("b", &[tuple![2i64]]).unwrap();
        let cfg = SamplerConfig::default();

        let u = execute(
            &db,
            &PlanBuilder::scan("a").union(PlanBuilder::scan("b")).build(),
            &cfg,
        )
        .unwrap();
        assert_eq!(u.len(), 4);

        let d = execute(&db, &PlanBuilder::scan("a").distinct().build(), &cfg).unwrap();
        assert_eq!(d.len(), 2);

        let diff = execute(
            &db,
            &PlanBuilder::scan("a")
                .difference(PlanBuilder::scan("b"))
                .build(),
            &cfg,
        )
        .unwrap();
        let world = diff.instantiate(&pip_expr::Assignment::new()).unwrap();
        assert_eq!(world, vec![tuple![1i64]]);
    }

    #[test]
    fn thread_count_never_changes_query_results() {
        let db = shipping_db();
        let agg_plan = PlanBuilder::scan("orders")
            .equi_join(PlanBuilder::scan("shipping"), vec![("ship_to", "dest")])
            .select(ScalarExpr::col("duration").ge(ScalarExpr::lit(7.0)))
            .unwrap()
            .aggregate(
                vec!["cust"],
                vec![
                    AggFunc::ExpectedSum("price".into()),
                    AggFunc::ExpectedCount,
                    AggFunc::Conf,
                ],
            )
            .build();
        let conf_plan = PlanBuilder::scan("shipping")
            .select(ScalarExpr::col("duration").ge(ScalarExpr::lit(7.0)))
            .unwrap()
            .conf()
            .build();
        let serial = SamplerConfig::default();
        let t1_agg = execute(&db, &agg_plan, &serial).unwrap();
        let t1_conf = execute(&db, &conf_plan, &serial).unwrap();
        for threads in [2usize, 4, 8] {
            let par = serial.clone().with_threads(threads);
            assert_eq!(
                execute(&db, &agg_plan, &par).unwrap().rows(),
                t1_agg.rows(),
                "aggregate head diverged at {threads} threads"
            );
            assert_eq!(
                execute(&db, &conf_plan, &par).unwrap().rows(),
                t1_conf.rows(),
                "conf head diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn scalar_result_shape_checks() {
        let t = CTable::from_tuples(Schema::of(&[("a", DataType::Int)]), &[tuple![5i64]]).unwrap();
        assert_eq!(scalar_result(&t).unwrap(), 5.0);
        let t2 = CTable::from_tuples(
            Schema::of(&[("a", DataType::Int)]),
            &[tuple![5i64], tuple![6i64]],
        )
        .unwrap();
        assert!(scalar_result(&t2).is_err());
    }

    #[test]
    fn missing_table_errors() {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        assert!(execute(&db, &Plan::Scan("ghost".into()), &cfg).is_err());
        assert!(execute_materialized(&db, &Plan::Scan("ghost".into()), &cfg).is_err());
    }

    #[test]
    fn bare_scan_returns_the_table_without_mutating_the_catalog() {
        let db = shipping_db();
        let cfg = SamplerConfig::default();
        let v0 = db.version();
        let t = execute(&db, &Plan::Scan("orders".into()), &cfg).unwrap();
        let m = execute_materialized(&db, &Plan::Scan("orders".into()), &cfg).unwrap();
        assert_eq!(t, m);
        assert_eq!(t.len(), 2);
        assert_eq!(db.version(), v0);
    }
}
