//! Logical plans and scalar expressions over named columns.
//!
//! Scalar expressions compile, per row, into symbolic [`Equation`]s;
//! boolean expressions compile into condition atoms (the CTYPE hoisting
//! of Section V-A happens in [`crate::rewrite`]). Plans are built either
//! programmatically via [`PlanBuilder`] or from SQL.

use pip_core::{PipError, Result, Value};
use pip_expr::{BinOp, CmpOp, RandomVar};

/// A scalar (value-producing) or boolean (predicate) expression over the
/// columns of a plan node's schema.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// A column reference by name.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A pre-created random variable (injected by workload builders).
    Var(RandomVar),
    /// `CREATE_VARIABLE(class, params)` — allocates a *fresh* variable
    /// each time the expression is evaluated on a row (Section V-A).
    CreateVariable { class: String, params: Vec<f64> },
    /// Arithmetic.
    Binary {
        op: BinOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// Negation.
    Neg(Box<ScalarExpr>),
    /// Comparison (boolean-valued; only legal inside predicates).
    Cmp {
        op: CmpOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// Conjunction of predicates.
    And(Vec<ScalarExpr>),
}

impl ScalarExpr {
    pub fn col(name: impl Into<String>) -> Self {
        ScalarExpr::Column(name.into())
    }

    pub fn lit(v: impl Into<Value>) -> Self {
        ScalarExpr::Literal(v.into())
    }

    pub fn var(v: RandomVar) -> Self {
        ScalarExpr::Var(v)
    }

    pub fn add(self, rhs: ScalarExpr) -> Self {
        self.bin(BinOp::Add, rhs)
    }

    pub fn sub(self, rhs: ScalarExpr) -> Self {
        self.bin(BinOp::Sub, rhs)
    }

    pub fn mul(self, rhs: ScalarExpr) -> Self {
        self.bin(BinOp::Mul, rhs)
    }

    pub fn div(self, rhs: ScalarExpr) -> Self {
        self.bin(BinOp::Div, rhs)
    }

    fn bin(self, op: BinOp, rhs: ScalarExpr) -> Self {
        ScalarExpr::Binary {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    pub fn cmp(self, op: CmpOp, rhs: ScalarExpr) -> Self {
        ScalarExpr::Cmp {
            op,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    pub fn gt(self, rhs: ScalarExpr) -> Self {
        self.cmp(CmpOp::Gt, rhs)
    }

    pub fn ge(self, rhs: ScalarExpr) -> Self {
        self.cmp(CmpOp::Ge, rhs)
    }

    pub fn lt(self, rhs: ScalarExpr) -> Self {
        self.cmp(CmpOp::Lt, rhs)
    }

    pub fn le(self, rhs: ScalarExpr) -> Self {
        self.cmp(CmpOp::Le, rhs)
    }

    pub fn eq(self, rhs: ScalarExpr) -> Self {
        self.cmp(CmpOp::Eq, rhs)
    }

    pub fn and(self, rhs: ScalarExpr) -> Self {
        match self {
            ScalarExpr::And(mut v) => {
                v.push(rhs);
                ScalarExpr::And(v)
            }
            other => ScalarExpr::And(vec![other, rhs]),
        }
    }

    /// True if the expression is a predicate (produces a boolean).
    pub fn is_predicate(&self) -> bool {
        matches!(self, ScalarExpr::Cmp { .. } | ScalarExpr::And(_))
    }
}

/// Aggregate functions available at the head of a plan (the paper's
/// probability-removing functions, Section V-A).
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// `expected_sum(col)`.
    ExpectedSum(String),
    /// `expected_count(*)`.
    ExpectedCount,
    /// `expected_avg(col)`.
    ExpectedAvg(String),
    /// `expected_max(col)` with the given early-exit precision.
    ExpectedMax { column: String, precision: f64 },
    /// `conf()` — confidence that the group is non-empty... for grouped
    /// plans; for ungrouped use the `Conf` plan node on rows instead.
    Conf,
}

impl AggFunc {
    /// Output column name for the aggregate.
    pub fn output_name(&self) -> String {
        match self {
            AggFunc::ExpectedSum(c) => format!("expected_sum({c})"),
            AggFunc::ExpectedCount => "expected_count(*)".to_string(),
            AggFunc::ExpectedAvg(c) => format!("expected_avg({c})"),
            AggFunc::ExpectedMax { column, .. } => format!("expected_max({column})"),
            AggFunc::Conf => "conf()".to_string(),
        }
    }
}

/// A logical query plan over c-tables.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a catalog table.
    Scan(String),
    /// Filter rows; symbolic comparisons hoist into row conditions.
    Select {
        input: Box<Plan>,
        predicate: ScalarExpr,
    },
    /// Compute output columns (generalized projection).
    Project {
        input: Box<Plan>,
        exprs: Vec<(String, ScalarExpr)>,
    },
    /// Cross product.
    Product { left: Box<Plan>, right: Box<Plan> },
    /// Equi-join on column pairs.
    EquiJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        on: Vec<(String, String)>,
    },
    /// Bag union.
    Union { left: Box<Plan>, right: Box<Plan> },
    /// Duplicate elimination (bag-encoded DNF).
    Distinct(Box<Plan>),
    /// Multiset-free difference.
    Difference { left: Box<Plan>, right: Box<Plan> },
    /// Group by deterministic keys and apply aggregate sampling
    /// operators; output is a *deterministic* table.
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<String>,
        aggs: Vec<AggFunc>,
    },
    /// Append a `conf()` column with each row's confidence and strip the
    /// condition (the row-level confidence operator, Section IV-B).
    Conf(Box<Plan>),
    /// Sort by deterministic columns (uncertain sort keys are rejected at
    /// execution time, like group-by keys).
    Sort {
        input: Box<Plan>,
        keys: Vec<(String, bool)>, // (column, descending)
    },
    /// Keep the first `n` rows.
    Limit { input: Box<Plan>, n: usize },
    /// Seek an ordered secondary index for the rows of `table` whose
    /// indexed column may fall inside `[lo, hi]` (the seek
    /// over-approximates: symbolic cells and out-of-order constants are
    /// always candidates), then re-apply the full `predicate` per
    /// candidate. Semantically identical to
    /// `Select { input: Scan(table), predicate }` — candidates stream in
    /// ascending row id, so results are row- and bit-identical to the
    /// full scan.
    IndexScan {
        table: String,
        index: String,
        column: String,
        /// Lower bound as `(value, inclusive)`; `None` = unbounded.
        lo: Option<(Value, bool)>,
        /// Upper bound as `(value, inclusive)`; `None` = unbounded.
        hi: Option<(Value, bool)>,
        /// The complete original predicate, re-checked per candidate.
        predicate: ScalarExpr,
    },
    /// Probe an ordered index on `table` once per left row instead of
    /// building a hash table. Semantically identical to
    /// `EquiJoin { left, right: Scan(table), on }`.
    IndexJoin {
        left: Box<Plan>,
        table: String,
        index: String,
        on: Vec<(String, String)>,
    },
}

impl Plan {
    /// One-line operator label (the node's EXPLAIN header).
    pub fn label(&self) -> String {
        match self {
            Plan::Scan(t) => format!("Scan: {t}"),
            Plan::Select { predicate, .. } => format!("Select: {predicate:?}"),
            Plan::Project { exprs, .. } => {
                let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                format!("Project: [{}]", names.join(", "))
            }
            Plan::Product { .. } => "Product".to_string(),
            Plan::EquiJoin { on, .. } => {
                let pairs: Vec<String> = on.iter().map(|(a, b)| format!("{a}={b}")).collect();
                format!("EquiJoin: {}", pairs.join(" AND "))
            }
            Plan::Union { .. } => "Union".to_string(),
            Plan::Distinct(_) => "Distinct".to_string(),
            Plan::Difference { .. } => "Difference".to_string(),
            Plan::Aggregate { group_by, aggs, .. } => {
                let names: Vec<String> = aggs.iter().map(|a| a.output_name()).collect();
                format!(
                    "Aggregate: [{}] group by [{}]",
                    names.join(", "),
                    group_by.join(", ")
                )
            }
            Plan::Conf(_) => "Conf".to_string(),
            Plan::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(c, desc)| format!("{c}{}", if *desc { " DESC" } else { "" }))
                    .collect();
                format!("Sort: [{}]", ks.join(", "))
            }
            Plan::Limit { n, .. } => format!("Limit: {n}"),
            Plan::IndexScan {
                table,
                index,
                column,
                lo,
                hi,
                ..
            } => {
                let mut range = String::new();
                if let Some((v, inc)) = lo {
                    range.push_str(&format!("{v:?} {} ", if *inc { "<=" } else { "<" }));
                }
                range.push_str(column);
                if let Some((v, inc)) = hi {
                    range.push_str(&format!(" {} {v:?}", if *inc { "<=" } else { "<" }));
                }
                format!("IndexScan: {table} via {index} ({range})")
            }
            Plan::IndexJoin {
                table, index, on, ..
            } => {
                let pairs: Vec<String> = on.iter().map(|(a, b)| format!("{a}={b}")).collect();
                format!(
                    "IndexJoin: {} (probe={table} via {index})",
                    pairs.join(" AND ")
                )
            }
        }
    }

    /// Child plans in operator order (left before right).
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan(_) | Plan::IndexScan { .. } => Vec::new(),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => vec![input],
            Plan::Distinct(input) | Plan::Conf(input) => vec![input],
            Plan::IndexJoin { left, .. } => vec![left],
            Plan::Product { left, right }
            | Plan::EquiJoin { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Difference { left, right } => vec![left, right],
        }
    }

    /// EXPLAIN-style rendering, one node per line with indentation.
    fn explain_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), self.label());
        for child in self.children() {
            child.explain_into(depth + 1, out);
        }
    }

    /// Human-readable plan tree (the engine's EXPLAIN).
    pub fn explain(&self) -> String {
        let mut s = String::new();
        self.explain_into(0, &mut s);
        s
    }

    /// The operator tree as a compact JSON document — node labels plus
    /// children, no estimates or timings. This is the *shape* that the
    /// plan-regression guard in the `fig6_queries` bench records and
    /// diffs across runs: two plans with equal `shape_json` apply the
    /// same operators in the same arrangement.
    pub fn shape_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn go(plan: &Plan, out: &mut String) {
            out.push_str("{\"op\":\"");
            out.push_str(&esc(&plan.label()));
            out.push_str("\",\"children\":[");
            for (i, c) in plan.children().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                go(c, out);
            }
            out.push_str("]}");
        }
        let mut s = String::new();
        go(self, &mut s);
        s
    }
}

impl std::fmt::Display for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.explain())
    }
}

/// Fluent plan construction.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: Plan,
}

impl PlanBuilder {
    pub fn scan(table: impl Into<String>) -> Self {
        PlanBuilder {
            plan: Plan::Scan(table.into()),
        }
    }

    pub fn select(self, predicate: ScalarExpr) -> Result<Self> {
        if !predicate.is_predicate() {
            return Err(PipError::Sql(format!(
                "WHERE clause must be a predicate, got {predicate:?}"
            )));
        }
        Ok(PlanBuilder {
            plan: Plan::Select {
                input: Box::new(self.plan),
                predicate,
            },
        })
    }

    pub fn project(self, exprs: Vec<(impl Into<String>, ScalarExpr)>) -> Self {
        PlanBuilder {
            plan: Plan::Project {
                input: Box::new(self.plan),
                exprs: exprs.into_iter().map(|(n, e)| (n.into(), e)).collect(),
            },
        }
    }

    pub fn product(self, right: PlanBuilder) -> Self {
        PlanBuilder {
            plan: Plan::Product {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
            },
        }
    }

    pub fn equi_join(self, right: PlanBuilder, on: Vec<(&str, &str)>) -> Self {
        PlanBuilder {
            plan: Plan::EquiJoin {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                on: on
                    .into_iter()
                    .map(|(a, b)| (a.to_string(), b.to_string()))
                    .collect(),
            },
        }
    }

    pub fn union(self, right: PlanBuilder) -> Self {
        PlanBuilder {
            plan: Plan::Union {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
            },
        }
    }

    pub fn distinct(self) -> Self {
        PlanBuilder {
            plan: Plan::Distinct(Box::new(self.plan)),
        }
    }

    pub fn difference(self, right: PlanBuilder) -> Self {
        PlanBuilder {
            plan: Plan::Difference {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
            },
        }
    }

    pub fn aggregate(self, group_by: Vec<&str>, aggs: Vec<AggFunc>) -> Self {
        PlanBuilder {
            plan: Plan::Aggregate {
                input: Box::new(self.plan),
                group_by: group_by.into_iter().map(String::from).collect(),
                aggs,
            },
        }
    }

    pub fn conf(self) -> Self {
        PlanBuilder {
            plan: Plan::Conf(Box::new(self.plan)),
        }
    }

    /// Sort by `(column, descending)` keys.
    pub fn sort(self, keys: Vec<(&str, bool)>) -> Self {
        PlanBuilder {
            plan: Plan::Sort {
                input: Box::new(self.plan),
                keys: keys.into_iter().map(|(c, d)| (c.to_string(), d)).collect(),
            },
        }
    }

    pub fn limit(self, n: usize) -> Self {
        PlanBuilder {
            plan: Plan::Limit {
                input: Box::new(self.plan),
                n,
            },
        }
    }

    pub fn build(self) -> Plan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_json_captures_structure_not_estimates() {
        let a = PlanBuilder::scan("t")
            .equi_join(PlanBuilder::scan("u"), vec![("k", "k")])
            .build();
        let s = a.shape_json();
        assert!(s.starts_with('{') && s.ends_with('}'), "{s}");
        assert!(s.contains("\"op\":\"EquiJoin: k=k\""), "{s}");
        assert!(s.contains("Scan: t") && s.contains("Scan: u"), "{s}");
        // Identical structure → identical shape; different join order →
        // different shape.
        let b = PlanBuilder::scan("t")
            .equi_join(PlanBuilder::scan("u"), vec![("k", "k")])
            .build();
        assert_eq!(s, b.shape_json());
        let c = PlanBuilder::scan("u")
            .equi_join(PlanBuilder::scan("t"), vec![("k", "k")])
            .build();
        assert_ne!(s, c.shape_json());
    }

    #[test]
    fn builder_composes() {
        let plan = PlanBuilder::scan("orders")
            .select(ScalarExpr::col("price").gt(ScalarExpr::lit(5.0)))
            .unwrap()
            .project(vec![("p", ScalarExpr::col("price"))])
            .build();
        match plan {
            Plan::Project { input, exprs } => {
                assert_eq!(exprs[0].0, "p");
                assert!(matches!(*input, Plan::Select { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_requires_predicate() {
        let r = PlanBuilder::scan("t").select(ScalarExpr::lit(1i64));
        assert!(r.is_err());
    }

    #[test]
    fn expr_builders() {
        let e = ScalarExpr::col("a")
            .mul(ScalarExpr::lit(2.0))
            .add(ScalarExpr::lit(1.0));
        assert!(matches!(e, ScalarExpr::Binary { op: BinOp::Add, .. }));
        let p = ScalarExpr::col("a")
            .gt(ScalarExpr::lit(0.0))
            .and(ScalarExpr::col("b").le(ScalarExpr::lit(9.0)));
        assert!(p.is_predicate());
        match p {
            ScalarExpr::And(v) => assert_eq!(v.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn agg_output_names() {
        assert_eq!(
            AggFunc::ExpectedSum("x".into()).output_name(),
            "expected_sum(x)"
        );
        assert_eq!(AggFunc::ExpectedCount.output_name(), "expected_count(*)");
        assert_eq!(AggFunc::Conf.output_name(), "conf()");
    }
}
