//! SQL lexer: a hand-written scanner producing a flat token stream.

use pip_core::{PipError, Result};

/// One SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized case-insensitively
    /// by the parser; the original spelling is preserved here).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal.
    Str(String),
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Dot (qualified names, e.g. `o.price`).
    Dot,
}

impl Token {
    /// Case-insensitive keyword check.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = sql.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // Line comment `--`
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(PipError::Sql("unexpected '!'".into()));
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(PipError::Sql("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        // Escaped quote ''
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &sql[start..i];
                let n: f64 = text
                    .parse()
                    .map_err(|_| PipError::Sql(format!("bad number '{text}'")))?;
                out.push(Token::Number(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_string()));
            }
            other => return Err(PipError::Sql(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let ts = tokenize("SELECT a, b*2 FROM t WHERE x >= 7;").unwrap();
        assert!(ts[0].is_kw("select"));
        assert_eq!(ts[1], Token::Ident("a".into()));
        assert_eq!(ts[2], Token::Comma);
        assert_eq!(ts[4], Token::Star);
        assert_eq!(ts[5], Token::Number(2.0));
        assert!(ts.contains(&Token::Ge));
        assert_eq!(*ts.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn strings_and_escapes() {
        let ts = tokenize("'Joe' 'O''Brien'").unwrap();
        assert_eq!(ts[0], Token::Str("Joe".into()));
        assert_eq!(ts[1], Token::Str("O'Brien".into()));
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn numbers() {
        let ts = tokenize("1 2.5 1e3 2.5e-2").unwrap();
        assert_eq!(
            ts,
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(1000.0),
                Token::Number(0.025)
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let ts = tokenize("< <= > >= = <> !=").unwrap();
        assert_eq!(
            ts,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let ts = tokenize("a -- comment here\n b").unwrap();
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn bad_characters_error() {
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
