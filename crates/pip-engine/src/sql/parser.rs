//! Recursive-descent SQL parser producing [`Statement`]s.
//!
//! Supported grammar (a pragmatic subset sufficient for every query in
//! the paper's evaluation):
//!
//! ```text
//! stmt      := create | drop | insert | select | explain | analyze
//! explain   := EXPLAIN [ANALYZE] select
//!            | EXPLAIN '(' option (',' option)* ')' select
//! option    := ANALYZE | FORMAT (TEXT | JSON)
//! analyze   := ANALYZE [name]        -- refresh optimizer statistics
//! create    := CREATE TABLE name '(' col type (',' col type)* ')'
//!            | CREATE INDEX name ON table '(' col ')'
//! drop      := DROP INDEX name
//! insert    := INSERT INTO name VALUES tuple (',' tuple)*
//! select    := SELECT target (',' target)* FROM from_item (',' from_item)*
//!              [WHERE pred] [GROUP BY col (',' col)*]
//! target    := '*' | expr [AS alias]
//! from_item := name
//! pred      := cmp (AND cmp)*
//! cmp       := expr (= | <> | < | <= | > | >=) expr
//! expr      := term ((+|-) term)*  ;  term := factor ((*|/) factor)*
//! factor    := number | string | name['.'name] | '(' expr ')' | '-'factor
//!            | func '(' args ')'
//! ```
//!
//! Qualified names `t.col` resolve to the bare column name (our engine
//! renames join duplicates to `col.right`, which can be referenced as a
//! quoted identifier is not supported — keep output names distinct).

use pip_core::{DataType, PipError, Result, Value};
use pip_expr::CmpOp;

use crate::plan::{AggFunc, Plan, PlanBuilder, ScalarExpr};
use crate::sql::lexer::{tokenize, Token};

/// Output format of an `EXPLAIN` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainFormat {
    /// Indented tree, one `plan` text row per line (default).
    Text,
    /// One row holding a single JSON document with the logical and
    /// physical trees, estimated and (under ANALYZE) actual rows.
    Json,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<(String, DataType)>,
    },
    /// `CREATE INDEX name ON table (column)` — ordered secondary index
    /// over one deterministic Int/Float column.
    CreateIndex {
        name: String,
        table: String,
        column: String,
    },
    /// `DROP INDEX name`.
    DropIndex {
        name: String,
    },
    Insert {
        table: String,
        rows: Vec<Vec<ScalarExpr>>,
    },
    Select(Plan),
    /// `EXPLAIN [ANALYZE] [(FORMAT JSON)] SELECT ...` — render the
    /// optimized logical and physical trees with cardinality estimates;
    /// with ANALYZE, execute and include per-operator rows-out and
    /// inclusive/exclusive wall time.
    Explain {
        plan: Plan,
        analyze: bool,
        format: ExplainFormat,
    },
    /// `ANALYZE [table]` — refresh optimizer statistics for one table
    /// (or all tables) and report what was collected.
    Analyze {
        table: Option<String>,
    },
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semicolon);
    if !p.at_end() {
        return Err(PipError::Sql(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| PipError::Sql("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(PipError::Sql(format!(
                "expected '{kw}', found {:?}",
                self.peek()
            )))
        }
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        if self.eat_if(&t) {
            Ok(())
        } else {
            Err(PipError::Sql(format!(
                "expected {t:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(PipError::Sql(format!("expected identifier, got {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("create") {
            if self.eat_kw("index") {
                return self.create_index();
            }
            self.expect_kw("table")?;
            return self.create_table();
        }
        if self.eat_kw("drop") {
            self.expect_kw("index")?;
            let name = self.ident()?;
            return Ok(Statement::DropIndex { name });
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            return self.insert();
        }
        if self.eat_kw("select") {
            return self.select();
        }
        if self.eat_kw("explain") {
            let mut analyze = false;
            let mut format = ExplainFormat::Text;
            if self.eat_if(&Token::LParen) {
                loop {
                    if self.eat_kw("analyze") {
                        analyze = true;
                    } else if self.eat_kw("format") {
                        if self.eat_kw("json") {
                            format = ExplainFormat::Json;
                        } else if self.eat_kw("text") {
                            format = ExplainFormat::Text;
                        } else {
                            return Err(PipError::Sql(format!(
                                "FORMAT expects TEXT or JSON, found {:?}",
                                self.peek()
                            )));
                        }
                    } else {
                        return Err(PipError::Sql(format!(
                            "unknown EXPLAIN option {:?} (ANALYZE, FORMAT TEXT|JSON)",
                            self.peek()
                        )));
                    }
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(Token::RParen)?;
            } else {
                analyze = self.eat_kw("analyze");
            }
            self.expect_kw("select")?;
            return match self.select()? {
                Statement::Select(plan) => Ok(Statement::Explain {
                    plan,
                    analyze,
                    format,
                }),
                other => unreachable!("select() returned {other:?}"),
            };
        }
        if self.eat_kw("analyze") {
            let table = match self.peek() {
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            };
            return Ok(Statement::Analyze { table });
        }
        Err(PipError::Sql(format!(
            "expected CREATE, DROP, INSERT, SELECT, EXPLAIN or ANALYZE, found {:?}",
            self.peek()
        )))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.ident()?;
            let dtype = match ty.to_ascii_lowercase().as_str() {
                "int" | "integer" | "bigint" => DataType::Int,
                "float" | "double" | "real" | "numeric" => DataType::Float,
                "text" | "varchar" | "string" => DataType::Str,
                "bool" | "boolean" => DataType::Bool,
                "symbolic" | "pvar" | "ctype" => DataType::Symbolic,
                other => return Err(PipError::Sql(format!("unknown type '{other}'"))),
            };
            columns.push((col, dtype));
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect(Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect(Token::LParen)?;
        let column = self.ident()?;
        self.expect(Token::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(Token::RParen)?;
            rows.push(row);
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<Statement> {
        // Targets.
        let mut star = false;
        let mut targets: Vec<(String, ScalarExpr)> = Vec::new();
        let mut aggs: Vec<AggFunc> = Vec::new();
        // Expression-valued aggregate arguments: computed by an injected
        // projection ahead of the aggregate node.
        let mut agg_projections: Vec<(String, ScalarExpr)> = Vec::new();
        let mut want_conf_column = false;
        loop {
            if self.eat_if(&Token::Star) {
                star = true;
            } else if let Some(agg) = self.try_aggregate(&mut agg_projections)? {
                if matches!(agg, AggFunc::Conf) && aggs.is_empty() {
                    // `conf()` without other aggregates and with plain
                    // targets is the row-level operator.
                    want_conf_column = true;
                }
                aggs.push(agg);
            } else {
                let e = self.expr()?;
                let name = if self.eat_kw("as") {
                    self.ident()?
                } else {
                    default_name(&e, targets.len())
                };
                targets.push((name, e));
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }

        self.expect_kw("from")?;
        let mut plan = PlanBuilder::scan(self.ident()?);
        while self.eat_if(&Token::Comma) {
            plan = plan.product(PlanBuilder::scan(self.ident()?));
        }

        if self.eat_kw("where") {
            let pred = self.predicate()?;
            plan = plan.select(pred)?;
        }

        let mut group_by: Vec<String> = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.qualified_ident()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }

        // ORDER BY col [ASC|DESC], ... and LIMIT n wrap the plan head.
        let mut order_by: Vec<(String, bool)> = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let col = self.qualified_ident()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((col, desc));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next()? {
                Token::Number(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as usize),
                other => {
                    return Err(PipError::Sql(format!(
                        "LIMIT expects a non-negative integer, got {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        let finish = move |mut plan: PlanBuilder| {
            if !order_by.is_empty() {
                let keys: Vec<(&str, bool)> =
                    order_by.iter().map(|(c, d)| (c.as_str(), *d)).collect();
                plan = plan.sort(keys);
            }
            if let Some(n) = limit {
                plan = plan.limit(n);
            }
            Statement::Select(plan.build())
        };

        // Lower to a plan head.
        let has_real_agg = aggs.iter().any(|a| !matches!(a, AggFunc::Conf));
        if has_real_agg || (!aggs.is_empty() && !star && targets.is_empty() && group_by.is_empty())
        {
            if !targets.is_empty() && group_by.is_empty() {
                return Err(PipError::Sql(
                    "non-aggregate targets require GROUP BY".into(),
                ));
            }
            // Expression arguments inside aggregates: materialize them
            // (plus the group keys) with a projection first.
            if !agg_projections.is_empty() {
                let mut proj: Vec<(String, ScalarExpr)> = group_by
                    .iter()
                    .map(|g| (g.clone(), ScalarExpr::col(g.clone())))
                    .collect();
                // Plain-column aggregate args must survive the projection
                // too.
                for a in &aggs {
                    if let AggFunc::ExpectedSum(c)
                    | AggFunc::ExpectedAvg(c)
                    | AggFunc::ExpectedMax { column: c, .. } = a
                    {
                        if !agg_projections.iter().any(|(n, _)| n == c)
                            && !proj.iter().any(|(n, _)| n == c)
                        {
                            proj.push((c.clone(), ScalarExpr::col(c.clone())));
                        }
                    }
                }
                proj.extend(agg_projections.iter().cloned());
                plan = plan.project(proj);
            }
            let keys: Vec<&str> = group_by.iter().map(String::as_str).collect();
            plan = plan.aggregate(keys, aggs);
            return Ok(finish(plan));
        }
        if want_conf_column {
            // Row-level conf(): project targets (if any), append conf.
            if !targets.is_empty() {
                plan = plan.project(targets);
            }
            plan = plan.conf();
            return Ok(finish(plan));
        }
        if !star && !targets.is_empty() {
            plan = plan.project(targets);
        }
        Ok(finish(plan))
    }

    /// Parse an aggregate argument: a bare column passes through; any
    /// other expression is registered for a pre-aggregate projection.
    fn agg_arg(&mut self, agg_projections: &mut Vec<(String, ScalarExpr)>) -> Result<String> {
        let e = self.expr()?;
        if let ScalarExpr::Column(c) = &e {
            return Ok(c.clone());
        }
        let name = format!("agg_arg{}", agg_projections.len());
        agg_projections.push((name.clone(), e));
        Ok(name)
    }

    /// Try to parse an aggregate call at the cursor.
    fn try_aggregate(
        &mut self,
        agg_projections: &mut Vec<(String, ScalarExpr)>,
    ) -> Result<Option<AggFunc>> {
        let (is_agg, name) = match self.peek() {
            Some(Token::Ident(s)) => {
                let lower = s.to_ascii_lowercase();
                let is = matches!(
                    lower.as_str(),
                    "expected_sum" | "expected_count" | "expected_avg" | "expected_max" | "conf"
                ) && self.tokens.get(self.pos + 1) == Some(&Token::LParen);
                (is, lower)
            }
            _ => (false, String::new()),
        };
        if !is_agg {
            return Ok(None);
        }
        self.pos += 2; // name + '('
        let agg = match name.as_str() {
            "conf" => {
                self.expect(Token::RParen)?;
                return Ok(Some(AggFunc::Conf));
            }
            "expected_count" => {
                self.eat_if(&Token::Star);
                self.expect(Token::RParen)?;
                AggFunc::ExpectedCount
            }
            "expected_sum" => {
                let col = self.agg_arg(agg_projections)?;
                self.expect(Token::RParen)?;
                AggFunc::ExpectedSum(col)
            }
            "expected_avg" => {
                let col = self.agg_arg(agg_projections)?;
                self.expect(Token::RParen)?;
                AggFunc::ExpectedAvg(col)
            }
            "expected_max" => {
                let col = self.agg_arg(agg_projections)?;
                let precision = if self.eat_if(&Token::Comma) {
                    match self.next()? {
                        Token::Number(n) => n,
                        other => {
                            return Err(PipError::Sql(format!(
                                "expected_max precision must be a number, got {other:?}"
                            )))
                        }
                    }
                } else {
                    0.0
                };
                self.expect(Token::RParen)?;
                AggFunc::ExpectedMax {
                    column: col,
                    precision,
                }
            }
            _ => unreachable!(),
        };
        Ok(Some(agg))
    }

    /// `name` or `qualifier.name` (qualifier discarded, see module docs).
    fn qualified_ident(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.eat_if(&Token::Dot) {
            self.ident()
        } else {
            Ok(first)
        }
    }

    fn predicate(&mut self) -> Result<ScalarExpr> {
        let mut acc = self.comparison()?;
        while self.eat_kw("and") {
            acc = acc.and(self.comparison()?);
        }
        Ok(acc)
    }

    fn comparison(&mut self) -> Result<ScalarExpr> {
        let left = self.expr()?;
        let op = match self.next()? {
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            other => {
                return Err(PipError::Sql(format!(
                    "expected comparison operator, got {other:?}"
                )))
            }
        };
        let right = self.expr()?;
        Ok(left.cmp(op, right))
    }

    fn expr(&mut self) -> Result<ScalarExpr> {
        let mut acc = self.term()?;
        loop {
            if self.eat_if(&Token::Plus) {
                acc = acc.add(self.term()?);
            } else if self.eat_if(&Token::Minus) {
                acc = acc.sub(self.term()?);
            } else {
                return Ok(acc);
            }
        }
    }

    fn term(&mut self) -> Result<ScalarExpr> {
        let mut acc = self.factor()?;
        loop {
            if self.eat_if(&Token::Star) {
                acc = acc.mul(self.factor()?);
            } else if self.eat_if(&Token::Slash) {
                acc = acc.div(self.factor()?);
            } else {
                return Ok(acc);
            }
        }
    }

    fn factor(&mut self) -> Result<ScalarExpr> {
        match self.next()? {
            Token::Number(n) => Ok(ScalarExpr::lit(n)),
            Token::Str(s) => Ok(ScalarExpr::Literal(Value::str(s))),
            Token::Minus => Ok(ScalarExpr::Neg(Box::new(self.factor()?))),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                // Function call?
                if self.peek() == Some(&Token::LParen) {
                    if name.eq_ignore_ascii_case("create_variable") {
                        self.pos += 1;
                        let class = match self.next()? {
                            Token::Str(s) => s,
                            other => {
                                return Err(PipError::Sql(format!(
                                    "create_variable: first argument must be a class name string, got {other:?}"
                                )))
                            }
                        };
                        let mut params = Vec::new();
                        while self.eat_if(&Token::Comma) {
                            match self.next()? {
                                Token::Number(n) => params.push(n),
                                Token::Minus => match self.next()? {
                                    Token::Number(n) => params.push(-n),
                                    other => {
                                        return Err(PipError::Sql(format!(
                                            "create_variable: bad parameter {other:?}"
                                        )))
                                    }
                                },
                                other => {
                                    return Err(PipError::Sql(format!(
                                        "create_variable: parameters must be numeric, got {other:?}"
                                    )))
                                }
                            }
                        }
                        self.expect(Token::RParen)?;
                        return Ok(ScalarExpr::CreateVariable { class, params });
                    }
                    return Err(PipError::Sql(format!("unknown function '{name}'")));
                }
                // Qualified column?
                if self.eat_if(&Token::Dot) {
                    let col = self.ident()?;
                    return Ok(ScalarExpr::col(col));
                }
                Ok(ScalarExpr::col(name))
            }
            other => Err(PipError::Sql(format!("unexpected token {other:?}"))),
        }
    }
}

/// Derive an output name for an unaliased target.
fn default_name(e: &ScalarExpr, idx: usize) -> String {
    match e {
        ScalarExpr::Column(c) => c.clone(),
        _ => format!("col{idx}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse("CREATE TABLE t (a INT, b TEXT, c SYMBOLIC);").unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[2].1, DataType::Symbolic);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse("CREATE TABLE t (a BLOB)").is_err());
    }

    #[test]
    fn create_and_drop_index() {
        assert_eq!(
            parse("CREATE INDEX idx_price ON orders (price);").unwrap(),
            Statement::CreateIndex {
                name: "idx_price".into(),
                table: "orders".into(),
                column: "price".into(),
            }
        );
        assert_eq!(
            parse("DROP INDEX idx_price").unwrap(),
            Statement::DropIndex {
                name: "idx_price".into()
            }
        );
        // Single-column only; missing pieces are syntax errors.
        assert!(parse("CREATE INDEX i ON t (a, b)").is_err());
        assert!(parse("CREATE INDEX i ON t").is_err());
        assert!(parse("CREATE INDEX ON t (a)").is_err());
        assert!(parse("DROP TABLE t").is_err());
        assert!(parse("DROP INDEX").is_err());
    }

    #[test]
    fn insert_rows() {
        let s = parse("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0].len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_with_create_variable() {
        let s = parse("INSERT INTO t VALUES ('Joe', create_variable('Normal', 100, -10))");
        match s.unwrap() {
            Statement::Insert { rows, .. } => match &rows[0][1] {
                ScalarExpr::CreateVariable { class, params } => {
                    assert_eq!(class, "Normal");
                    assert_eq!(params, &vec![100.0, -10.0]);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_with_where_and_group_by() {
        let s = parse(
            "SELECT region, expected_sum(amount) FROM sales \
             WHERE amount > 0 AND region = 'east' GROUP BY region",
        )
        .unwrap();
        match s {
            Statement::Select(Plan::Aggregate { group_by, aggs, .. }) => {
                assert_eq!(group_by, vec!["region"]);
                assert_eq!(aggs, vec![AggFunc::ExpectedSum("amount".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn select_star_cross_join() {
        let s = parse("SELECT * FROM a, b WHERE x = y").unwrap();
        match s {
            Statement::Select(Plan::Select { input, .. }) => {
                assert!(matches!(*input, Plan::Product { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn row_level_conf() {
        let s = parse("SELECT dest, conf() FROM shipping WHERE duration >= 7").unwrap();
        match s {
            Statement::Select(Plan::Conf(inner)) => {
                assert!(matches!(*inner, Plan::Project { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expected_max_with_precision() {
        let s = parse("SELECT expected_max(v, 0.1) FROM t").unwrap();
        match s {
            Statement::Select(Plan::Aggregate { aggs, .. }) => assert_eq!(
                aggs,
                vec![AggFunc::ExpectedMax {
                    column: "v".into(),
                    precision: 0.1
                }]
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn qualified_names_resolve_to_bare_columns() {
        let s = parse("SELECT o.price FROM orders WHERE o.cust = 'Joe'").unwrap();
        match s {
            Statement::Select(Plan::Project { exprs, .. }) => {
                assert_eq!(exprs[0].1, ScalarExpr::col("price"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = parse("SELECT a + b * 2 AS v FROM t").unwrap();
        match s {
            Statement::Select(Plan::Project { exprs, .. }) => {
                // a + (b*2)
                match &exprs[0].1 {
                    ScalarExpr::Binary { op, right, .. } => {
                        assert_eq!(*op, pip_expr::BinOp::Add);
                        assert!(matches!(
                            **right,
                            ScalarExpr::Binary {
                                op: pip_expr::BinOp::Mul,
                                ..
                            }
                        ));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn explain_statements() {
        let s = parse("EXPLAIN SELECT * FROM t WHERE a > 0").unwrap();
        match s {
            Statement::Explain {
                analyze,
                plan,
                format,
            } => {
                assert!(!analyze);
                assert_eq!(format, ExplainFormat::Text);
                assert!(matches!(plan, Plan::Select { .. }));
            }
            other => panic!("{other:?}"),
        }
        let s = parse("EXPLAIN ANALYZE SELECT expected_sum(a) FROM t").unwrap();
        match s {
            Statement::Explain { analyze, plan, .. } => {
                assert!(analyze);
                assert!(matches!(plan, Plan::Aggregate { .. }));
            }
            other => panic!("{other:?}"),
        }
        // EXPLAIN applies to SELECT only.
        assert!(parse("EXPLAIN CREATE TABLE t (a INT)").is_err());
        assert!(parse("EXPLAIN ANALYZE").is_err());
    }

    #[test]
    fn explain_option_lists() {
        let s = parse("EXPLAIN (FORMAT JSON) SELECT * FROM t").unwrap();
        match s {
            Statement::Explain {
                analyze, format, ..
            } => {
                assert!(!analyze);
                assert_eq!(format, ExplainFormat::Json);
            }
            other => panic!("{other:?}"),
        }
        let s = parse("EXPLAIN (ANALYZE, FORMAT JSON) SELECT * FROM t").unwrap();
        match s {
            Statement::Explain {
                analyze, format, ..
            } => {
                assert!(analyze);
                assert_eq!(format, ExplainFormat::Json);
            }
            other => panic!("{other:?}"),
        }
        let s = parse("EXPLAIN (ANALYZE, FORMAT TEXT) SELECT * FROM t").unwrap();
        assert!(matches!(
            s,
            Statement::Explain {
                analyze: true,
                format: ExplainFormat::Text,
                ..
            }
        ));
        assert!(parse("EXPLAIN (FORMAT XML) SELECT * FROM t").is_err());
        assert!(parse("EXPLAIN (VERBOSE) SELECT * FROM t").is_err());
    }

    #[test]
    fn analyze_statements() {
        assert_eq!(
            parse("ANALYZE").unwrap(),
            Statement::Analyze { table: None }
        );
        assert_eq!(
            parse("ANALYZE orders;").unwrap(),
            Statement::Analyze {
                table: Some("orders".into())
            }
        );
        assert!(parse("ANALYZE orders extra").is_err());
    }

    #[test]
    fn error_cases() {
        assert!(parse("DELETE FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT expected_sum(a) , b FROM t").is_err());
        assert!(parse("SELECT a FROM t extra junk").is_err());
    }
}
