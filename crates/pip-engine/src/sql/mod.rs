//! SQL front-end: lexer, parser, and statement execution.
//!
//! ```
//! use pip_engine::{Database, sql};
//! use pip_sampling::SamplerConfig;
//!
//! let db = Database::new();
//! let cfg = SamplerConfig::default();
//! sql::run(&db, "CREATE TABLE orders (cust TEXT, price SYMBOLIC)", &cfg).unwrap();
//! sql::run(
//!     &db,
//!     "INSERT INTO orders VALUES ('Joe', create_variable('Normal', 100, 10))",
//!     &cfg,
//! )
//! .unwrap();
//! let r = sql::run(&db, "SELECT expected_sum(price) FROM orders", &cfg).unwrap();
//! let v = pip_engine::scalar_result(&r).unwrap();
//! assert!((v - 100.0).abs() < 1e-9);
//! ```

pub mod lexer;
pub mod parser;

use pip_core::{Column, Result, Schema};
use pip_expr::Equation;
use pip_sampling::SamplerConfig;

use pip_ctable::{CRow, CTable};

use crate::catalog::Database;
use crate::exec::execute;
use crate::rewrite::compile_scalar;

pub use parser::{parse, Statement};

/// Parse and run one SQL statement. DDL/DML return an empty table;
/// SELECT returns its result.
pub fn run(db: &Database, sql: &str, cfg: &SamplerConfig) -> Result<CTable> {
    run_statement(db, parse(sql)?, cfg)
}

/// Run an already-parsed statement (the server's prepared-statement path
/// parses once and executes many times).
pub fn run_statement(db: &Database, stmt: Statement, cfg: &SamplerConfig) -> Result<CTable> {
    match stmt {
        Statement::CreateTable { name, columns } => {
            let schema = Schema::new(
                columns
                    .into_iter()
                    .map(|(n, t)| Column::new(n, t))
                    .collect(),
            )?;
            db.create_table(&name, schema)?;
            Ok(CTable::empty(Schema::empty()))
        }
        Statement::Insert { table, rows } => {
            let schema = db.table(&table)?.schema().clone();
            let empty_cells: Vec<Equation> = Vec::new();
            let mut crows = Vec::with_capacity(rows.len());
            for row in rows {
                let cells = row
                    .iter()
                    .map(|e| {
                        // INSERT expressions see no input columns.
                        compile_scalar(e, &Schema::empty(), &empty_cells, db)
                            .map(|eq| eq.simplify())
                    })
                    .collect::<Result<Vec<_>>>()?;
                if cells.len() != schema.len() {
                    return Err(pip_core::PipError::Sql(format!(
                        "INSERT arity {} does not match table '{}' ({})",
                        cells.len(),
                        table,
                        schema.len()
                    )));
                }
                crows.push(CRow::unconditional(cells));
            }
            db.insert_rows(&table, crows)?;
            Ok(CTable::empty(Schema::empty()))
        }
        Statement::Select(plan) => {
            let plan = crate::optimize::optimize(db, plan)?;
            execute(db, &plan, cfg)
        }
        Statement::Explain { plan, analyze } => explain_statement(db, plan, analyze, cfg),
    }
}

/// Run `EXPLAIN [ANALYZE]`: one `plan` text row per tree line — the
/// optimized logical plan, then the physical operator tree (with
/// per-operator rows-out and wall time under ANALYZE, which executes
/// the query to measure them).
fn explain_statement(
    db: &Database,
    plan: crate::plan::Plan,
    analyze: bool,
    cfg: &SamplerConfig,
) -> Result<CTable> {
    let plan = crate::optimize::optimize(db, plan)?;
    let mut lines: Vec<String> = Vec::new();
    lines.push("-- logical plan --".to_string());
    lines.extend(plan.explain().lines().map(String::from));
    let mut phys = crate::physical::lower(db, &plan, cfg)?;
    if analyze {
        let t0 = std::time::Instant::now();
        let result = phys.collect()?;
        let total = t0.elapsed().as_secs_f64();
        let sample_secs: f64 = phys
            .profiles()
            .iter()
            .filter(|p| p.sampling)
            .map(|p| p.exclusive_secs)
            .sum();
        lines.push("-- physical plan (analyzed) --".to_string());
        lines.extend(phys.explain(true).lines().map(String::from));
        lines.push(format!(
            "-- {} result rows; query phase {:.6}s, sample phase {:.6}s --",
            result.len(),
            (total - sample_secs).max(0.0),
            sample_secs
        ));
    } else {
        lines.push("-- physical plan --".to_string());
        lines.extend(phys.explain(false).lines().map(String::from));
    }
    let mut out = CTable::empty(Schema::new(vec![Column::new(
        "plan".to_string(),
        pip_core::DataType::Str,
    )])?);
    for line in lines {
        out.push(CRow::unconditional(vec![Equation::val(
            pip_core::Value::str(line),
        )]))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scalar_result;
    use pip_dist::special;

    fn db_with_orders() -> (Database, SamplerConfig) {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        run(
            &db,
            "CREATE TABLE orders (cust TEXT, ship_to TEXT, price SYMBOLIC)",
            &cfg,
        )
        .unwrap();
        run(
            &db,
            "CREATE TABLE shipping (dest TEXT, duration SYMBOLIC)",
            &cfg,
        )
        .unwrap();
        run(
            &db,
            "INSERT INTO orders VALUES \
             ('Joe', 'NY', create_variable('Normal', 100, 10)), \
             ('Bob', 'LA', create_variable('Normal', 50, 5))",
            &cfg,
        )
        .unwrap();
        run(
            &db,
            "INSERT INTO shipping VALUES \
             ('NY', create_variable('Normal', 5, 2)), \
             ('LA', create_variable('Normal', 9, 2))",
            &cfg,
        )
        .unwrap();
        (db, cfg)
    }

    #[test]
    fn full_paper_query_via_sql() {
        let (db, cfg) = db_with_orders();
        let r = run(
            &db,
            "SELECT expected_sum(price) FROM orders, shipping \
             WHERE ship_to = dest AND cust = 'Joe' AND duration >= 7",
            &cfg,
        )
        .unwrap();
        let v = scalar_result(&r).unwrap();
        let truth = 100.0 * (1.0 - special::normal_cdf(1.0));
        assert!((v - truth).abs() < 2.0, "{v} vs {truth}");
    }

    #[test]
    fn ddl_dml_select_round_trip() {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        run(&db, "CREATE TABLE t (a INT, b FLOAT)", &cfg).unwrap();
        run(&db, "INSERT INTO t VALUES (1, 2.5), (2, 3.5)", &cfg).unwrap();
        let r = run(&db, "SELECT expected_sum(b) FROM t", &cfg).unwrap();
        assert_eq!(scalar_result(&r).unwrap(), 6.0);
        // Arity mismatch caught.
        assert!(run(&db, "INSERT INTO t VALUES (1)", &cfg).is_err());
        // Unknown table caught.
        assert!(run(&db, "SELECT * FROM ghost", &cfg).is_err());
    }

    #[test]
    fn conf_query_via_sql() {
        let (db, cfg) = db_with_orders();
        let r = run(
            &db,
            "SELECT dest, conf() FROM shipping WHERE duration >= 7",
            &cfg,
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let p_ny = r.rows()[0].cells[1].as_const().unwrap().as_f64().unwrap();
        assert!((p_ny - (1.0 - special::normal_cdf(1.0))).abs() < 1e-3);
    }

    #[test]
    fn explain_and_explain_analyze_via_sql() {
        let (db, cfg) = db_with_orders();
        let q = "SELECT expected_sum(price) FROM orders, shipping \
                 WHERE ship_to = dest AND duration >= 7";
        let t = run(&db, &format!("EXPLAIN {q}"), &cfg).unwrap();
        let text: Vec<String> = t
            .rows()
            .iter()
            .map(|r| r.cells[0].as_const().unwrap().as_str().unwrap().to_string())
            .collect();
        let text = text.join("\n");
        assert!(text.contains("-- logical plan --"), "{text}");
        assert!(text.contains("-- physical plan --"), "{text}");
        assert!(text.contains("Scan: orders"), "{text}");
        // Plain EXPLAIN does not execute: no row counts.
        assert!(!text.contains("rows="), "{text}");

        let t = run(&db, &format!("EXPLAIN ANALYZE {q}"), &cfg).unwrap();
        let text: Vec<String> = t
            .rows()
            .iter()
            .map(|r| r.cells[0].as_const().unwrap().as_str().unwrap().to_string())
            .collect();
        let text = text.join("\n");
        assert!(text.contains("-- physical plan (analyzed) --"), "{text}");
        assert!(text.contains("rows="), "{text}");
        assert!(text.contains("sample phase"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn group_by_via_sql() {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        run(&db, "CREATE TABLE s (region TEXT, amount FLOAT)", &cfg).unwrap();
        run(
            &db,
            "INSERT INTO s VALUES ('e', 10), ('e', 20), ('w', 5)",
            &cfg,
        )
        .unwrap();
        let r = run(
            &db,
            "SELECT region, expected_sum(amount), expected_count(*) FROM s GROUP BY region",
            &cfg,
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }
}
