//! SQL front-end: lexer, parser, and statement execution.
//!
//! ```
//! use pip_engine::{Database, sql};
//! use pip_sampling::SamplerConfig;
//!
//! let db = Database::new();
//! let cfg = SamplerConfig::default();
//! sql::run(&db, "CREATE TABLE orders (cust TEXT, price SYMBOLIC)", &cfg).unwrap();
//! sql::run(
//!     &db,
//!     "INSERT INTO orders VALUES ('Joe', create_variable('Normal', 100, 10))",
//!     &cfg,
//! )
//! .unwrap();
//! let r = sql::run(&db, "SELECT expected_sum(price) FROM orders", &cfg).unwrap();
//! let v = pip_engine::scalar_result(&r).unwrap();
//! assert!((v - 100.0).abs() < 1e-9);
//! ```

pub mod lexer;
pub mod parser;

use pip_core::{Column, Result, Schema};
use pip_expr::Equation;
use pip_sampling::SamplerConfig;

use pip_ctable::{CRow, CTable};

use crate::catalog::Database;
use crate::exec::execute;
use crate::rewrite::compile_scalar;

pub use parser::{parse, Statement};

/// Parse and run one SQL statement. DDL/DML return an empty table;
/// SELECT returns its result.
pub fn run(db: &Database, sql: &str, cfg: &SamplerConfig) -> Result<CTable> {
    run_statement(db, parse(sql)?, cfg)
}

/// Run an already-parsed statement (the server's prepared-statement path
/// parses once and executes many times).
pub fn run_statement(db: &Database, stmt: Statement, cfg: &SamplerConfig) -> Result<CTable> {
    match stmt {
        Statement::CreateTable { name, columns } => {
            let schema = Schema::new(
                columns
                    .into_iter()
                    .map(|(n, t)| Column::new(n, t))
                    .collect(),
            )?;
            db.create_table(&name, schema)?;
            Ok(CTable::empty(Schema::empty()))
        }
        Statement::Insert { table, rows } => {
            let schema = db.table(&table)?.schema().clone();
            let empty_cells: Vec<Equation> = Vec::new();
            let mut crows = Vec::with_capacity(rows.len());
            for row in rows {
                let cells = row
                    .iter()
                    .map(|e| {
                        // INSERT expressions see no input columns.
                        compile_scalar(e, &Schema::empty(), &empty_cells, db)
                            .map(|eq| eq.simplify())
                    })
                    .collect::<Result<Vec<_>>>()?;
                if cells.len() != schema.len() {
                    return Err(pip_core::PipError::Sql(format!(
                        "INSERT arity {} does not match table '{}' ({})",
                        cells.len(),
                        table,
                        schema.len()
                    )));
                }
                crows.push(CRow::unconditional(cells));
            }
            db.insert_rows(&table, crows)?;
            Ok(CTable::empty(Schema::empty()))
        }
        Statement::Select(plan) => {
            let plan = crate::optimize::optimize(db, plan)?;
            execute(db, &plan, cfg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scalar_result;
    use pip_dist::special;

    fn db_with_orders() -> (Database, SamplerConfig) {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        run(
            &db,
            "CREATE TABLE orders (cust TEXT, ship_to TEXT, price SYMBOLIC)",
            &cfg,
        )
        .unwrap();
        run(
            &db,
            "CREATE TABLE shipping (dest TEXT, duration SYMBOLIC)",
            &cfg,
        )
        .unwrap();
        run(
            &db,
            "INSERT INTO orders VALUES \
             ('Joe', 'NY', create_variable('Normal', 100, 10)), \
             ('Bob', 'LA', create_variable('Normal', 50, 5))",
            &cfg,
        )
        .unwrap();
        run(
            &db,
            "INSERT INTO shipping VALUES \
             ('NY', create_variable('Normal', 5, 2)), \
             ('LA', create_variable('Normal', 9, 2))",
            &cfg,
        )
        .unwrap();
        (db, cfg)
    }

    #[test]
    fn full_paper_query_via_sql() {
        let (db, cfg) = db_with_orders();
        let r = run(
            &db,
            "SELECT expected_sum(price) FROM orders, shipping \
             WHERE ship_to = dest AND cust = 'Joe' AND duration >= 7",
            &cfg,
        )
        .unwrap();
        let v = scalar_result(&r).unwrap();
        let truth = 100.0 * (1.0 - special::normal_cdf(1.0));
        assert!((v - truth).abs() < 2.0, "{v} vs {truth}");
    }

    #[test]
    fn ddl_dml_select_round_trip() {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        run(&db, "CREATE TABLE t (a INT, b FLOAT)", &cfg).unwrap();
        run(&db, "INSERT INTO t VALUES (1, 2.5), (2, 3.5)", &cfg).unwrap();
        let r = run(&db, "SELECT expected_sum(b) FROM t", &cfg).unwrap();
        assert_eq!(scalar_result(&r).unwrap(), 6.0);
        // Arity mismatch caught.
        assert!(run(&db, "INSERT INTO t VALUES (1)", &cfg).is_err());
        // Unknown table caught.
        assert!(run(&db, "SELECT * FROM ghost", &cfg).is_err());
    }

    #[test]
    fn conf_query_via_sql() {
        let (db, cfg) = db_with_orders();
        let r = run(
            &db,
            "SELECT dest, conf() FROM shipping WHERE duration >= 7",
            &cfg,
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let p_ny = r.rows()[0].cells[1].as_const().unwrap().as_f64().unwrap();
        assert!((p_ny - (1.0 - special::normal_cdf(1.0))).abs() < 1e-3);
    }

    #[test]
    fn group_by_via_sql() {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        run(&db, "CREATE TABLE s (region TEXT, amount FLOAT)", &cfg).unwrap();
        run(
            &db,
            "INSERT INTO s VALUES ('e', 10), ('e', 20), ('w', 5)",
            &cfg,
        )
        .unwrap();
        let r = run(
            &db,
            "SELECT region, expected_sum(amount), expected_count(*) FROM s GROUP BY region",
            &cfg,
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }
}
