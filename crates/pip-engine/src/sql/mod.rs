//! SQL front-end: lexer, parser, and statement execution.
//!
//! ```
//! use pip_engine::{Database, sql};
//! use pip_sampling::SamplerConfig;
//!
//! let db = Database::new();
//! let cfg = SamplerConfig::default();
//! sql::run(&db, "CREATE TABLE orders (cust TEXT, price SYMBOLIC)", &cfg).unwrap();
//! sql::run(
//!     &db,
//!     "INSERT INTO orders VALUES ('Joe', create_variable('Normal', 100, 10))",
//!     &cfg,
//! )
//! .unwrap();
//! let r = sql::run(&db, "SELECT expected_sum(price) FROM orders", &cfg).unwrap();
//! let v = pip_engine::scalar_result(&r).unwrap();
//! assert!((v - 100.0).abs() < 1e-9);
//! ```

pub mod lexer;
pub mod parser;

use pip_core::{Column, Result, Schema};
use pip_expr::Equation;
use pip_sampling::SamplerConfig;

use pip_ctable::{CRow, CTable};

use crate::catalog::Database;
use crate::exec::execute;
use crate::rewrite::compile_scalar;

pub use parser::{parse, ExplainFormat, Statement};

/// Parse and run one SQL statement. DDL/DML return an empty table;
/// SELECT returns its result.
pub fn run(db: &Database, sql: &str, cfg: &SamplerConfig) -> Result<CTable> {
    let start = std::time::Instant::now();
    let stmt = parse(sql)?;
    db.metrics().parse_seconds.observe_since(start);
    run_statement(db, stmt, cfg)
}

/// Run an already-parsed statement (the server's prepared-statement path
/// parses once and executes many times).
pub fn run_statement(db: &Database, stmt: Statement, cfg: &SamplerConfig) -> Result<CTable> {
    match stmt {
        Statement::CreateTable { name, columns } => {
            let schema = Schema::new(
                columns
                    .into_iter()
                    .map(|(n, t)| Column::new(n, t))
                    .collect(),
            )?;
            db.create_table(&name, schema)?;
            Ok(CTable::empty(Schema::empty()))
        }
        Statement::CreateIndex {
            name,
            table,
            column,
        } => {
            db.create_index(&name, &table, &column)?;
            Ok(CTable::empty(Schema::empty()))
        }
        Statement::DropIndex { name } => {
            db.drop_index(&name)?;
            Ok(CTable::empty(Schema::empty()))
        }
        Statement::Insert { table, rows } => {
            let schema = db.table(&table)?.schema().clone();
            let empty_cells: Vec<Equation> = Vec::new();
            let mut crows = Vec::with_capacity(rows.len());
            for row in rows {
                let cells = row
                    .iter()
                    .map(|e| {
                        // INSERT expressions see no input columns.
                        compile_scalar(e, &Schema::empty(), &empty_cells, db)
                            .map(|eq| eq.simplify())
                    })
                    .collect::<Result<Vec<_>>>()?;
                if cells.len() != schema.len() {
                    return Err(pip_core::PipError::Sql(format!(
                        "INSERT arity {} does not match table '{}' ({})",
                        cells.len(),
                        table,
                        schema.len()
                    )));
                }
                crows.push(CRow::unconditional(cells));
            }
            db.insert_rows(&table, crows)?;
            Ok(CTable::empty(Schema::empty()))
        }
        Statement::Select(plan) => {
            let plan = crate::optimize::optimize(db, plan)?;
            execute(db, &plan, cfg)
        }
        Statement::Explain {
            plan,
            analyze,
            format,
        } => explain_statement(db, plan, analyze, format, cfg),
        Statement::Analyze { table } => analyze_statement(db, table),
    }
}

/// Run `ANALYZE [table]`: refresh optimizer statistics and report one
/// row per analyzed table.
fn analyze_statement(db: &Database, table: Option<String>) -> Result<CTable> {
    let stats = match table {
        Some(t) => vec![db.analyze_table(&t)?],
        None => db.analyze_all()?,
    };
    let schema = Schema::new(vec![
        Column::new("table", pip_core::DataType::Str),
        Column::new("rows", pip_core::DataType::Int),
        Column::new("columns", pip_core::DataType::Int),
        Column::new("symbolic_cells", pip_core::DataType::Int),
        Column::new("conditional_rows", pip_core::DataType::Int),
    ])?;
    let mut out = CTable::empty(schema);
    for s in stats {
        let symbolic: u64 = s.columns.iter().map(|c| c.n_symbolic).sum();
        out.push(CRow::unconditional(vec![
            Equation::val(pip_core::Value::str(s.table.clone())),
            Equation::val(s.rows as i64),
            Equation::val(s.columns.len() as i64),
            Equation::val(symbolic as i64),
            Equation::val(s.conditional_rows as i64),
        ]))?;
    }
    Ok(out)
}

/// JSON shape of one logical plan node (`EXPLAIN (FORMAT JSON)`).
#[derive(serde::Serialize)]
struct LogicalJson {
    op: String,
    /// Estimated output rows (`null` when estimation failed).
    est_rows: f64,
    children: Vec<LogicalJson>,
}

fn logical_json(db: &Database, plan: &crate::plan::Plan) -> LogicalJson {
    LogicalJson {
        op: plan.label(),
        est_rows: crate::stats::estimate(db, plan)
            .map(|e| e.rows)
            .unwrap_or(f64::NAN),
        children: plan
            .children()
            .iter()
            .map(|c| logical_json(db, c))
            .collect(),
    }
}

/// JSON shape of one physical operator (`EXPLAIN (FORMAT JSON)`).
#[derive(serde::Serialize)]
struct PhysicalJson {
    op: String,
    /// Estimated output rows (`null` when estimation failed).
    est_rows: f64,
    rows: u64,
    total_secs: f64,
    self_secs: f64,
    sampling: bool,
    children: Vec<PhysicalJson>,
}

/// Rebuild the operator tree from the pre-order profile list.
fn physical_json(profiles: &[crate::physical::OpProfile], i: &mut usize) -> PhysicalJson {
    let p = &profiles[*i];
    let depth = p.depth;
    *i += 1;
    let mut node = PhysicalJson {
        op: p.name.clone(),
        est_rows: p.est_rows.unwrap_or(f64::NAN),
        rows: p.rows_out,
        total_secs: p.secs,
        self_secs: p.exclusive_secs,
        sampling: p.sampling,
        children: Vec::new(),
    };
    while *i < profiles.len() && profiles[*i].depth == depth + 1 {
        node.children.push(physical_json(profiles, i));
    }
    node
}

/// The whole `EXPLAIN (FORMAT JSON)` document.
#[derive(serde::Serialize)]
struct ExplainJson {
    analyzed: bool,
    result_rows: u64,
    query_secs: f64,
    sample_secs: f64,
    logical: LogicalJson,
    physical: PhysicalJson,
}

/// Run `EXPLAIN [ANALYZE] [(FORMAT ...)]`. Text format emits one `plan`
/// text row per tree line — the optimized logical plan with `est_rows`
/// estimates, then the physical operator tree (per-operator estimated
/// rows, and under ANALYZE — which executes the query — actual rows-out
/// plus inclusive `total` and exclusive `self` wall time). JSON format
/// emits a single row holding one machine-readable document with both
/// trees.
fn explain_statement(
    db: &Database,
    plan: crate::plan::Plan,
    analyze: bool,
    format: ExplainFormat,
    cfg: &SamplerConfig,
) -> Result<CTable> {
    let plan = crate::optimize::optimize(db, plan)?;
    let mut phys = crate::physical::lower_annotated(db, &plan, cfg)?;
    let mut result_rows = 0u64;
    let mut query_secs = 0.0;
    let mut sample_secs = 0.0;
    if analyze {
        let t0 = std::time::Instant::now();
        let result = phys.collect()?;
        let total = t0.elapsed().as_secs_f64();
        sample_secs = phys
            .profiles()
            .iter()
            .filter(|p| p.sampling)
            .map(|p| p.exclusive_secs)
            .sum();
        query_secs = (total - sample_secs).max(0.0);
        result_rows = result.len() as u64;
    }

    let lines: Vec<String> = match format {
        ExplainFormat::Json => {
            let doc = ExplainJson {
                analyzed: analyze,
                result_rows,
                query_secs,
                sample_secs,
                logical: logical_json(db, &plan),
                physical: physical_json(&phys.profiles(), &mut 0),
            };
            vec![serde_json::to_string(&doc)
                .map_err(|e| pip_core::PipError::Eval(format!("explain json: {e}")))?]
        }
        ExplainFormat::Text => {
            let mut lines = Vec::new();
            lines.push("-- logical plan --".to_string());
            lines.extend(
                crate::stats::explain_estimated(db, &plan)
                    .lines()
                    .map(String::from),
            );
            if analyze {
                lines.push("-- physical plan (analyzed) --".to_string());
                lines.extend(phys.explain(true).lines().map(String::from));
                lines.push(format!(
                    "-- {result_rows} result rows; query phase {query_secs:.6}s, \
                     sample phase {sample_secs:.6}s --"
                ));
            } else {
                lines.push("-- physical plan --".to_string());
                lines.extend(phys.explain(false).lines().map(String::from));
            }
            lines
        }
    };
    let mut out = CTable::empty(Schema::new(vec![Column::new(
        "plan".to_string(),
        pip_core::DataType::Str,
    )])?);
    for line in lines {
        out.push(CRow::unconditional(vec![Equation::val(
            pip_core::Value::str(line),
        )]))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::scalar_result;
    use pip_dist::special;

    fn db_with_orders() -> (Database, SamplerConfig) {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        run(
            &db,
            "CREATE TABLE orders (cust TEXT, ship_to TEXT, price SYMBOLIC)",
            &cfg,
        )
        .unwrap();
        run(
            &db,
            "CREATE TABLE shipping (dest TEXT, duration SYMBOLIC)",
            &cfg,
        )
        .unwrap();
        run(
            &db,
            "INSERT INTO orders VALUES \
             ('Joe', 'NY', create_variable('Normal', 100, 10)), \
             ('Bob', 'LA', create_variable('Normal', 50, 5))",
            &cfg,
        )
        .unwrap();
        run(
            &db,
            "INSERT INTO shipping VALUES \
             ('NY', create_variable('Normal', 5, 2)), \
             ('LA', create_variable('Normal', 9, 2))",
            &cfg,
        )
        .unwrap();
        (db, cfg)
    }

    #[test]
    fn full_paper_query_via_sql() {
        let (db, cfg) = db_with_orders();
        let r = run(
            &db,
            "SELECT expected_sum(price) FROM orders, shipping \
             WHERE ship_to = dest AND cust = 'Joe' AND duration >= 7",
            &cfg,
        )
        .unwrap();
        let v = scalar_result(&r).unwrap();
        let truth = 100.0 * (1.0 - special::normal_cdf(1.0));
        assert!((v - truth).abs() < 2.0, "{v} vs {truth}");
    }

    #[test]
    fn ddl_dml_select_round_trip() {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        run(&db, "CREATE TABLE t (a INT, b FLOAT)", &cfg).unwrap();
        run(&db, "INSERT INTO t VALUES (1, 2.5), (2, 3.5)", &cfg).unwrap();
        let r = run(&db, "SELECT expected_sum(b) FROM t", &cfg).unwrap();
        assert_eq!(scalar_result(&r).unwrap(), 6.0);
        // Arity mismatch caught.
        assert!(run(&db, "INSERT INTO t VALUES (1)", &cfg).is_err());
        // Unknown table caught.
        assert!(run(&db, "SELECT * FROM ghost", &cfg).is_err());
    }

    #[test]
    fn conf_query_via_sql() {
        let (db, cfg) = db_with_orders();
        let r = run(
            &db,
            "SELECT dest, conf() FROM shipping WHERE duration >= 7",
            &cfg,
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let p_ny = r.rows()[0].cells[1].as_const().unwrap().as_f64().unwrap();
        assert!((p_ny - (1.0 - special::normal_cdf(1.0))).abs() < 1e-3);
    }

    fn plan_text(t: &CTable) -> String {
        t.rows()
            .iter()
            .map(|r| r.cells[0].as_const().unwrap().as_str().unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn explain_and_explain_analyze_via_sql() {
        let (db, cfg) = db_with_orders();
        let q = "SELECT expected_sum(price) FROM orders, shipping \
                 WHERE ship_to = dest AND duration >= 7";
        let text = plan_text(&run(&db, &format!("EXPLAIN {q}"), &cfg).unwrap());
        assert!(text.contains("-- logical plan --"), "{text}");
        assert!(text.contains("-- physical plan --"), "{text}");
        assert!(text.contains("Scan: orders"), "{text}");
        // Estimates appear on every operator, logical and physical.
        assert!(text.contains("est_rows="), "{text}");
        // Plain EXPLAIN does not execute: no actual row counts/timings.
        assert!(!text.contains(", rows="), "{text}");
        assert!(!text.contains("self="), "{text}");

        let text = plan_text(&run(&db, &format!("EXPLAIN ANALYZE {q}"), &cfg).unwrap());
        assert!(text.contains("-- physical plan (analyzed) --"), "{text}");
        // est_rows sits alongside the actual rows-out...
        assert!(text.contains("est_rows="), "{text}");
        assert!(text.contains(", rows="), "{text}");
        // ...and exclusive (self) time alongside inclusive (total).
        assert!(text.contains("total="), "{text}");
        assert!(text.contains("self="), "{text}");
        assert!(text.contains("sample phase"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn explain_analyze_exclusive_times_sum_to_inclusive_root() {
        // The profile API itself: every operator's exclusive time is its
        // inclusive time minus its children's inclusive share.
        let (db, cfg) = db_with_orders();
        let stmt = parse(
            "SELECT expected_sum(price) FROM orders, shipping \
             WHERE ship_to = dest AND duration >= 7",
        )
        .unwrap();
        let Statement::Select(plan) = stmt else {
            panic!("not a select");
        };
        let plan = crate::optimize::optimize(&db, plan).unwrap();
        let mut phys = crate::physical::lower(&db, &plan, &cfg).unwrap();
        phys.collect().unwrap();
        let profiles = phys.profiles();
        let total_self: f64 = profiles.iter().map(|p| p.exclusive_secs).sum();
        let root_total = profiles[0].secs;
        assert!(
            total_self <= root_total * 1.0001 + 1e-9,
            "self {total_self} vs root {root_total}"
        );
        assert!(profiles.iter().all(|p| p.exclusive_secs <= p.secs + 1e-12));
    }

    #[test]
    fn explain_format_json_is_machine_checkable() {
        let (db, cfg) = db_with_orders();
        let q = "SELECT expected_sum(price) FROM orders, shipping \
                 WHERE ship_to = dest AND duration >= 7";
        let t = run(&db, &format!("EXPLAIN (FORMAT JSON) {q}"), &cfg).unwrap();
        assert_eq!(t.len(), 1, "one row holding the document");
        let doc = plan_text(&t);
        assert!(doc.starts_with('{'), "{doc}");
        assert!(doc.contains("\"analyzed\":false"), "{doc}");
        assert!(doc.contains("\"logical\":"), "{doc}");
        assert!(doc.contains("\"physical\":"), "{doc}");
        assert!(doc.contains("\"est_rows\":"), "{doc}");
        assert!(doc.contains("\"children\":"), "{doc}");

        let t = run(&db, &format!("EXPLAIN (ANALYZE, FORMAT JSON) {q}"), &cfg).unwrap();
        let doc = plan_text(&t);
        assert!(doc.contains("\"analyzed\":true"), "{doc}");
        assert!(doc.contains("\"result_rows\":1"), "{doc}");
        assert!(doc.contains("\"rows\":"), "{doc}");
        assert!(doc.contains("\"self_secs\":"), "{doc}");
        assert!(doc.contains("\"sampling\":true"), "{doc}");
    }

    #[test]
    fn analyze_via_sql_reports_statistics() {
        let (db, cfg) = db_with_orders();
        // Per-table refresh.
        let t = run(&db, "ANALYZE orders", &cfg).unwrap();
        assert_eq!(t.len(), 1);
        let row = &t.rows()[0];
        assert_eq!(row.cells[0].as_const().unwrap().as_str().unwrap(), "orders");
        assert_eq!(row.cells[1].as_const().unwrap().as_i64().unwrap(), 2);
        // price is symbolic in both rows.
        assert_eq!(row.cells[3].as_const().unwrap().as_i64().unwrap(), 2);
        // Bare ANALYZE covers every table, sorted by name.
        let t = run(&db, "ANALYZE", &cfg).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.rows()[0].cells[0].as_const().unwrap().as_str().unwrap(),
            "orders"
        );
        assert!(run(&db, "ANALYZE ghost", &cfg).is_err());
    }

    #[test]
    fn group_by_via_sql() {
        let db = Database::new();
        let cfg = SamplerConfig::default();
        run(&db, "CREATE TABLE s (region TEXT, amount FLOAT)", &cfg).unwrap();
        run(
            &db,
            "INSERT INTO s VALUES ('e', 10), ('e', 20), ('w', 5)",
            &cfg,
        )
        .unwrap();
        let r = run(
            &db,
            "SELECT region, expected_sum(amount), expected_count(*) FROM s GROUP BY region",
            &cfg,
        )
        .unwrap();
        assert_eq!(r.len(), 2);
    }
}
