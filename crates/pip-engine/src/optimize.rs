//! Logical plan optimizer.
//!
//! The paper leans on the host DBMS for deterministic optimization
//! ("deterministic database query optimizers do a satisfactory job of
//! ensuring that constraints over discrete variables are filtered as
//! soon as possible", Section III-C). Our engine provides the moral
//! equivalent: predicate pushdown through products/joins, conjunct
//! splitting, and select fusion — all purely deterministic rewrites that
//! shrink intermediate c-tables before any sampling happens.

use pip_core::{Result, Schema};

use crate::catalog::Database;
use crate::plan::{Plan, ScalarExpr};

/// Compute the output schema of a plan (column names drive pushdown
/// decisions).
pub fn plan_schema(db: &Database, plan: &Plan) -> Result<Schema> {
    Ok(match plan {
        Plan::Scan(name) => db.table(name)?.schema().clone(),
        Plan::Select { input, .. } => plan_schema(db, input)?,
        Plan::Project { exprs, .. } => {
            // Types don't matter for pushdown; mark everything symbolic.
            Schema::new(
                exprs
                    .iter()
                    .map(|(n, _)| pip_core::Column::new(n.clone(), pip_core::DataType::Symbolic))
                    .collect(),
            )?
        }
        Plan::Product { left, right } | Plan::EquiJoin { left, right, .. } => {
            plan_schema(db, left)?.join(&plan_schema(db, right)?)?
        }
        Plan::Union { left, .. } => plan_schema(db, left)?,
        Plan::Distinct(input) => plan_schema(db, input)?,
        Plan::Difference { left, .. } => plan_schema(db, left)?,
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_schema = plan_schema(db, input)?;
            let mut cols = Vec::new();
            for g in group_by {
                cols.push(in_schema.column(g)?.clone());
            }
            for a in aggs {
                cols.push(pip_core::Column::new(
                    a.output_name(),
                    pip_core::DataType::Float,
                ));
            }
            Schema::new(cols)?
        }
        Plan::Conf(input) => {
            let in_schema = plan_schema(db, input)?;
            let mut cols = in_schema.columns().to_vec();
            cols.push(pip_core::Column::new("conf()", pip_core::DataType::Float));
            Schema::new(cols)?
        }
        Plan::Sort { input, .. } | Plan::Limit { input, .. } => plan_schema(db, input)?,
    })
}

/// Column names referenced by an expression.
fn columns_of(e: &ScalarExpr, out: &mut Vec<String>) {
    match e {
        ScalarExpr::Column(c) => {
            if !out.contains(c) {
                out.push(c.clone());
            }
        }
        ScalarExpr::Literal(_) | ScalarExpr::Var(_) | ScalarExpr::CreateVariable { .. } => {}
        ScalarExpr::Binary { left, right, .. } | ScalarExpr::Cmp { left, right, .. } => {
            columns_of(left, out);
            columns_of(right, out);
        }
        ScalarExpr::Neg(e) => columns_of(e, out),
        ScalarExpr::And(ps) => {
            for p in ps {
                columns_of(p, out);
            }
        }
    }
}

/// Split a predicate into its top-level conjuncts.
fn conjuncts(pred: ScalarExpr) -> Vec<ScalarExpr> {
    match pred {
        ScalarExpr::And(ps) => ps.into_iter().flat_map(conjuncts).collect(),
        other => vec![other],
    }
}

/// Rebuild a conjunction from parts (None when empty).
fn rebuild(mut parts: Vec<ScalarExpr>) -> Option<ScalarExpr> {
    match parts.len() {
        0 => None,
        1 => Some(parts.pop().expect("len checked")),
        _ => Some(ScalarExpr::And(parts)),
    }
}

/// Optimize a plan: push selection conjuncts below products and
/// equi-joins when they reference only one side's columns, fuse
/// adjacent selects, then prune unreferenced base-table columns with
/// narrow projections over the scans (projection pushdown — the fewer
/// cells each scanned row carries, the less every operator above
/// clones).
pub fn optimize(db: &Database, plan: Plan) -> Result<Plan> {
    let plan = push_selects(db, plan)?;
    prune_columns(db, plan, None)
}

/// The predicate-pushdown / select-fusion pass alone (no column
/// pruning). Exposed so benchmarks can isolate what projection pushdown
/// buys on top; [`optimize`] runs both passes.
pub fn push_selects(db: &Database, plan: Plan) -> Result<Plan> {
    Ok(match plan {
        Plan::Select { input, predicate } => {
            let input = push_selects(db, *input)?;
            push_select(db, input, predicate)?
        }
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(push_selects(db, *input)?),
            exprs,
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(push_selects(db, *left)?),
            right: Box::new(push_selects(db, *right)?),
        },
        Plan::EquiJoin { left, right, on } => Plan::EquiJoin {
            left: Box::new(push_selects(db, *left)?),
            right: Box::new(push_selects(db, *right)?),
            on,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(push_selects(db, *left)?),
            right: Box::new(push_selects(db, *right)?),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(push_selects(db, *input)?)),
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(push_selects(db, *left)?),
            right: Box::new(push_selects(db, *right)?),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(push_selects(db, *input)?),
            group_by,
            aggs,
        },
        Plan::Conf(input) => Plan::Conf(Box::new(push_selects(db, *input)?)),
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(push_selects(db, *input)?),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(push_selects(db, *input)?),
            n,
        },
        leaf @ Plan::Scan(_) => leaf,
    })
}

/// Place `predicate` as low as possible over `input`.
fn push_select(db: &Database, input: Plan, predicate: ScalarExpr) -> Result<Plan> {
    match input {
        // Fuse Select(Select(x)) into one conjunction, then retry.
        Plan::Select {
            input: inner,
            predicate: inner_pred,
        } => {
            let combined = inner_pred.and(predicate);
            push_select(db, *inner, combined)
        }
        Plan::Product { left, right } => {
            push_through_binary(db, *left, *right, predicate, |l, r| Plan::Product {
                left: Box::new(l),
                right: Box::new(r),
            })
        }
        Plan::EquiJoin { left, right, on } => {
            let on2 = on.clone();
            push_through_binary(db, *left, *right, predicate, move |l, r| Plan::EquiJoin {
                left: Box::new(l),
                right: Box::new(r),
                on: on2.clone(),
            })
        }
        other => Plan::Select {
            input: Box::new(other),
            predicate,
        }
        .pipe_ok(),
    }
}

/// Distribute conjuncts to the sides of a binary node where possible.
fn push_through_binary(
    db: &Database,
    left: Plan,
    right: Plan,
    predicate: ScalarExpr,
    rebuild_node: impl Fn(Plan, Plan) -> Plan,
) -> Result<Plan> {
    let l_schema = plan_schema(db, &left)?;
    let r_schema = plan_schema(db, &right)?;
    let has = |s: &Schema, c: &str| s.index_of(c).is_ok();

    let mut left_parts = Vec::new();
    let mut right_parts = Vec::new();
    let mut keep = Vec::new();
    for part in conjuncts(predicate) {
        let mut cols = Vec::new();
        columns_of(&part, &mut cols);
        let all_left = cols.iter().all(|c| has(&l_schema, c));
        // A column present on BOTH sides is ambiguous after the join
        // rename; only push when it binds unambiguously.
        let any_right = cols.iter().any(|c| has(&r_schema, c));
        let all_right = cols.iter().all(|c| has(&r_schema, c));
        let any_left = cols.iter().any(|c| has(&l_schema, c));
        if all_left && !any_right {
            left_parts.push(part);
        } else if all_right && !any_left {
            right_parts.push(part);
        } else {
            keep.push(part);
        }
    }

    let new_left = match rebuild(left_parts) {
        Some(p) => push_select(db, left, p)?,
        None => left,
    };
    let new_right = match rebuild(right_parts) {
        Some(p) => push_select(db, right, p)?,
        None => right,
    };
    let node = rebuild_node(new_left, new_right);
    Ok(match rebuild(keep) {
        Some(p) => Plan::Select {
            input: Box::new(node),
            predicate: p,
        },
        None => node,
    })
}

/// Tiny Ok-wrapping helper to keep match arms tidy.
trait PipeOk: Sized {
    fn pipe_ok(self) -> Result<Self> {
        Ok(self)
    }
}

impl PipeOk for Plan {}

/// Add `names` to a requirement set (`None` means "all columns").
fn require(req: &mut Option<Vec<String>>, names: &[String]) {
    if let Some(set) = req {
        for n in names {
            if !set.contains(n) {
                set.push(n.clone());
            }
        }
    }
}

/// The projection-pushdown pass: propagate the set of columns each node
/// actually needs downward and wrap base-table scans whose schema is a
/// strict superset in a narrow column projection.
///
/// `required = None` means every column is needed. The pass is
/// deliberately conservative: nodes whose semantics depend on the whole
/// row (`distinct`, `difference`, `union`, `conf`) reset the requirement
/// to "all", as does any column name that does not bind unambiguously to
/// exactly one side of a product/join (e.g. post-join `.right` renames).
fn prune_columns(db: &Database, plan: Plan, required: Option<Vec<String>>) -> Result<Plan> {
    Ok(match plan {
        Plan::Scan(name) => {
            let schema = db.table(&name)?.schema().clone();
            let keep: Vec<&pip_core::Column> = match &required {
                None => return Ok(Plan::Scan(name)),
                Some(req) => schema
                    .columns()
                    .iter()
                    .filter(|c| req.contains(&c.name))
                    .collect(),
            };
            if keep.is_empty() || keep.len() == schema.len() {
                return Ok(Plan::Scan(name));
            }
            Plan::Project {
                input: Box::new(Plan::Scan(name)),
                exprs: keep
                    .into_iter()
                    .map(|c| (c.name.clone(), ScalarExpr::col(c.name.clone())))
                    .collect(),
            }
        }
        Plan::Select { input, predicate } => {
            let mut req = required;
            let mut cols = Vec::new();
            columns_of(&predicate, &mut cols);
            require(&mut req, &cols);
            Plan::Select {
                input: Box::new(prune_columns(db, *input, req)?),
                predicate,
            }
        }
        Plan::Project { input, exprs } => {
            // A projection redefines the row: only its own inputs matter.
            let mut cols = Vec::new();
            for (_, e) in &exprs {
                columns_of(e, &mut cols);
            }
            Plan::Project {
                input: Box::new(prune_columns(db, *input, Some(cols))?),
                exprs,
            }
        }
        Plan::Product { left, right } => {
            let (l_req, r_req) = split_requirement(db, &left, &right, required, &[])?;
            Plan::Product {
                left: Box::new(prune_columns(db, *left, l_req)?),
                right: Box::new(prune_columns(db, *right, r_req)?),
            }
        }
        Plan::EquiJoin { left, right, on } => {
            let (l_req, r_req) = split_requirement(db, &left, &right, required, &on)?;
            Plan::EquiJoin {
                left: Box::new(prune_columns(db, *left, l_req)?),
                right: Box::new(prune_columns(db, *right, r_req)?),
                on,
            }
        }
        // Positional (union/difference) and whole-row (distinct/conf)
        // semantics: every column stays live.
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(prune_columns(db, *left, None)?),
            right: Box::new(prune_columns(db, *right, None)?),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(prune_columns(db, *left, None)?),
            right: Box::new(prune_columns(db, *right, None)?),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(prune_columns(db, *input, None)?)),
        Plan::Conf(input) => Plan::Conf(Box::new(prune_columns(db, *input, None)?)),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut cols: Vec<String> = group_by.clone();
            for a in &aggs {
                if let crate::plan::AggFunc::ExpectedSum(c)
                | crate::plan::AggFunc::ExpectedAvg(c)
                | crate::plan::AggFunc::ExpectedMax { column: c, .. } = a
                {
                    if !cols.contains(c) {
                        cols.push(c.clone());
                    }
                }
            }
            Plan::Aggregate {
                input: Box::new(prune_columns(db, *input, Some(cols))?),
                group_by,
                aggs,
            }
        }
        Plan::Sort { input, keys } => {
            let mut req = required;
            let key_cols: Vec<String> = keys.iter().map(|(c, _)| c.clone()).collect();
            require(&mut req, &key_cols);
            Plan::Sort {
                input: Box::new(prune_columns(db, *input, req)?),
                keys,
            }
        }
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(prune_columns(db, *input, required)?),
            n,
        },
    })
}

/// Attribute a requirement set to the two sides of a product/join. Any
/// name that does not bind to exactly one side (absent, or present on
/// both — it would be `.right`-renamed in the joined schema) makes the
/// split bail out to "all columns" on both sides.
#[allow(clippy::type_complexity)]
fn split_requirement(
    db: &Database,
    left: &Plan,
    right: &Plan,
    required: Option<Vec<String>>,
    on: &[(String, String)],
) -> Result<(Option<Vec<String>>, Option<Vec<String>>)> {
    let Some(req) = required else {
        return Ok((None, None));
    };
    let l_schema = plan_schema(db, left)?;
    let r_schema = plan_schema(db, right)?;
    let has = |s: &Schema, c: &str| s.index_of(c).is_ok();
    let mut l_req: Vec<String> = Vec::new();
    let mut r_req: Vec<String> = Vec::new();
    for name in req {
        match (has(&l_schema, &name), has(&r_schema, &name)) {
            (true, false) => l_req.push(name),
            (false, true) => r_req.push(name),
            _ => return Ok((None, None)), // ambiguous or unknown
        }
    }
    for (l, r) in on {
        if !l_req.contains(l) {
            l_req.push(l.clone());
        }
        if !r_req.contains(r) {
            r_req.push(r.clone());
        }
    }
    Ok((Some(l_req), Some(r_req)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pip_core::{tuple, DataType};
    use pip_sampling::SamplerConfig;

    fn setup() -> Database {
        let db = Database::new();
        db.create_table(
            "l",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
        )
        .unwrap();
        db.create_table(
            "r",
            Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]),
        )
        .unwrap();
        db.insert_tuples("l", &[tuple![1i64, 10i64], tuple![2i64, 20i64]])
            .unwrap();
        db.insert_tuples("r", &[tuple![1i64, 100i64], tuple![3i64, 300i64]])
            .unwrap();
        db
    }

    #[test]
    fn single_side_conjuncts_are_pushed() {
        let db = setup();
        let plan = PlanBuilder::scan("l")
            .product(PlanBuilder::scan("r"))
            .select(
                ScalarExpr::col("a")
                    .eq(ScalarExpr::lit(1i64))
                    .and(ScalarExpr::col("d").gt(ScalarExpr::lit(0i64)))
                    .and(ScalarExpr::col("a").eq(ScalarExpr::col("c"))),
            )
            .unwrap()
            .build();
        let opt = optimize(&db, plan.clone()).unwrap();
        // Expect: Select(cross-side) over Product(Select(l), Select(r)).
        match &opt {
            Plan::Select { input, predicate } => {
                let mut cols = Vec::new();
                columns_of(predicate, &mut cols);
                assert_eq!(cols, vec!["a".to_string(), "c".to_string()]);
                match &**input {
                    Plan::Product { left, right } => {
                        assert!(matches!(**left, Plan::Select { .. }), "{left:?}");
                        assert!(matches!(**right, Plan::Select { .. }), "{right:?}");
                    }
                    other => panic!("expected product, got {other:?}"),
                }
            }
            other => panic!("expected top select, got {other:?}"),
        }
        // Semantics preserved.
        let cfg = SamplerConfig::default();
        let a = crate::exec::execute(&db, &plan, &cfg).unwrap();
        let b = crate::exec::execute(&db, &opt, &cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn select_fusion() {
        let db = setup();
        let plan = PlanBuilder::scan("l")
            .select(ScalarExpr::col("a").gt(ScalarExpr::lit(0i64)))
            .unwrap()
            .select(ScalarExpr::col("b").gt(ScalarExpr::lit(0i64)))
            .unwrap()
            .build();
        let opt = optimize(&db, plan).unwrap();
        // One fused Select over the scan.
        match opt {
            Plan::Select { input, predicate } => {
                assert!(matches!(*input, Plan::Scan(_)));
                assert!(matches!(predicate, ScalarExpr::And(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ambiguous_columns_not_pushed() {
        let db = setup();
        db.create_table("l2", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        db.create_table("r2", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        let plan = PlanBuilder::scan("l2")
            .product(PlanBuilder::scan("r2"))
            .select(ScalarExpr::col("a").gt(ScalarExpr::lit(0i64)))
            .unwrap()
            .build();
        let opt = optimize(&db, plan).unwrap();
        // `a` exists on both sides → predicate must stay above.
        match opt {
            Plan::Select { input, .. } => {
                assert!(matches!(*input, Plan::Product { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pushdown_through_equijoin_preserves_results() {
        let db = setup();
        let plan = PlanBuilder::scan("l")
            .equi_join(PlanBuilder::scan("r"), vec![("a", "c")])
            .select(ScalarExpr::col("b").ge(ScalarExpr::lit(10i64)))
            .unwrap()
            .build();
        let opt = optimize(&db, plan.clone()).unwrap();
        let cfg = SamplerConfig::default();
        let a = crate::exec::execute(&db, &plan, &cfg).unwrap();
        let b = crate::exec::execute(&db, &opt, &cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
        // And the filter moved below the join.
        match opt {
            Plan::EquiJoin { left, .. } => {
                assert!(matches!(*left, Plan::Select { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn projection_pushdown_prunes_scans_under_aggregates() {
        let db = setup();
        // Only `a` is referenced: `b` should be pruned at the scan.
        let plan = PlanBuilder::scan("l")
            .aggregate(vec![], vec![crate::plan::AggFunc::ExpectedSum("a".into())])
            .build();
        let opt = optimize(&db, plan.clone()).unwrap();
        match &opt {
            Plan::Aggregate { input, .. } => match &**input {
                Plan::Project { input, exprs } => {
                    assert_eq!(exprs.len(), 1);
                    assert_eq!(exprs[0].0, "a");
                    assert!(matches!(**input, Plan::Scan(_)));
                }
                other => panic!("expected pruning projection, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
        let cfg = SamplerConfig::default();
        let a = crate::exec::execute(&db, &plan, &cfg).unwrap();
        let b = crate::exec::execute(&db, &opt, &cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn projection_pushdown_splits_across_joins() {
        let db = setup();
        // d is never used; c is a join key and must survive.
        let plan = PlanBuilder::scan("l")
            .equi_join(PlanBuilder::scan("r"), vec![("a", "c")])
            .project(vec![("b", ScalarExpr::col("b"))])
            .build();
        let opt = optimize(&db, plan.clone()).unwrap();
        let text = opt.explain();
        assert!(text.contains("Project: [c]"), "{text}");
        let cfg = SamplerConfig::default();
        assert_eq!(
            crate::exec::execute(&db, &plan, &cfg).unwrap().rows(),
            crate::exec::execute(&db, &opt, &cfg).unwrap().rows()
        );
    }

    #[test]
    fn projection_pushdown_respects_whole_row_operators() {
        let db = setup();
        // distinct dedups on all cells: nothing may be pruned below it.
        let plan = PlanBuilder::scan("l")
            .distinct()
            .aggregate(vec![], vec![crate::plan::AggFunc::ExpectedCount])
            .build();
        let opt = optimize(&db, plan).unwrap();
        match &opt {
            Plan::Aggregate { input, .. } => match &**input {
                Plan::Distinct(inner) => assert!(matches!(**inner, Plan::Scan(_)), "{inner:?}"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // Ambiguous names across a product bail out to no pruning.
        db.create_table("l2", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        db.create_table("r2", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        let plan = PlanBuilder::scan("l2")
            .product(PlanBuilder::scan("r2"))
            .aggregate(vec![], vec![crate::plan::AggFunc::ExpectedSum("a".into())])
            .build();
        let opt = optimize(&db, plan).unwrap();
        match &opt {
            Plan::Aggregate { input, .. } => match &**input {
                Plan::Product { left, right } => {
                    assert!(matches!(**left, Plan::Scan(_)));
                    assert!(matches!(**right, Plan::Scan(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn plan_schema_shapes() {
        let db = setup();
        let s = plan_schema(&db, &Plan::Scan("l".into())).unwrap();
        assert_eq!(s.len(), 2);
        let agg = PlanBuilder::scan("l")
            .aggregate(vec!["a"], vec![crate::plan::AggFunc::ExpectedCount])
            .build();
        let s = plan_schema(&db, &agg).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.columns()[1].name, "expected_count(*)");
        let conf = PlanBuilder::scan("l").conf().build();
        assert_eq!(plan_schema(&db, &conf).unwrap().len(), 3);
    }
}
