//! The cost-based logical plan optimizer.
//!
//! The paper leans on the host DBMS for deterministic optimization
//! ("deterministic database query optimizers do a satisfactory job of
//! ensuring that constraints over discrete variables are filtered as
//! soon as possible", Section III-C). Our engine provides the moral
//! equivalent as a pipeline of passes over [`Plan`]s, driven by the
//! statistics and cost model in [`crate::stats`]:
//!
//! 1. **Predicate pushdown** ([`push_selects`]): split conjunctions,
//!    push single-side conjuncts below products/joins, fuse adjacent
//!    selects. Purely deterministic rewrites that shrink intermediate
//!    c-tables before any sampling happens.
//! 2. **Join reordering** (`reorder_joins`): extract the join graph from
//!    nested `Product`/`EquiJoin` regions and their cross-side equality
//!    conjuncts, then greedily build a left-deep tree of hash joins in
//!    ascending estimated-cardinality order. The rewrite is adopted only
//!    when the cost model says it beats the written order by a margin;
//!    a trailing projection restores the original column order, so the
//!    plan's schema is invariant. Reordering preserves the multiset
//!    (possible-worlds) semantics of the region; the row *order* of a
//!    reordered region follows the new join sequence.
//! 3. **Access-path selection** (`choose_access_paths`): where an
//!    ordered secondary index exists, rewrite `Select` over a base scan
//!    into an [`Plan::IndexScan`] and an equi-join probing a base scan
//!    into an [`Plan::IndexJoin`] — but only when the cost model (fed
//!    by histogram selectivity estimates) says the seek beats the
//!    sequential plan. Candidates carry the exact cardinality estimate
//!    of the logical shape they replace, so the decision reduces to
//!    the access-cost formulas.
//! 4. **Cost-gated projection pushdown** (`prune_columns`): wrap base
//!    scans in narrow projections only where the estimator says the
//!    saved downstream cell clones outweigh the extra per-row stage —
//!    pruning is free on wide join fan-outs and a net loss on scans
//!    whose rows are cloned once.

use pip_core::{Result, Schema, Value};
use pip_expr::CmpOp;

use crate::catalog::Database;
use crate::plan::{Plan, ScalarExpr};
use crate::stats::{self, CostModel, ExecTarget};

/// When to wrap base-table scans in narrow column projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneMode {
    /// Prune only where the cost model predicts a net win (default).
    CostBased,
    /// Prune whenever any column is dead (the pre-cost-model behavior;
    /// useful for isolating what pruning does in tests and benchmarks).
    Always,
    /// Never prune.
    Never,
}

/// Optimizer knobs. [`OptimizerConfig::default`] is what [`optimize`]
/// (and therefore the SQL layer and the server) runs.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerConfig {
    /// Executor the plan is being optimized for: the pipelined executor
    /// (default) or the materializing reference interpreter. Affects
    /// both cost estimates and the pruning gate.
    pub target: ExecTarget,
    /// Enable the cost-based join reorderer.
    pub reorder_joins: bool,
    /// Projection-pushdown gating.
    pub prune: PruneMode,
    /// Enable cost-based access-path selection over secondary indexes.
    /// Off forces every access through sequential scans and hash joins
    /// (the pre-index behavior; benchmarks use it as the baseline).
    pub use_indexes: bool,
    /// Cost-model constants.
    pub cost: CostModel,
    /// A reordered region is adopted only if its estimated cost is below
    /// `reorder_margin` × the written-order cost — estimates are fuzzy,
    /// and ties should keep the user's (bit-reproducible) written order.
    pub reorder_margin: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            target: ExecTarget::Streaming,
            reorder_joins: true,
            prune: PruneMode::CostBased,
            use_indexes: true,
            cost: CostModel::default(),
            reorder_margin: 0.9,
        }
    }
}

impl OptimizerConfig {
    /// Preset for the materializing reference interpreter.
    pub fn materializing() -> Self {
        OptimizerConfig {
            target: ExecTarget::Materializing,
            ..Self::default()
        }
    }
}

/// Compute the output schema of a plan (column names drive pushdown
/// decisions).
pub fn plan_schema(db: &Database, plan: &Plan) -> Result<Schema> {
    Ok(match plan {
        Plan::Scan(name) => db.table(name)?.schema().clone(),
        Plan::IndexScan { table, .. } => db.table(table)?.schema().clone(),
        Plan::IndexJoin { left, table, .. } => {
            plan_schema(db, left)?.join(db.table(table)?.schema())?
        }
        Plan::Select { input, .. } => plan_schema(db, input)?,
        Plan::Project { exprs, .. } => {
            // Types don't matter for pushdown; mark everything symbolic.
            Schema::new(
                exprs
                    .iter()
                    .map(|(n, _)| pip_core::Column::new(n.clone(), pip_core::DataType::Symbolic))
                    .collect(),
            )?
        }
        Plan::Product { left, right } | Plan::EquiJoin { left, right, .. } => {
            plan_schema(db, left)?.join(&plan_schema(db, right)?)?
        }
        Plan::Union { left, .. } => plan_schema(db, left)?,
        Plan::Distinct(input) => plan_schema(db, input)?,
        Plan::Difference { left, .. } => plan_schema(db, left)?,
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let in_schema = plan_schema(db, input)?;
            let mut cols = Vec::new();
            for g in group_by {
                cols.push(in_schema.column(g)?.clone());
            }
            for a in aggs {
                cols.push(pip_core::Column::new(
                    a.output_name(),
                    pip_core::DataType::Float,
                ));
            }
            Schema::new(cols)?
        }
        Plan::Conf(input) => {
            let in_schema = plan_schema(db, input)?;
            let mut cols = in_schema.columns().to_vec();
            cols.push(pip_core::Column::new("conf()", pip_core::DataType::Float));
            Schema::new(cols)?
        }
        Plan::Sort { input, .. } | Plan::Limit { input, .. } => plan_schema(db, input)?,
    })
}

/// Column names referenced by an expression.
fn columns_of(e: &ScalarExpr, out: &mut Vec<String>) {
    match e {
        ScalarExpr::Column(c) => {
            if !out.contains(c) {
                out.push(c.clone());
            }
        }
        ScalarExpr::Literal(_) | ScalarExpr::Var(_) | ScalarExpr::CreateVariable { .. } => {}
        ScalarExpr::Binary { left, right, .. } | ScalarExpr::Cmp { left, right, .. } => {
            columns_of(left, out);
            columns_of(right, out);
        }
        ScalarExpr::Neg(e) => columns_of(e, out),
        ScalarExpr::And(ps) => {
            for p in ps {
                columns_of(p, out);
            }
        }
    }
}

/// Split a predicate into its top-level conjuncts.
fn conjuncts(pred: ScalarExpr) -> Vec<ScalarExpr> {
    match pred {
        ScalarExpr::And(ps) => ps.into_iter().flat_map(conjuncts).collect(),
        other => vec![other],
    }
}

/// Rebuild a conjunction from parts (None when empty).
fn rebuild(mut parts: Vec<ScalarExpr>) -> Option<ScalarExpr> {
    match parts.len() {
        0 => None,
        1 => Some(parts.pop().expect("len checked")),
        _ => Some(ScalarExpr::And(parts)),
    }
}

/// Optimize a plan with the default configuration (predicate pushdown,
/// cost-based join reordering, cost-gated projection pushdown).
pub fn optimize(db: &Database, plan: Plan) -> Result<Plan> {
    optimize_with(db, plan, &OptimizerConfig::default())
}

/// Optimize a plan under an explicit [`OptimizerConfig`].
pub fn optimize_with(db: &Database, plan: Plan, cfg: &OptimizerConfig) -> Result<Plan> {
    let start = std::time::Instant::now();
    let plan = push_selects(db, plan)?;
    let plan = if cfg.reorder_joins {
        reorder_pass(db, plan, cfg, true)?
    } else {
        plan
    };
    // Index paths exist only in the pipelined executor; the
    // materializing interpreter always scans.
    let plan = if cfg.use_indexes && cfg.target == ExecTarget::Streaming {
        choose_access_paths(db, plan, cfg)?
    } else {
        plan
    };
    let plan = match cfg.prune {
        PruneMode::Never => plan,
        _ => prune_columns(db, plan, None, 0.0, cfg)?,
    };
    let m = db.metrics();
    m.optimize_seconds.observe_since(start);
    m.note_plan(&plan);
    Ok(plan)
}

/// The predicate-pushdown / select-fusion pass alone (no reordering or
/// column pruning). Exposed so benchmarks can isolate what the
/// cost-based passes buy on top; [`optimize`] runs the full pipeline.
pub fn push_selects(db: &Database, plan: Plan) -> Result<Plan> {
    Ok(match plan {
        Plan::Select { input, predicate } => {
            let input = push_selects(db, *input)?;
            push_select(db, input, predicate)?
        }
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(push_selects(db, *input)?),
            exprs,
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(push_selects(db, *left)?),
            right: Box::new(push_selects(db, *right)?),
        },
        Plan::EquiJoin { left, right, on } => Plan::EquiJoin {
            left: Box::new(push_selects(db, *left)?),
            right: Box::new(push_selects(db, *right)?),
            on,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(push_selects(db, *left)?),
            right: Box::new(push_selects(db, *right)?),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(push_selects(db, *input)?)),
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(push_selects(db, *left)?),
            right: Box::new(push_selects(db, *right)?),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(push_selects(db, *input)?),
            group_by,
            aggs,
        },
        Plan::Conf(input) => Plan::Conf(Box::new(push_selects(db, *input)?)),
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(push_selects(db, *input)?),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(push_selects(db, *input)?),
            n,
        },
        leaf @ (Plan::Scan(_) | Plan::IndexScan { .. }) => leaf,
        // Access paths are chosen after pushdown; a pre-placed index
        // join only recurses (pushing a filter into the probe side
        // would change the access path behind the planner's back).
        Plan::IndexJoin {
            left,
            table,
            index,
            on,
        } => Plan::IndexJoin {
            left: Box::new(push_selects(db, *left)?),
            table,
            index,
            on,
        },
    })
}

/// Place `predicate` as low as possible over `input`.
fn push_select(db: &Database, input: Plan, predicate: ScalarExpr) -> Result<Plan> {
    match input {
        // Fuse Select(Select(x)) into one conjunction, then retry.
        Plan::Select {
            input: inner,
            predicate: inner_pred,
        } => {
            let combined = inner_pred.and(predicate);
            push_select(db, *inner, combined)
        }
        Plan::Product { left, right } => {
            push_through_binary(db, *left, *right, predicate, |l, r| Plan::Product {
                left: Box::new(l),
                right: Box::new(r),
            })
        }
        Plan::EquiJoin { left, right, on } => {
            let on2 = on.clone();
            push_through_binary(db, *left, *right, predicate, move |l, r| Plan::EquiJoin {
                left: Box::new(l),
                right: Box::new(r),
                on: on2.clone(),
            })
        }
        other => Plan::Select {
            input: Box::new(other),
            predicate,
        }
        .pipe_ok(),
    }
}

/// Distribute conjuncts to the sides of a binary node where possible.
fn push_through_binary(
    db: &Database,
    left: Plan,
    right: Plan,
    predicate: ScalarExpr,
    rebuild_node: impl Fn(Plan, Plan) -> Plan,
) -> Result<Plan> {
    let l_schema = plan_schema(db, &left)?;
    let r_schema = plan_schema(db, &right)?;
    let has = |s: &Schema, c: &str| s.index_of(c).is_ok();

    let mut left_parts = Vec::new();
    let mut right_parts = Vec::new();
    let mut keep = Vec::new();
    for part in conjuncts(predicate) {
        let mut cols = Vec::new();
        columns_of(&part, &mut cols);
        let all_left = cols.iter().all(|c| has(&l_schema, c));
        // A column present on BOTH sides is ambiguous after the join
        // rename; only push when it binds unambiguously.
        let any_right = cols.iter().any(|c| has(&r_schema, c));
        let all_right = cols.iter().all(|c| has(&r_schema, c));
        let any_left = cols.iter().any(|c| has(&l_schema, c));
        if all_left && !any_right {
            left_parts.push(part);
        } else if all_right && !any_left {
            right_parts.push(part);
        } else {
            keep.push(part);
        }
    }

    let new_left = match rebuild(left_parts) {
        Some(p) => push_select(db, left, p)?,
        None => left,
    };
    let new_right = match rebuild(right_parts) {
        Some(p) => push_select(db, right, p)?,
        None => right,
    };
    let node = rebuild_node(new_left, new_right);
    Ok(match rebuild(keep) {
        Some(p) => Plan::Select {
            input: Box::new(node),
            predicate: p,
        },
        None => node,
    })
}

/// Tiny Ok-wrapping helper to keep match arms tidy.
trait PipeOk: Sized {
    fn pipe_ok(self) -> Result<Self> {
        Ok(self)
    }
}

impl PipeOk for Plan {}

// ---------------------------------------------------------------------
// Join reordering.
// ---------------------------------------------------------------------

/// True for nodes that belong to a join region: products, equi-joins,
/// and selects sitting directly on them (their conjuncts are the join
/// graph's edges).
fn is_region_node(plan: &Plan) -> bool {
    match plan {
        Plan::Product { .. } | Plan::EquiJoin { .. } => true,
        Plan::Select { input, .. } => is_region_node(input),
        _ => false,
    }
}

/// Recursive driver of the reorder pass: rewrite join regions where the
/// cost model approves, recurse everywhere else. `allow` is false below
/// any `Limit`: a limit keeps "the first n rows", so changing the row
/// order beneath it would change *which* rows survive — a semantic
/// change, not just an ordering one.
fn reorder_pass(db: &Database, plan: Plan, cfg: &OptimizerConfig, allow: bool) -> Result<Plan> {
    if allow && is_region_node(&plan) {
        reorder_region(db, plan, cfg)
    } else {
        reorder_children(db, plan, cfg, allow)
    }
}

/// Rebuild a non-region node with reordered children.
fn reorder_children(db: &Database, plan: Plan, cfg: &OptimizerConfig, allow: bool) -> Result<Plan> {
    Ok(match plan {
        leaf @ (Plan::Scan(_) | Plan::IndexScan { .. }) => leaf,
        Plan::IndexJoin {
            left,
            table,
            index,
            on,
        } => Plan::IndexJoin {
            left: Box::new(reorder_pass(db, *left, cfg, allow)?),
            table,
            index,
            on,
        },
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(reorder_pass(db, *input, cfg, allow)?),
            predicate,
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(reorder_pass(db, *input, cfg, allow)?),
            exprs,
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(reorder_pass(db, *left, cfg, allow)?),
            right: Box::new(reorder_pass(db, *right, cfg, allow)?),
        },
        Plan::EquiJoin { left, right, on } => Plan::EquiJoin {
            left: Box::new(reorder_pass(db, *left, cfg, allow)?),
            right: Box::new(reorder_pass(db, *right, cfg, allow)?),
            on,
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(reorder_pass(db, *left, cfg, allow)?),
            right: Box::new(reorder_pass(db, *right, cfg, allow)?),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(reorder_pass(db, *input, cfg, allow)?)),
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(reorder_pass(db, *left, cfg, allow)?),
            right: Box::new(reorder_pass(db, *right, cfg, allow)?),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(reorder_pass(db, *input, cfg, allow)?),
            group_by,
            aggs,
        },
        Plan::Conf(input) => Plan::Conf(Box::new(reorder_pass(db, *input, cfg, allow)?)),
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(reorder_pass(db, *input, cfg, allow)?),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(reorder_pass(db, *input, cfg, false)?),
            n,
        },
    })
}

/// Flatten one join region into its leaf plans and predicate conjuncts.
/// `EquiJoin` key pairs are re-expressed as equality conjuncts so the
/// classifier sees one uniform edge list.
fn flatten_region(plan: Plan, leaves: &mut Vec<Plan>, preds: &mut Vec<ScalarExpr>) {
    match plan {
        Plan::Product { left, right } => {
            flatten_region(*left, leaves, preds);
            flatten_region(*right, leaves, preds);
        }
        Plan::EquiJoin { left, right, on } => {
            flatten_region(*left, leaves, preds);
            flatten_region(*right, leaves, preds);
            for (a, b) in on {
                preds.push(ScalarExpr::col(a).eq(ScalarExpr::col(b)));
            }
        }
        Plan::Select { input, predicate } if is_region_node(&input) => {
            flatten_region(*input, leaves, preds);
            preds.extend(conjuncts(predicate));
        }
        leaf => leaves.push(leaf),
    }
}

/// Rebuild the original region structure around (recursively reordered)
/// leaves, consumed in written order — the bail-out path that keeps the
/// written plan bit-for-bit.
fn rebuild_written(plan: &Plan, leaves: &mut std::vec::IntoIter<Plan>) -> Plan {
    match plan {
        Plan::Product { left, right } => {
            let l = rebuild_written(left, leaves);
            let r = rebuild_written(right, leaves);
            Plan::Product {
                left: Box::new(l),
                right: Box::new(r),
            }
        }
        Plan::EquiJoin { left, right, on } => {
            let l = rebuild_written(left, leaves);
            let r = rebuild_written(right, leaves);
            Plan::EquiJoin {
                left: Box::new(l),
                right: Box::new(r),
                on: on.clone(),
            }
        }
        Plan::Select { input, predicate } if is_region_node(input) => Plan::Select {
            input: Box::new(rebuild_written(input, leaves)),
            predicate: predicate.clone(),
        },
        _ => leaves.next().expect("one leaf per flattened slot"),
    }
}

/// An equality edge of the join graph, between columns of two leaves.
struct JoinEdge {
    a_leaf: usize,
    a_col: String,
    b_leaf: usize,
    b_col: String,
}

/// Try to reorder one join region; falls back to the written order when
/// column names are ambiguous, estimation fails, or the cost model does
/// not approve the rewrite.
fn reorder_region(db: &Database, plan: Plan, cfg: &OptimizerConfig) -> Result<Plan> {
    let shape = plan.clone();
    let mut leaves = Vec::new();
    let mut preds = Vec::new();
    flatten_region(plan, &mut leaves, &mut preds);
    // Reorder below the leaves first (a leaf may hide a region under a
    // blocking operator, e.g. an aggregate subquery).
    let leaves: Vec<Plan> = leaves
        .into_iter()
        .map(|l| reorder_pass(db, l, cfg, true))
        .collect::<Result<_>>()?;

    let written = |leaves: Vec<Plan>| -> Plan {
        let mut it = leaves.into_iter();
        rebuild_written(&shape, &mut it)
    };

    // Leaf schemas; every column name must bind to exactly one leaf,
    // otherwise join renames make the region impossible to rebuild
    // faithfully and we keep the written order.
    let mut schemas = Vec::with_capacity(leaves.len());
    for leaf in &leaves {
        schemas.push(plan_schema(db, leaf)?);
    }
    let mut owner: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
    for (i, s) in schemas.iter().enumerate() {
        for c in s.columns() {
            if owner.insert(c.name.as_str(), i).is_some() {
                return Ok(written(leaves));
            }
        }
    }

    // Classify conjuncts: two-leaf equality atoms are join edges, the
    // rest stays as a residual filter above the rebuilt tree.
    let mut edges: Vec<JoinEdge> = Vec::new();
    let mut residual: Vec<ScalarExpr> = Vec::new();
    for p in &preds {
        if let ScalarExpr::Cmp {
            op: pip_expr::CmpOp::Eq,
            left,
            right,
        } = p
        {
            if let (ScalarExpr::Column(a), ScalarExpr::Column(b)) = (&**left, &**right) {
                if let (Some(&la), Some(&lb)) = (owner.get(a.as_str()), owner.get(b.as_str())) {
                    if la != lb {
                        edges.push(JoinEdge {
                            a_leaf: la,
                            a_col: a.clone(),
                            b_leaf: lb,
                            b_col: b.clone(),
                        });
                        continue;
                    }
                }
            }
        }
        residual.push(p.clone());
    }

    // Estimates per leaf; estimation failure keeps the written order.
    let mut leaf_rows = Vec::with_capacity(leaves.len());
    for leaf in &leaves {
        match stats::estimate(db, leaf) {
            Ok(e) => leaf_rows.push(e.rows),
            Err(_) => return Ok(written(leaves)),
        }
    }

    let n = leaves.len();
    let mut in_tree = vec![false; n];

    // Key pairs between the current tree and a candidate leaf, oriented
    // (tree column, leaf column).
    let on_pairs = |in_tree: &[bool], leaf: usize| -> Vec<(String, String)> {
        edges
            .iter()
            .filter_map(|e| {
                if in_tree[e.a_leaf] && e.b_leaf == leaf {
                    Some((e.a_col.clone(), e.b_col.clone()))
                } else if in_tree[e.b_leaf] && e.a_leaf == leaf {
                    Some((e.b_col.clone(), e.a_col.clone()))
                } else {
                    None
                }
            })
            .collect()
    };
    let join_with = |acc: &Plan, leaf: &Plan, on: Vec<(String, String)>| -> Plan {
        if on.is_empty() {
            Plan::Product {
                left: Box::new(acc.clone()),
                right: Box::new(leaf.clone()),
            }
        } else {
            Plan::EquiJoin {
                left: Box::new(acc.clone()),
                right: Box::new(leaf.clone()),
                on,
            }
        }
    };

    // Seed the left-deep tree with the connected pair of smallest
    // estimated join output — a disconnected (cross-product) seed may
    // look tiny but forces a larger table onto a build side later, so
    // products are only considered when the region has no edges at all.
    // Written orientation (lower index left) is preferred on near-ties:
    // probe order is what downstream row order follows.
    let connected = |i: usize, j: usize| {
        edges
            .iter()
            .any(|e| (e.a_leaf == i && e.b_leaf == j) || (e.a_leaf == j && e.b_leaf == i))
    };
    let mut best: Option<(f64, usize, usize)> = None;
    for i in 0..n {
        for j in 0..n {
            if i == j || (!edges.is_empty() && !connected(i, j)) {
                continue;
            }
            let mut tree = vec![false; n];
            tree[i] = true;
            let candidate = join_with(&leaves[i], &leaves[j], on_pairs(&tree, j));
            let Ok(est) = stats::estimate(db, &candidate) else {
                return Ok(written(leaves));
            };
            // Prefer written orientation on near-ties: penalize flipped
            // pairs slightly so i < j wins unless the flip is a real win.
            let tie_bias = if i < j { 1.0 } else { 1.001 };
            let score = (est.rows + leaf_rows[j]) * tie_bias;
            if best.map(|(s, _, _)| score < s).unwrap_or(true) {
                best = Some((score, i, j));
            }
        }
    }
    let Some((_, first, second)) = best else {
        return Ok(written(leaves));
    };
    let mut order = vec![first, second];
    in_tree[first] = true;
    let mut acc = {
        let on = on_pairs(&in_tree, second);
        in_tree[second] = true;
        join_with(&leaves[first], &leaves[second], on)
    };

    // Extend greedily: next leaf = smallest estimated join output,
    // preferring connected leaves over cross products.
    type Step = (f64, usize, Vec<(String, String)>);
    while order.len() < n {
        let mut best: Option<Step> = None;
        for (j, leaf) in leaves.iter().enumerate() {
            if in_tree[j] {
                continue;
            }
            let on = on_pairs(&in_tree, j);
            let candidate = join_with(&acc, leaf, on.clone());
            let Ok(est) = stats::estimate(db, &candidate) else {
                return Ok(written(leaves));
            };
            // A disconnected leaf products with everything: its estimate
            // already reflects the blow-up, no extra penalty needed.
            if best.as_ref().map(|(s, _, _)| est.rows < *s).unwrap_or(true) {
                best = Some((est.rows, j, on));
            }
        }
        let (_, j, on) = best.expect("at least one unused leaf");
        acc = join_with(&acc, &leaves[j], on);
        in_tree[j] = true;
        order.push(j);
    }

    // Residual (non-equi / single-leaf) conjuncts filter above the tree.
    if let Some(pred) = rebuild(residual) {
        acc = Plan::Select {
            input: Box::new(acc),
            predicate: pred,
        };
    }

    // Restore the written column order when the leaf sequence changed.
    let written_order: Vec<usize> = (0..n).collect();
    if order != written_order {
        let orig_cols: Vec<String> = (0..n)
            .flat_map(|i| schemas[i].columns().iter().map(|c| c.name.clone()))
            .collect();
        acc = Plan::Project {
            input: Box::new(acc),
            exprs: orig_cols
                .into_iter()
                .map(|c| (c.clone(), ScalarExpr::col(c)))
                .collect(),
        };
    }

    // Adopt only on a clear estimated win over the written order.
    let written_plan = written(leaves);
    let old_cost = stats::plan_cost(db, &written_plan, cfg.target, &cfg.cost)?;
    let new_cost = stats::plan_cost(db, &acc, cfg.target, &cfg.cost)?;
    if new_cost < old_cost * cfg.reorder_margin {
        Ok(acc)
    } else {
        Ok(written_plan)
    }
}

// ---------------------------------------------------------------------
// Access-path selection.
// ---------------------------------------------------------------------

/// One inclusive/exclusive bound of an index seek range.
type Bound = Option<(Value, bool)>;

/// The access-path pass: bottom-up over the plan, rewriting
/// `Select(Scan)` to [`Plan::IndexScan`] and `EquiJoin(_, Scan)` to
/// [`Plan::IndexJoin`] wherever an index applies *and* wins on cost.
/// Both candidates keep the exact semantics (the full predicate is
/// re-applied as a residual; the join re-checks every key pair), so the
/// rewrite is always safe — the cost gate is purely about speed.
fn choose_access_paths(db: &Database, plan: Plan, cfg: &OptimizerConfig) -> Result<Plan> {
    Ok(match plan {
        leaf @ (Plan::Scan(_) | Plan::IndexScan { .. }) => leaf,
        Plan::Select { input, predicate } => {
            let input = choose_access_paths(db, *input, cfg)?;
            if let Plan::Scan(table) = &input {
                if let Some(better) = index_scan_candidate(db, table, &predicate, cfg)? {
                    return Ok(better);
                }
            }
            Plan::Select {
                input: Box::new(input),
                predicate,
            }
        }
        Plan::EquiJoin { left, right, on } => {
            let left = choose_access_paths(db, *left, cfg)?;
            let right = choose_access_paths(db, *right, cfg)?;
            if let Plan::Scan(table) = &right {
                if let Some(better) = index_join_candidate(db, &left, table, &on, cfg)? {
                    return Ok(better);
                }
            }
            Plan::EquiJoin {
                left: Box::new(left),
                right: Box::new(right),
                on,
            }
        }
        Plan::IndexJoin {
            left,
            table,
            index,
            on,
        } => Plan::IndexJoin {
            left: Box::new(choose_access_paths(db, *left, cfg)?),
            table,
            index,
            on,
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(choose_access_paths(db, *input, cfg)?),
            exprs,
        },
        Plan::Product { left, right } => Plan::Product {
            left: Box::new(choose_access_paths(db, *left, cfg)?),
            right: Box::new(choose_access_paths(db, *right, cfg)?),
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(choose_access_paths(db, *left, cfg)?),
            right: Box::new(choose_access_paths(db, *right, cfg)?),
        },
        Plan::Distinct(input) => Plan::Distinct(Box::new(choose_access_paths(db, *input, cfg)?)),
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(choose_access_paths(db, *left, cfg)?),
            right: Box::new(choose_access_paths(db, *right, cfg)?),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(choose_access_paths(db, *input, cfg)?),
            group_by,
            aggs,
        },
        Plan::Conf(input) => Plan::Conf(Box::new(choose_access_paths(db, *input, cfg)?)),
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(choose_access_paths(db, *input, cfg)?),
            keys,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(choose_access_paths(db, *input, cfg)?),
            n,
        },
    })
}

/// Flip a comparison so the column lands on the left.
fn flip_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        eq => eq,
    }
}

/// Tighten a lower bound: keep the greater value; at equal values an
/// exclusive bound is the stricter one.
fn tighten_lo(lo: &mut Bound, value: Value, inclusive: bool) {
    let stricter = match lo {
        None => true,
        Some((cur, cur_incl)) => match value.cmp_total(cur) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => *cur_incl && !inclusive,
            std::cmp::Ordering::Less => false,
        },
    };
    if stricter {
        *lo = Some((value, inclusive));
    }
}

/// Tighten an upper bound: keep the smaller value; at equal values an
/// exclusive bound is the stricter one.
fn tighten_hi(hi: &mut Bound, value: Value, inclusive: bool) {
    let stricter = match hi {
        None => true,
        Some((cur, cur_incl)) => match value.cmp_total(cur) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => *cur_incl && !inclusive,
            std::cmp::Ordering::Greater => false,
        },
    };
    if stricter {
        *hi = Some((value, inclusive));
    }
}

/// Extract the seek range the predicate's sargable conjuncts impose on
/// `column` — `column θ literal` comparisons against numeric literals.
/// `None` when no conjunct constrains the column at all (an unbounded
/// index scan never beats the sequential scan).
fn sargable_bounds(parts: &[ScalarExpr], column: &str) -> Option<(Bound, Bound)> {
    let mut lo: Bound = None;
    let mut hi: Bound = None;
    let mut any = false;
    for p in parts {
        let ScalarExpr::Cmp { op, left, right } = p else {
            continue;
        };
        let (op, value) = match (&**left, &**right) {
            (ScalarExpr::Column(c), ScalarExpr::Literal(v)) if c == column => (*op, v.clone()),
            (ScalarExpr::Literal(v), ScalarExpr::Column(c)) if c == column => {
                (flip_cmp(*op), v.clone())
            }
            _ => continue,
        };
        if !matches!(value, Value::Int(_) | Value::Float(_)) {
            continue;
        }
        match op {
            CmpOp::Eq => {
                tighten_lo(&mut lo, value.clone(), true);
                tighten_hi(&mut hi, value, true);
                any = true;
            }
            CmpOp::Lt => {
                tighten_hi(&mut hi, value, false);
                any = true;
            }
            CmpOp::Le => {
                tighten_hi(&mut hi, value, true);
                any = true;
            }
            CmpOp::Gt => {
                tighten_lo(&mut lo, value, false);
                any = true;
            }
            CmpOp::Ge => {
                tighten_lo(&mut lo, value, true);
                any = true;
            }
            CmpOp::Ne => {}
        }
    }
    if any {
        Some((lo, hi))
    } else {
        None
    }
}

/// Build the cheapest applicable [`Plan::IndexScan`] over `table` for
/// `predicate`, returning it only when it beats the sequential
/// `Select(Scan)` on estimated cost.
fn index_scan_candidate(
    db: &Database,
    table: &str,
    predicate: &ScalarExpr,
    cfg: &OptimizerConfig,
) -> Result<Option<Plan>> {
    let indexes = db.indexes_on(table);
    if indexes.is_empty() {
        return Ok(None);
    }
    let parts = conjuncts(predicate.clone());
    let mut best: Option<(f64, Plan)> = None;
    for (iname, entry) in indexes {
        let Some((lo, hi)) = sargable_bounds(&parts, &entry.column) else {
            continue;
        };
        let candidate = Plan::IndexScan {
            table: table.to_string(),
            index: iname,
            column: entry.column.clone(),
            lo,
            hi,
            predicate: predicate.clone(),
        };
        let cost = stats::plan_cost(db, &candidate, cfg.target, &cfg.cost)?;
        if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
            best = Some((cost, candidate));
        }
    }
    let Some((cost, candidate)) = best else {
        return Ok(None);
    };
    let sequential = Plan::Select {
        input: Box::new(Plan::Scan(table.to_string())),
        predicate: predicate.clone(),
    };
    let seq_cost = stats::plan_cost(db, &sequential, cfg.target, &cfg.cost)?;
    Ok(if cost < seq_cost {
        Some(candidate)
    } else {
        None
    })
}

/// Build an [`Plan::IndexJoin`] probing `table` through an index on one
/// of the join's probe-side key columns, returning it only when it
/// beats the hash join on estimated cost.
fn index_join_candidate(
    db: &Database,
    left: &Plan,
    table: &str,
    on: &[(String, String)],
    cfg: &OptimizerConfig,
) -> Result<Option<Plan>> {
    let Some((iname, _)) = db
        .indexes_on(table)
        .into_iter()
        .find(|(_, e)| on.iter().any(|(_, r)| r == &e.column))
    else {
        return Ok(None);
    };
    let candidate = Plan::IndexJoin {
        left: Box::new(left.clone()),
        table: table.to_string(),
        index: iname,
        on: on.to_vec(),
    };
    let hash = Plan::EquiJoin {
        left: Box::new(left.clone()),
        right: Box::new(Plan::Scan(table.to_string())),
        on: on.to_vec(),
    };
    let index_cost = stats::plan_cost(db, &candidate, cfg.target, &cfg.cost)?;
    let hash_cost = stats::plan_cost(db, &hash, cfg.target, &cfg.cost)?;
    Ok(if index_cost < hash_cost {
        Some(candidate)
    } else {
        None
    })
}

// ---------------------------------------------------------------------
// Cost-gated projection pushdown.
// ---------------------------------------------------------------------

/// Add `names` to a requirement set (`None` means "all columns").
fn require(req: &mut Option<Vec<String>>, names: &[String]) {
    if let Some(set) = req {
        for n in names {
            if !set.contains(n) {
                set.push(n.clone());
            }
        }
    }
}

/// Expected number of times one input-side row's cells are cloned by the
/// operators above the current position (`mult`), updated as the pass
/// descends. The scan-level gate compares the cells saved against the
/// cost of the extra projection stage; per scanned row:
/// `saved = dropped_cols × cell_cost × mult` vs
/// `stage = row_cost + cell_cost × kept_cols`.
fn scan_prune_pays(cfg: &OptimizerConfig, dropped: usize, kept: usize, mult: f64) -> bool {
    match cfg.prune {
        PruneMode::Never => false,
        PruneMode::Always => dropped > 0,
        PruneMode::CostBased => {
            dropped as f64 * cfg.cost.cell_cost * mult
                > cfg.cost.row_cost + cfg.cost.cell_cost * kept as f64
        }
    }
}

/// The projection-pushdown pass: propagate the set of columns each node
/// actually needs downward and wrap base-table scans whose schema is a
/// strict superset in a narrow column projection — where the cost gate
/// approves (see [`scan_prune_pays`]).
///
/// `required = None` means every column is needed. The pass is
/// deliberately conservative: nodes whose semantics depend on the whole
/// row (`distinct`, `difference`, `union`, `conf`) reset the requirement
/// to "all", as does any column name that does not bind unambiguously to
/// exactly one side of a product/join (e.g. post-join `.right` renames).
fn prune_columns(
    db: &Database,
    plan: Plan,
    required: Option<Vec<String>>,
    mult: f64,
    cfg: &OptimizerConfig,
) -> Result<Plan> {
    let mat = cfg.target == ExecTarget::Materializing;
    Ok(match plan {
        Plan::Scan(name) => {
            let schema = db.table(&name)?.schema().clone();
            let keep: Vec<&pip_core::Column> = match &required {
                None => return Ok(Plan::Scan(name)),
                Some(req) => schema
                    .columns()
                    .iter()
                    .filter(|c| req.contains(&c.name))
                    .collect(),
            };
            let dropped = schema.len() - keep.len();
            if keep.is_empty() || !scan_prune_pays(cfg, dropped, keep.len(), mult) {
                return Ok(Plan::Scan(name));
            }
            Plan::Project {
                input: Box::new(Plan::Scan(name)),
                exprs: keep
                    .into_iter()
                    .map(|c| (c.name.clone(), ScalarExpr::col(c.name.clone())))
                    .collect(),
            }
        }
        // Access paths are final: an index scan emits whole base rows,
        // and the index join's probe side must stay unwrapped, so the
        // pass only recurses conservatively.
        leaf @ Plan::IndexScan { .. } => leaf,
        Plan::IndexJoin {
            left,
            table,
            index,
            on,
        } => Plan::IndexJoin {
            left: Box::new(prune_columns(db, *left, None, mult, cfg)?),
            table,
            index,
            on,
        },
        Plan::Select { input, predicate } => {
            let mut req = required;
            let mut cols = Vec::new();
            columns_of(&predicate, &mut cols);
            require(&mut req, &cols);
            // The materializing interpreter clones every kept row.
            let child_mult = if mat { mult + 1.0 } else { mult };
            Plan::Select {
                input: Box::new(prune_columns(db, *input, req, child_mult, cfg)?),
                predicate,
            }
        }
        Plan::Project { input, exprs } => {
            // A projection redefines the row: only its own inputs
            // matter — and only the outputs the parent needs survive.
            let exprs = match &required {
                Some(req) => {
                    let kept: Vec<(String, ScalarExpr)> = exprs
                        .iter()
                        .filter(|(n, _)| req.contains(n))
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        exprs
                    } else {
                        kept
                    }
                }
                None => exprs,
            };
            let mut cols = Vec::new();
            for (_, e) in &exprs {
                columns_of(e, &mut cols);
            }
            // Dead columns die at this projection for free: clone
            // counting below restarts at zero.
            Plan::Project {
                input: Box::new(prune_columns(db, *input, Some(cols), 0.0, cfg)?),
                exprs,
            }
        }
        Plan::Product { left, right } => {
            let (l_req, r_req) = split_requirement(db, &left, &right, required, &[])?;
            // Every pair clones both sides' cells (output = l × r), so
            // each side's per-row fan-out is the other side's rows.
            let l_rows = stats::estimate(db, &left).map(|e| e.rows).unwrap_or(1.0);
            let r_rows = stats::estimate(db, &right).map(|e| e.rows).unwrap_or(1.0);
            let l_mult = r_rows * (1.0 + mult);
            let r_mult = l_rows * (1.0 + mult);
            Plan::Product {
                left: Box::new(prune_columns(db, *left, l_req, l_mult, cfg)?),
                right: Box::new(prune_columns(db, *right, r_req, r_mult, cfg)?),
            }
        }
        Plan::EquiJoin { left, right, on } => {
            let (l_req, r_req) = split_requirement(db, &left, &right, required, &on)?;
            // Pipelined join: each side's cells are cloned once per
            // *matching* output row (fan-out = other rows × key
            // selectivity, via build-order candidate probing).
            // Materializing join: product-then-select clones each side
            // once per *pair* first, then clones survivors again.
            let l_rows = stats::estimate(db, &left).map(|e| e.rows).unwrap_or(1.0);
            let r_rows = stats::estimate(db, &right).map(|e| e.rows).unwrap_or(1.0);
            let sel = stats::equijoin_selectivity(db, &left, &right, &on);
            let (f_l, f_r) = (r_rows * sel, l_rows * sel);
            let (l_mult, r_mult) = if mat {
                (r_rows + f_l * (1.0 + mult), l_rows + f_r * (1.0 + mult))
            } else {
                (f_l * (1.0 + mult), f_r * (1.0 + mult))
            };
            Plan::EquiJoin {
                left: Box::new(prune_columns(db, *left, l_req, l_mult, cfg)?),
                right: Box::new(prune_columns(db, *right, r_req, r_mult, cfg)?),
                on,
            }
        }
        // Positional (union/difference) and whole-row (distinct/conf)
        // semantics: every column stays live.
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(prune_columns(db, *left, None, mult, cfg)?),
            right: Box::new(prune_columns(db, *right, None, mult, cfg)?),
        },
        Plan::Difference { left, right } => Plan::Difference {
            left: Box::new(prune_columns(db, *left, None, mult, cfg)?),
            right: Box::new(prune_columns(db, *right, None, mult, cfg)?),
        },
        Plan::Distinct(input) => {
            Plan::Distinct(Box::new(prune_columns(db, *input, None, mult, cfg)?))
        }
        Plan::Conf(input) => Plan::Conf(Box::new(prune_columns(db, *input, None, mult, cfg)?)),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let mut cols: Vec<String> = group_by.clone();
            for a in &aggs {
                if let crate::plan::AggFunc::ExpectedSum(c)
                | crate::plan::AggFunc::ExpectedAvg(c)
                | crate::plan::AggFunc::ExpectedMax { column: c, .. } = a
                {
                    if !cols.contains(c) {
                        cols.push(c.clone());
                    }
                }
            }
            // Group partitioning clones each row once; dead columns die
            // inside the head.
            Plan::Aggregate {
                input: Box::new(prune_columns(db, *input, Some(cols), 1.0, cfg)?),
                group_by,
                aggs,
            }
        }
        Plan::Sort { input, keys } => {
            let mut req = required;
            let key_cols: Vec<String> = keys.iter().map(|(c, _)| c.clone()).collect();
            require(&mut req, &key_cols);
            // Blocking: buffered rows replay through a clone.
            Plan::Sort {
                input: Box::new(prune_columns(db, *input, req, mult + 1.0, cfg)?),
                keys,
            }
        }
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(prune_columns(db, *input, required, mult, cfg)?),
            n,
        },
    })
}

/// Attribute a requirement set to the two sides of a product/join. Any
/// name that does not bind to exactly one side (absent, or present on
/// both — it would be `.right`-renamed in the joined schema) makes the
/// split bail out to "all columns" on both sides.
#[allow(clippy::type_complexity)]
fn split_requirement(
    db: &Database,
    left: &Plan,
    right: &Plan,
    required: Option<Vec<String>>,
    on: &[(String, String)],
) -> Result<(Option<Vec<String>>, Option<Vec<String>>)> {
    let Some(req) = required else {
        return Ok((None, None));
    };
    let l_schema = plan_schema(db, left)?;
    let r_schema = plan_schema(db, right)?;
    let has = |s: &Schema, c: &str| s.index_of(c).is_ok();
    let mut l_req: Vec<String> = Vec::new();
    let mut r_req: Vec<String> = Vec::new();
    for name in req {
        match (has(&l_schema, &name), has(&r_schema, &name)) {
            (true, false) => l_req.push(name),
            (false, true) => r_req.push(name),
            _ => return Ok((None, None)), // ambiguous or unknown
        }
    }
    for (l, r) in on {
        if !l_req.contains(l) {
            l_req.push(l.clone());
        }
        if !r_req.contains(r) {
            r_req.push(r.clone());
        }
    }
    Ok((Some(l_req), Some(r_req)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pip_core::{tuple, DataType};
    use pip_sampling::SamplerConfig;

    fn setup() -> Database {
        let db = Database::new();
        db.create_table(
            "l",
            Schema::of(&[("a", DataType::Int), ("b", DataType::Int)]),
        )
        .unwrap();
        db.create_table(
            "r",
            Schema::of(&[("c", DataType::Int), ("d", DataType::Int)]),
        )
        .unwrap();
        db.insert_tuples("l", &[tuple![1i64, 10i64], tuple![2i64, 20i64]])
            .unwrap();
        db.insert_tuples("r", &[tuple![1i64, 100i64], tuple![3i64, 300i64]])
            .unwrap();
        db
    }

    /// Config that isolates the predicate-pushdown pass shapes (no
    /// reordering, no pruning) for structural assertions.
    fn pushdown_only() -> OptimizerConfig {
        OptimizerConfig {
            reorder_joins: false,
            prune: PruneMode::Never,
            ..OptimizerConfig::default()
        }
    }

    /// Config with unconditional pruning (the pre-cost-gate behavior).
    fn prune_always() -> OptimizerConfig {
        OptimizerConfig {
            reorder_joins: false,
            prune: PruneMode::Always,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn single_side_conjuncts_are_pushed() {
        let db = setup();
        let plan = PlanBuilder::scan("l")
            .product(PlanBuilder::scan("r"))
            .select(
                ScalarExpr::col("a")
                    .eq(ScalarExpr::lit(1i64))
                    .and(ScalarExpr::col("d").gt(ScalarExpr::lit(0i64)))
                    .and(ScalarExpr::col("a").eq(ScalarExpr::col("c"))),
            )
            .unwrap()
            .build();
        let opt = optimize_with(&db, plan.clone(), &pushdown_only()).unwrap();
        // Expect: Select(cross-side) over Product(Select(l), Select(r)).
        match &opt {
            Plan::Select { input, predicate } => {
                let mut cols = Vec::new();
                columns_of(predicate, &mut cols);
                assert_eq!(cols, vec!["a".to_string(), "c".to_string()]);
                match &**input {
                    Plan::Product { left, right } => {
                        assert!(matches!(**left, Plan::Select { .. }), "{left:?}");
                        assert!(matches!(**right, Plan::Select { .. }), "{right:?}");
                    }
                    other => panic!("expected product, got {other:?}"),
                }
            }
            other => panic!("expected top select, got {other:?}"),
        }
        // Semantics preserved, both under pushdown only and the full
        // cost-based pipeline (which converts the product to a join).
        let cfg = SamplerConfig::default();
        let a = crate::exec::execute(&db, &plan, &cfg).unwrap();
        let b = crate::exec::execute(&db, &opt, &cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
        let full = optimize(&db, plan.clone()).unwrap();
        let c = crate::exec::execute(&db, &full, &cfg).unwrap();
        assert_eq!(a.rows(), c.rows());
    }

    #[test]
    fn select_fusion() {
        let db = setup();
        let plan = PlanBuilder::scan("l")
            .select(ScalarExpr::col("a").gt(ScalarExpr::lit(0i64)))
            .unwrap()
            .select(ScalarExpr::col("b").gt(ScalarExpr::lit(0i64)))
            .unwrap()
            .build();
        let opt = optimize(&db, plan).unwrap();
        // One fused Select over the scan.
        match opt {
            Plan::Select { input, predicate } => {
                assert!(matches!(*input, Plan::Scan(_)));
                assert!(matches!(predicate, ScalarExpr::And(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ambiguous_columns_not_pushed_or_reordered() {
        let db = setup();
        db.create_table("l2", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        db.create_table("r2", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        let plan = PlanBuilder::scan("l2")
            .product(PlanBuilder::scan("r2"))
            .select(ScalarExpr::col("a").gt(ScalarExpr::lit(0i64)))
            .unwrap()
            .build();
        let opt = optimize(&db, plan).unwrap();
        // `a` exists on both sides → predicate must stay above, and the
        // reorderer must leave the ambiguous region alone.
        match opt {
            Plan::Select { input, .. } => {
                assert!(matches!(*input, Plan::Product { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pushdown_through_equijoin_preserves_results() {
        let db = setup();
        let plan = PlanBuilder::scan("l")
            .equi_join(PlanBuilder::scan("r"), vec![("a", "c")])
            .select(ScalarExpr::col("b").ge(ScalarExpr::lit(10i64)))
            .unwrap()
            .build();
        let opt = optimize(&db, plan.clone()).unwrap();
        let cfg = SamplerConfig::default();
        let a = crate::exec::execute(&db, &plan, &cfg).unwrap();
        let b = crate::exec::execute(&db, &opt, &cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
        // And the filter moved below the join.
        match opt {
            Plan::EquiJoin { left, .. } => {
                assert!(matches!(*left, Plan::Select { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn projection_pushdown_prunes_scans_under_aggregates() {
        let db = setup();
        // Only `a` is referenced: `b` is prunable at the scan — the
        // mechanism fires under PruneMode::Always...
        let plan = PlanBuilder::scan("l")
            .aggregate(vec![], vec![crate::plan::AggFunc::ExpectedSum("a".into())])
            .build();
        let opt = optimize_with(&db, plan.clone(), &prune_always()).unwrap();
        match &opt {
            Plan::Aggregate { input, .. } => match &**input {
                Plan::Project { input, exprs } => {
                    assert_eq!(exprs.len(), 1);
                    assert_eq!(exprs[0].0, "a");
                    assert!(matches!(**input, Plan::Scan(_)));
                }
                other => panic!("expected pruning projection, got {other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // ...but the cost gate declines it: the row is cloned once into
        // its group, which cannot repay a fresh per-row stage.
        let gated = optimize(&db, plan.clone()).unwrap();
        match &gated {
            Plan::Aggregate { input, .. } => {
                assert!(matches!(**input, Plan::Scan(_)), "{input:?}")
            }
            other => panic!("{other:?}"),
        }
        let cfg = SamplerConfig::default();
        let a = crate::exec::execute(&db, &plan, &cfg).unwrap();
        let b = crate::exec::execute(&db, &opt, &cfg).unwrap();
        assert_eq!(a.rows(), b.rows());
    }

    #[test]
    fn projection_pushdown_splits_across_joins() {
        let db = setup();
        // d is never used; c is a join key and must survive.
        let plan = PlanBuilder::scan("l")
            .equi_join(PlanBuilder::scan("r"), vec![("a", "c")])
            .project(vec![("b", ScalarExpr::col("b"))])
            .build();
        let opt = optimize_with(&db, plan.clone(), &prune_always()).unwrap();
        let text = opt.explain();
        assert!(text.contains("Project: [c]"), "{text}");
        let cfg = SamplerConfig::default();
        assert_eq!(
            crate::exec::execute(&db, &plan, &cfg).unwrap().rows(),
            crate::exec::execute(&db, &opt, &cfg).unwrap().rows()
        );
    }

    #[test]
    fn cost_gate_prunes_wide_fanout_sides() {
        // A build side whose rows fan out into many join outputs repays
        // pruning; the probe side (fan-out 1) does not.
        let db = Database::new();
        db.create_table(
            "probe",
            Schema::of(&[
                ("pk", DataType::Int),
                ("pv", DataType::Float),
                ("pad0", DataType::Float),
            ]),
        )
        .unwrap();
        let mut build_cols = vec![("bk", DataType::Int), ("bv", DataType::Float)];
        let pads: Vec<String> = (0..8).map(|i| format!("bpad{i}")).collect();
        for p in &pads {
            build_cols.push((p.as_str(), DataType::Float));
        }
        db.create_table("build", Schema::of(&build_cols)).unwrap();
        for i in 0..200i64 {
            db.insert_tuples("probe", &[tuple![i % 10, i as f64, 0.0]])
                .unwrap();
        }
        for i in 0..10i64 {
            let mut cells = vec![pip_expr::Equation::val(i), pip_expr::Equation::val(1.0)];
            for _ in 0..8 {
                cells.push(pip_expr::Equation::val(0.0));
            }
            db.insert_rows("build", vec![pip_ctable::CRow::unconditional(cells)])
                .unwrap();
        }
        let plan = PlanBuilder::scan("probe")
            .equi_join(PlanBuilder::scan("build"), vec![("pk", "bk")])
            .project(vec![(
                "x",
                ScalarExpr::col("pv").mul(ScalarExpr::col("bv")),
            )])
            .build();
        let opt = optimize(&db, plan).unwrap();
        let text = opt.explain();
        // Build side pruned to its key + referenced value...
        assert!(text.contains("Project: [bk, bv]"), "{text}");
        // ...probe side left alone (fan-out 1: pruning cannot pay).
        assert!(!text.contains("Project: [pk, pv]"), "{text}");
    }

    #[test]
    fn projection_pushdown_respects_whole_row_operators() {
        let db = setup();
        // distinct dedups on all cells: nothing may be pruned below it.
        let plan = PlanBuilder::scan("l")
            .distinct()
            .aggregate(vec![], vec![crate::plan::AggFunc::ExpectedCount])
            .build();
        let opt = optimize_with(&db, plan, &prune_always()).unwrap();
        match &opt {
            Plan::Aggregate { input, .. } => match &**input {
                Plan::Distinct(inner) => assert!(matches!(**inner, Plan::Scan(_)), "{inner:?}"),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
        // Ambiguous names across a product bail out to no pruning.
        db.create_table("l2", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        db.create_table("r2", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        let plan = PlanBuilder::scan("l2")
            .product(PlanBuilder::scan("r2"))
            .aggregate(vec![], vec![crate::plan::AggFunc::ExpectedSum("a".into())])
            .build();
        let opt = optimize_with(&db, plan, &prune_always()).unwrap();
        match &opt {
            Plan::Aggregate { input, .. } => match &**input {
                Plan::Product { left, right } => {
                    assert!(matches!(**left, Plan::Scan(_)));
                    assert!(matches!(**right, Plan::Scan(_)));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    /// Three name-disjoint tables with skewed sizes for reorder tests:
    /// `big(bk, bx)` 60 rows, `mid(mk, mv)` 12, `tiny(tk, tv)` 3.
    fn reorder_db() -> Database {
        let db = Database::new();
        db.create_table(
            "big",
            Schema::of(&[("bk", DataType::Int), ("bx", DataType::Int)]),
        )
        .unwrap();
        db.create_table(
            "mid",
            Schema::of(&[("mk", DataType::Int), ("mv", DataType::Int)]),
        )
        .unwrap();
        db.create_table(
            "tiny",
            Schema::of(&[("tk", DataType::Int), ("tv", DataType::Int)]),
        )
        .unwrap();
        for i in 0..60i64 {
            db.insert_tuples("big", &[tuple![i % 12, i]]).unwrap();
        }
        for i in 0..12i64 {
            db.insert_tuples("mid", &[tuple![i, i % 3]]).unwrap();
        }
        for i in 0..3i64 {
            db.insert_tuples("tiny", &[tuple![i, i * 100]]).unwrap();
        }
        db
    }

    #[test]
    fn cross_side_equality_becomes_hash_join() {
        // σ_{bk=mk}(big × mid) — written as a product — should execute
        // as a hash join after optimization.
        let db = reorder_db();
        let plan = PlanBuilder::scan("big")
            .product(PlanBuilder::scan("mid"))
            .select(ScalarExpr::col("bk").eq(ScalarExpr::col("mk")))
            .unwrap()
            .build();
        let opt = optimize(&db, plan.clone()).unwrap();
        match &opt {
            Plan::EquiJoin { on, .. } => {
                assert_eq!(on, &vec![("bk".to_string(), "mk".to_string())])
            }
            other => panic!("expected hash join, got {other:?}"),
        }
        // The conversion preserves rows bit-for-bit (same probe order).
        let cfg = SamplerConfig::default();
        let a = crate::exec::execute(&db, &plan, &cfg).unwrap();
        let b = crate::exec::execute(&db, &opt, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn join_graph_reorders_by_cardinality() {
        // Written order products big × mid first even though the tiny
        // table is the selective one; the reorderer must restructure,
        // and the result schema must stay identical.
        let db = reorder_db();
        let plan = PlanBuilder::scan("big")
            .product(PlanBuilder::scan("mid"))
            .product(PlanBuilder::scan("tiny"))
            .select(
                ScalarExpr::col("bk")
                    .eq(ScalarExpr::col("mk"))
                    .and(ScalarExpr::col("mv").eq(ScalarExpr::col("tk"))),
            )
            .unwrap()
            .build();
        let opt = optimize(&db, plan.clone()).unwrap();
        let text = opt.explain();
        assert!(text.contains("EquiJoin"), "no join produced:\n{text}");
        assert!(!text.contains("Product"), "product survived:\n{text}");
        let names = |p: &Plan| -> Vec<String> {
            plan_schema(&db, p)
                .unwrap()
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect()
        };
        assert_eq!(
            names(&plan),
            names(&opt),
            "reordering must not change the output column order"
        );
        // Multiset world-semantics: same tuples, order may differ.
        let cfg = SamplerConfig::default();
        let mut a = crate::exec::execute(&db, &plan, &cfg)
            .unwrap()
            .instantiate(&pip_expr::Assignment::new())
            .unwrap();
        let mut b = crate::exec::execute(&db, &opt, &cfg)
            .unwrap()
            .instantiate(&pip_expr::Assignment::new())
            .unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn reorder_keeps_written_order_when_already_optimal() {
        // A two-table equi-join with the smaller table already on the
        // build side gains nothing; the written plan must come back
        // unchanged (bit-compatible row order).
        let db = reorder_db();
        let plan = PlanBuilder::scan("big")
            .equi_join(PlanBuilder::scan("mid"), vec![("bk", "mk")])
            .build();
        let opt = optimize_with(
            &db,
            plan.clone(),
            &OptimizerConfig {
                prune: PruneMode::Never,
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(opt, plan);
    }

    /// Indexed fact table (400 rows) with a small dimension table: the
    /// shape where secondary-index access paths pay off only for
    /// selective work.
    fn index_db() -> Database {
        let db = Database::new();
        db.create_table(
            "fact",
            Schema::of(&[("fk", DataType::Int), ("fv", DataType::Float)]),
        )
        .unwrap();
        db.create_table(
            "dim",
            Schema::of(&[("dk", DataType::Int), ("dv", DataType::Float)]),
        )
        .unwrap();
        let rows: Vec<_> = (0..400i64).map(|i| tuple![i, i as f64]).collect();
        db.insert_tuples("fact", &rows).unwrap();
        let rows: Vec<_> = (0..20i64).map(|i| tuple![i, i as f64 * 10.0]).collect();
        db.insert_tuples("dim", &rows).unwrap();
        db.create_index("idx_fk", "fact", "fk").unwrap();
        db.analyze_all().unwrap();
        db
    }

    fn no_index_cfg() -> OptimizerConfig {
        OptimizerConfig {
            use_indexes: false,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn cost_model_picks_index_scan_only_when_selective() {
        let db = index_db();
        let cfg = SamplerConfig::default();
        // Selective range: the histogram prices it at ~2/400 rows, so
        // the seek beats the sequential scan.
        let selective = PlanBuilder::scan("fact")
            .select(
                ScalarExpr::col("fk")
                    .ge(ScalarExpr::lit(10i64))
                    .and(ScalarExpr::col("fk").lt(ScalarExpr::lit(12i64))),
            )
            .unwrap()
            .build();
        let opt = optimize(&db, selective.clone()).unwrap();
        assert!(
            matches!(opt, Plan::IndexScan { .. }),
            "expected IndexScan, got:\n{}",
            opt.explain()
        );
        // The index path is bit-identical to the pre-index plan.
        let a = crate::exec::execute(
            &db,
            &optimize_with(&db, selective, &no_index_cfg()).unwrap(),
            &cfg,
        )
        .unwrap();
        let b = crate::exec::execute(&db, &opt, &cfg).unwrap();
        assert_eq!(a, b);
        // Non-selective range: the histogram says nearly every row
        // qualifies, so the full scan stays.
        let wide = PlanBuilder::scan("fact")
            .select(ScalarExpr::col("fk").ge(ScalarExpr::lit(0i64)))
            .unwrap()
            .build();
        let opt = optimize(&db, wide).unwrap();
        assert!(
            matches!(opt, Plan::Select { .. }),
            "expected full scan to survive, got:\n{}",
            opt.explain()
        );
    }

    #[test]
    fn cost_model_picks_index_join_for_small_probe_side() {
        let db = index_db();
        let cfg = SamplerConfig::default();
        // 3 dimension rows probing a 400-row indexed fact table: the
        // seek-per-probe-row plan beats building a 400-row hash table.
        let plan = PlanBuilder::scan("dim")
            .select(ScalarExpr::col("dk").lt(ScalarExpr::lit(3i64)))
            .unwrap()
            .equi_join(PlanBuilder::scan("fact"), vec![("dk", "fk")])
            .build();
        let opt = optimize(&db, plan.clone()).unwrap();
        assert!(
            opt.explain().contains("IndexJoin"),
            "expected IndexJoin, got:\n{}",
            opt.explain()
        );
        let a = crate::exec::execute(
            &db,
            &optimize_with(&db, plan, &no_index_cfg()).unwrap(),
            &cfg,
        )
        .unwrap();
        let b = crate::exec::execute(&db, &opt, &cfg).unwrap();
        assert_eq!(a, b);
        // Probe side as large as the indexed side: per-row seeks cost
        // more than one hash build, so the hash join survives.
        let plan = PlanBuilder::scan("fact")
            .equi_join(PlanBuilder::scan("fact"), vec![("fk", "fk")])
            .build();
        let opt = optimize(&db, plan).unwrap();
        assert!(
            !opt.explain().contains("IndexJoin"),
            "expected hash join to survive, got:\n{}",
            opt.explain()
        );
    }

    #[test]
    fn unindexed_or_unbounded_predicates_keep_the_scan() {
        let db = index_db();
        // No conjunct constrains the indexed column.
        let plan = PlanBuilder::scan("fact")
            .select(ScalarExpr::col("fv").lt(ScalarExpr::lit(5.0)))
            .unwrap()
            .build();
        let opt = optimize(&db, plan).unwrap();
        assert!(matches!(opt, Plan::Select { .. }), "{}", opt.explain());
        // use_indexes: false is a hard off-switch even for selective work.
        let plan = PlanBuilder::scan("fact")
            .select(ScalarExpr::col("fk").eq(ScalarExpr::lit(7i64)))
            .unwrap()
            .build();
        let opt = optimize_with(&db, plan, &no_index_cfg()).unwrap();
        assert!(matches!(opt, Plan::Select { .. }), "{}", opt.explain());
    }

    #[test]
    fn plan_schema_shapes() {
        let db = setup();
        let s = plan_schema(&db, &Plan::Scan("l".into())).unwrap();
        assert_eq!(s.len(), 2);
        let agg = PlanBuilder::scan("l")
            .aggregate(vec!["a"], vec![crate::plan::AggFunc::ExpectedCount])
            .build();
        let s = plan_schema(&db, &agg).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.columns()[1].name, "expected_count(*)");
        let conf = PlanBuilder::scan("l").conf().build();
        assert_eq!(plan_schema(&db, &conf).unwrap().len(), 3);
    }
}
