//! Table statistics, cardinality estimation, and the plan cost model.
//!
//! The deterministic query phase is only cheap if the plan is good, and
//! plan quality should not depend on how the user wrote the query
//! (Section III-C leans on the host DBMS for exactly this). This module
//! supplies the three ingredients the cost-based passes in
//! [`crate::optimize`] consume:
//!
//! 1. **Statistics** ([`TableStats`] / [`ColumnStats`]): per-table row
//!    counts and per-column distinct-value estimates, min/max bounds,
//!    and — specific to c-tables — the *deterministic vs symbolic* cell
//!    split. A predicate over symbolic cells does not remove rows, it
//!    conjoins condition atoms, so its selectivity must be treated as 1
//!    for the symbolic fraction of a column.
//! 2. **Cardinality estimation** ([`estimate`]): selectivity rules for
//!    equality/range/conjunction and NDV-based join fan-out, applied
//!    over logical [`Plan`] nodes.
//! 3. **A cost model** ([`plan_cost`]) distinguishing the pipelined
//!    executor (fused σ/π stages, build/probe hash joins) from the
//!    materializing reference interpreter (every operator clones whole
//!    intermediate tables).

use std::collections::HashSet;

use pip_core::{DataType, Result, Value};
use pip_ctable::{CRow, CTable};
use pip_expr::CmpOp;

use crate::catalog::Database;
use crate::optimize::plan_schema;
use crate::plan::{Plan, ScalarExpr};

/// Selectivity assumed for predicates the estimator cannot resolve to
/// column statistics (neither too optimistic nor row-preserving).
const DEFAULT_SELECTIVITY: f64 = 0.5;

/// Random-access penalty for index probes relative to a sequential
/// scan's per-row touch: candidate row ids come back in ascending order
/// but are not contiguous, so each fetch pays an extra indirection.
const INDEX_PROBE_COST: f64 = 1.5;

/// Bucket budget for per-column equi-depth histograms.
const HISTOGRAM_BUCKETS: usize = 32;

/// An equi-depth histogram over the deterministic numeric cells of one
/// column: `bounds` has one more entry than `counts`, bucket `i` covers
/// `[bounds[i], bounds[i+1]]` and holds `counts[i]` values. Buckets are
/// built to equal depth at `ANALYZE` time (so skew shows up as narrow
/// buckets, not mis-estimates); incremental INSERT maintenance bumps the
/// covering bucket in place and widens the edge bounds as needed, which
/// drifts toward unequal depth until the staleness threshold triggers a
/// rebuild.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub bounds: Vec<f64>,
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build an equi-depth histogram over (up to [`HISTOGRAM_BUCKETS`]
    /// buckets of) the given values. Returns `None` for no values.
    /// Bucket boundaries never split a run of equal values, so
    /// `fraction_le(v)` is exact at every boundary value.
    pub fn equi_depth(mut values: Vec<f64>) -> Option<Histogram> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let b = HISTOGRAM_BUCKETS.min(n);
        let mut bounds = vec![values[0]];
        let mut counts = Vec::with_capacity(b);
        let mut start = 0usize;
        for i in 0..b {
            let mut end = ((i + 1) * n) / b;
            if end <= start {
                continue;
            }
            while end < n && values[end] == values[end - 1] {
                end += 1;
            }
            counts.push((end - start) as u64);
            bounds.push(values[end - 1]);
            start = end;
            if start >= n {
                break;
            }
        }
        Some(Histogram { bounds, counts })
    }

    /// Total values held.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated fraction of values `<= x`, with linear interpolation
    /// inside the covering bucket.
    pub fn fraction_le(&self, x: f64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (i, &cnt) in self.counts.iter().enumerate() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if x >= hi {
                acc += cnt as f64;
                continue;
            }
            if x >= lo && hi > lo {
                acc += (x - lo) / (hi - lo) * cnt as f64;
            }
            break;
        }
        acc / total as f64
    }

    /// Incremental INSERT maintenance: count `x` in its covering bucket,
    /// widening the edge bounds when it falls outside the histogram.
    pub fn bump(&mut self, x: f64) {
        if self.counts.is_empty() {
            return;
        }
        if x < self.bounds[0] {
            self.bounds[0] = x;
            self.counts[0] += 1;
            return;
        }
        let last = self.bounds.len() - 1;
        if x > self.bounds[last] {
            self.bounds[last] = x;
            *self.counts.last_mut().expect("non-empty") += 1;
            return;
        }
        for i in 0..self.counts.len() {
            if x <= self.bounds[i + 1] {
                self.counts[i] += 1;
                return;
            }
        }
    }
}

/// Per-column statistics of one analyzed table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    pub name: String,
    pub dtype: DataType,
    /// Cells holding a constant value.
    pub n_deterministic: u64,
    /// Cells holding a random-variable equation (opaque until sampling).
    pub n_symbolic: u64,
    /// Distinct-value estimate: distinct constants, plus each symbolic
    /// cell counted as potentially distinct (conservative).
    pub n_distinct: f64,
    /// Minimum over deterministic numeric cells.
    pub min: Option<f64>,
    /// Maximum over deterministic numeric cells.
    pub max: Option<f64>,
    /// Equi-depth histogram over deterministic numeric cells (absent
    /// when the column has none, or the statistics predate histograms).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// Fraction of cells that are symbolic (0 when the table is empty).
    pub fn symbolic_fraction(&self) -> f64 {
        let total = self.n_deterministic + self.n_symbolic;
        if total == 0 {
            0.0
        } else {
            self.n_symbolic as f64 / total as f64
        }
    }
}

/// Statistics of one analyzed table snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub table: String,
    pub rows: u64,
    /// Rows carrying a non-trivial c-table condition.
    pub conditional_rows: u64,
    pub columns: Vec<ColumnStats>,
    /// Catalog version the statistics are valid at. A full collection
    /// stamps the version it scanned; cheap delta maintenance on insert
    /// re-stamps the entry at the post-insert version without rescanning.
    pub version: u64,
    /// Rows at the last *full* collection. `rows` may run ahead of this
    /// via delta maintenance; once the gap exceeds
    /// [`TableStats::COLUMN_STALENESS`], the per-column statistics are
    /// considered stale and the catalog recollects on demand.
    pub analyzed_rows: u64,
}

impl TableStats {
    /// Analyze a table snapshot: one full scan collecting row counts and
    /// per-column NDV, min/max and the deterministic/symbolic split.
    pub fn analyze(name: &str, table: &CTable, version: u64) -> TableStats {
        let mut columns: Vec<ColumnStats> = table
            .schema()
            .columns()
            .iter()
            .map(|c| ColumnStats {
                name: c.name.clone(),
                dtype: c.dtype,
                n_deterministic: 0,
                n_symbolic: 0,
                n_distinct: 0.0,
                min: None,
                max: None,
                histogram: None,
            })
            .collect();
        let mut distinct: Vec<HashSet<Value>> = vec![HashSet::new(); columns.len()];
        let mut numeric: Vec<Vec<f64>> = vec![Vec::new(); columns.len()];
        let mut conditional_rows = 0u64;
        for row in table.rows() {
            if !row.condition.is_trivially_true() {
                conditional_rows += 1;
            }
            for (i, cell) in row.cells.iter().enumerate() {
                let col = &mut columns[i];
                match cell.as_const() {
                    Some(v) => {
                        col.n_deterministic += 1;
                        distinct[i].insert(v.clone());
                        if let Ok(x) = v.as_f64() {
                            col.min = Some(col.min.map_or(x, |m| m.min(x)));
                            col.max = Some(col.max.map_or(x, |m| m.max(x)));
                            numeric[i].push(x);
                        }
                    }
                    None => col.n_symbolic += 1,
                }
            }
        }
        for ((col, seen), values) in columns.iter_mut().zip(&distinct).zip(numeric) {
            // Every symbolic cell may realize a distinct value.
            col.n_distinct = seen.len() as f64 + col.n_symbolic as f64;
            col.histogram = Histogram::equi_depth(values);
        }
        TableStats {
            table: name.to_string(),
            rows: table.len() as u64,
            conditional_rows,
            columns,
            version,
            analyzed_rows: table.len() as u64,
        }
    }

    /// Growth factor past which delta-maintained row counts no longer
    /// excuse the per-column statistics: beyond `rows >
    /// COLUMN_STALENESS × analyzed_rows` a full recollection runs.
    pub const COLUMN_STALENESS: f64 = 1.2;

    /// Cheap incremental maintenance for an `INSERT` of the given rows:
    /// bump the row counts, the per-column deterministic/symbolic split,
    /// min/max bounds and histogram bucket counts in place, and re-stamp
    /// the entry at the post-insert catalog version. NDV is left as
    /// collected (a fresh value is indistinguishable from a repeat
    /// without the full distinct set) —
    /// [`TableStats::columns_stale`] reports when the accumulated drift
    /// has grown past the recollection threshold.
    pub fn apply_insert(&self, added: &[CRow], version: u64) -> TableStats {
        let mut out = self.clone();
        out.version = version;
        out.rows += added.len() as u64;
        out.conditional_rows += added
            .iter()
            .filter(|r| !r.condition.is_trivially_true())
            .count() as u64;
        for row in added {
            for (i, cell) in row.cells.iter().enumerate() {
                let Some(col) = out.columns.get_mut(i) else {
                    continue;
                };
                match cell.as_const() {
                    Some(v) => {
                        col.n_deterministic += 1;
                        if let Ok(x) = v.as_f64() {
                            col.min = Some(col.min.map_or(x, |m| m.min(x)));
                            col.max = Some(col.max.map_or(x, |m| m.max(x)));
                            if let Some(h) = &mut col.histogram {
                                h.bump(x);
                            }
                        }
                    }
                    None => col.n_symbolic += 1,
                }
            }
        }
        out
    }

    /// True when enough rows arrived since the last full collection that
    /// the per-column statistics should not be trusted.
    pub fn columns_stale(&self) -> bool {
        self.rows as f64 > (self.analyzed_rows.max(1) as f64) * Self::COLUMN_STALENESS
    }

    /// Statistics for one column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.iter().find(|c| c.name == name)
    }
}

// ---------------------------------------------------------------------
// Cardinality estimation.
// ---------------------------------------------------------------------

/// Estimated output shape of a plan node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEst {
    /// Estimated output rows.
    pub rows: f64,
    /// Output width in columns (exact, from the schema).
    pub width: f64,
}

/// A column of some sub-plan resolved back to base-table statistics.
#[derive(Debug, Clone)]
struct ColProfile {
    ndv: f64,
    min: Option<f64>,
    max: Option<f64>,
    sym_frac: f64,
    histogram: Option<Histogram>,
}

/// Base-table column statistics as a [`ColProfile`].
fn table_column_profile(db: &Database, table: &str, name: &str) -> Option<ColProfile> {
    let stats = db.table_stats(table).ok()?;
    let c = stats.column(name)?;
    Some(ColProfile {
        ndv: c.n_distinct.max(1.0),
        min: c.min,
        max: c.max,
        sym_frac: c.symbolic_fraction(),
        histogram: c.histogram.clone(),
    })
}

/// Resolve a column of `plan`'s output to base-table statistics by
/// walking through order/filter-preserving operators. Returns `None`
/// when the column is computed or renamed (e.g. post-join `.right`).
fn column_profile(db: &Database, plan: &Plan, name: &str) -> Option<ColProfile> {
    match plan {
        Plan::Scan(table) => table_column_profile(db, table, name),
        Plan::IndexScan { table, .. } => table_column_profile(db, table, name),
        Plan::IndexJoin { left, table, .. } => {
            let on_left = plan_schema(db, left)
                .map(|s| s.index_of(name).is_ok())
                .unwrap_or(false);
            if on_left {
                column_profile(db, left, name)
            } else {
                table_column_profile(db, table, name)
            }
        }
        Plan::Select { input, .. }
        | Plan::Distinct(input)
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Conf(input) => column_profile(db, input, name),
        Plan::Project { input, exprs } => match exprs.iter().find(|(n, _)| n == name) {
            Some((_, ScalarExpr::Column(src))) => column_profile(db, input, src),
            _ => None,
        },
        Plan::Product { left, right } | Plan::EquiJoin { left, right, .. } => {
            let on_left = plan_schema(db, left)
                .map(|s| s.index_of(name).is_ok())
                .unwrap_or(false);
            if on_left {
                column_profile(db, left, name)
            } else {
                column_profile(db, right, name)
            }
        }
        Plan::Union { left, .. } => column_profile(db, left, name),
        Plan::Difference { left, .. } => column_profile(db, left, name),
        Plan::Aggregate {
            input, group_by, ..
        } => {
            if group_by.iter().any(|g| g == name) {
                column_profile(db, input, name)
            } else {
                None
            }
        }
    }
}

/// Fraction of the column's deterministic values selected by
/// `col θ value`: equi-depth histogram buckets when collected (robust
/// to skew), otherwise uniform interpolation over `[min, max]`.
fn range_fraction(op: CmpOp, profile: &ColProfile, value: f64) -> f64 {
    if let Some(h) = &profile.histogram {
        if h.total() > 0 {
            let frac = match op {
                CmpOp::Lt | CmpOp::Le => h.fraction_le(value),
                CmpOp::Gt | CmpOp::Ge => 1.0 - h.fraction_le(value),
                CmpOp::Eq | CmpOp::Ne => return DEFAULT_SELECTIVITY,
            };
            return frac.clamp(0.0, 1.0);
        }
    }
    let (Some(min), Some(max)) = (profile.min, profile.max) else {
        return DEFAULT_SELECTIVITY;
    };
    if !(max > min) {
        // Degenerate or unknown range: a point either matches or not.
        return DEFAULT_SELECTIVITY;
    }
    let frac = match op {
        CmpOp::Lt | CmpOp::Le => (value - min) / (max - min),
        CmpOp::Gt | CmpOp::Ge => (max - value) / (max - min),
        CmpOp::Eq | CmpOp::Ne => return DEFAULT_SELECTIVITY,
    };
    frac.clamp(0.0, 1.0)
}

/// Selectivity of one comparison conjunct against `input`'s output.
///
/// The symbolic fraction of a column always passes (a symbolic
/// comparison hoists into the row condition instead of dropping the
/// row); selectivity rules apply to the deterministic remainder only.
fn comparison_selectivity(
    db: &Database,
    input: &Plan,
    op: CmpOp,
    left: &ScalarExpr,
    right: &ScalarExpr,
) -> f64 {
    match (left, right) {
        (ScalarExpr::Column(c), ScalarExpr::Literal(v)) => {
            let Some(p) = column_profile(db, input, c) else {
                return DEFAULT_SELECTIVITY;
            };
            let det = 1.0 - p.sym_frac;
            let det_sel = match op {
                CmpOp::Eq => 1.0 / p.ndv.max(1.0),
                CmpOp::Ne => 1.0 - 1.0 / p.ndv.max(1.0),
                other => match v.as_f64() {
                    Ok(x) => range_fraction(other, &p, x),
                    Err(_) => DEFAULT_SELECTIVITY,
                },
            };
            p.sym_frac + det * det_sel
        }
        (ScalarExpr::Literal(_), ScalarExpr::Column(_)) => {
            // Flip `v θ col` to `col θ' v`.
            let flipped = match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                eq => eq,
            };
            comparison_selectivity(db, input, flipped, right, left)
        }
        (ScalarExpr::Column(a), ScalarExpr::Column(b)) => {
            let (Some(pa), Some(pb)) = (column_profile(db, input, a), column_profile(db, input, b))
            else {
                return DEFAULT_SELECTIVITY;
            };
            let sym = pa.sym_frac + pb.sym_frac - pa.sym_frac * pb.sym_frac;
            let det_sel = match op {
                CmpOp::Eq => 1.0 / pa.ndv.max(pb.ndv).max(1.0),
                CmpOp::Ne => 1.0 - 1.0 / pa.ndv.max(pb.ndv).max(1.0),
                _ => DEFAULT_SELECTIVITY,
            };
            sym + (1.0 - sym) * det_sel
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

/// Selectivity of a full predicate: independence across conjuncts.
pub fn predicate_selectivity(db: &Database, input: &Plan, pred: &ScalarExpr) -> f64 {
    match pred {
        ScalarExpr::And(ps) => ps
            .iter()
            .map(|p| predicate_selectivity(db, input, p))
            .product::<f64>()
            .clamp(0.0, 1.0),
        ScalarExpr::Cmp { op, left, right } => {
            comparison_selectivity(db, input, *op, left, right).clamp(0.0, 1.0)
        }
        _ => DEFAULT_SELECTIVITY,
    }
}

/// Combined selectivity of an equi-join's key pairs between two
/// sub-plans (independence across pairs).
pub(crate) fn equijoin_selectivity(
    db: &Database,
    left: &Plan,
    right: &Plan,
    on: &[(String, String)],
) -> f64 {
    on.iter()
        .map(|(a, b)| join_pair_selectivity(db, left, right, a, b))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

/// Selectivity of one equi-join key pair between two sub-plans.
fn join_pair_selectivity(db: &Database, left: &Plan, right: &Plan, l: &str, r: &str) -> f64 {
    let pl = column_profile(db, left, l);
    let pr = column_profile(db, right, r);
    let (Some(pl), Some(pr)) = (pl, pr) else {
        return DEFAULT_SELECTIVITY * DEFAULT_SELECTIVITY;
    };
    // Symbolic key cells match every row on the other side (the equality
    // hoists into a condition atom), so they keep the full cross term.
    let sym = pl.sym_frac + pr.sym_frac - pl.sym_frac * pr.sym_frac;
    (sym + (1.0 - sym) / pl.ndv.max(pr.ndv).max(1.0)).clamp(0.0, 1.0)
}

/// Estimate the output cardinality (and width) of a logical plan.
pub fn estimate(db: &Database, plan: &Plan) -> Result<PlanEst> {
    let width = plan_schema(db, plan)?.len() as f64;
    let rows = match plan {
        Plan::Scan(name) => db.table_stats(name)?.rows as f64,
        // Estimate-parity: an index access path must carry *exactly* the
        // estimate of the logical shape it replaces, so the cost-based
        // choice between them compares like with like.
        Plan::IndexScan {
            table, predicate, ..
        } => {
            let base = Plan::Scan(table.clone());
            db.table_stats(table)?.rows as f64 * predicate_selectivity(db, &base, predicate)
        }
        Plan::IndexJoin {
            left, table, on, ..
        } => {
            let base = Plan::Scan(table.clone());
            let l = estimate(db, left)?.rows;
            let r = estimate(db, &base)?.rows;
            l * r * equijoin_selectivity(db, left, &base, on)
        }
        Plan::Select { input, predicate } => {
            let in_est = estimate(db, input)?;
            in_est.rows * predicate_selectivity(db, input, predicate)
        }
        Plan::Project { input, .. } => estimate(db, input)?.rows,
        Plan::Product { left, right } => estimate(db, left)?.rows * estimate(db, right)?.rows,
        Plan::EquiJoin { left, right, on } => {
            let l = estimate(db, left)?.rows;
            let r = estimate(db, right)?.rows;
            l * r * equijoin_selectivity(db, left, right, on)
        }
        Plan::Union { left, right } => estimate(db, left)?.rows + estimate(db, right)?.rows,
        // Upper bound: duplicate elimination at least never grows.
        Plan::Distinct(input) => estimate(db, input)?.rows,
        Plan::Difference { left, .. } => estimate(db, left)?.rows,
        Plan::Aggregate {
            input, group_by, ..
        } => {
            let in_rows = estimate(db, input)?.rows;
            if group_by.is_empty() {
                1.0
            } else {
                let groups: f64 = group_by
                    .iter()
                    .map(|g| {
                        column_profile(db, input, g)
                            .map(|p| p.ndv)
                            .unwrap_or(in_rows)
                    })
                    .product();
                groups.min(in_rows).max(1.0_f64.min(in_rows))
            }
        }
        Plan::Conf(input) => estimate(db, input)?.rows,
        Plan::Sort { input, .. } => estimate(db, input)?.rows,
        Plan::Limit { input, n } => estimate(db, input)?.rows.min(*n as f64),
    };
    Ok(PlanEst {
        rows: rows.max(0.0),
        width,
    })
}

// ---------------------------------------------------------------------
// Cost model.
// ---------------------------------------------------------------------

/// Which executor the plan is being costed for. The pipelined executor
/// fuses σ/π into per-row stages and hash-joins equi predicates; the
/// materializing interpreter clones a full intermediate c-table per
/// operator and evaluates equi-joins as product-then-select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecTarget {
    Streaming,
    Materializing,
}

/// Cost-model knobs, in abstract units: `row_cost` is the fixed per-row
/// per-operator overhead (iterator call, per-expression schema lookups,
/// fresh cell vector, condition clone), `cell_cost` the price of
/// cloning or materializing one cell. The *ratio* is what drives
/// decisions; the default was calibrated against the fig6 join
/// workload, where measurement shows an extra per-row projection stage
/// costs on the order of two dozen plain cell clones — pruning must
/// save more than that per row to pay on the streaming path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    pub row_cost: f64,
    pub cell_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            row_cost: 24.0,
            cell_cost: 1.0,
        }
    }
}

/// Estimated execution cost of a plan on the given target, in the
/// abstract units of [`CostModel`]. Sampling-head work is excluded: it
/// depends on the sampling budget, not the plan shape, and is identical
/// across plan alternatives.
pub fn plan_cost(db: &Database, plan: &Plan, target: ExecTarget, m: &CostModel) -> Result<f64> {
    Ok(cost_rec(db, plan, target, m)?.1)
}

/// Returns `(estimate, cumulative cost)` for one node.
fn cost_rec(
    db: &Database,
    plan: &Plan,
    target: ExecTarget,
    m: &CostModel,
) -> Result<(PlanEst, f64)> {
    let est = estimate(db, plan)?;
    let (r, c) = (m.row_cost, m.cell_cost);
    let mat = target == ExecTarget::Materializing;
    let cost = match plan {
        Plan::Scan(_) => est.rows * (r + c * est.width),
        Plan::IndexScan { table, .. } => {
            // Binary-search the ordered entries, then touch only the
            // estimated matches: each pays the random-access penalty for
            // the candidate fetch plus the residual predicate check and
            // the output clone. Competes against Select-over-Scan's
            // n·(2r + c·width)-ish full pass.
            let n = (db.table_stats(table)?.rows as f64).max(2.0);
            n.log2() * r + est.rows * INDEX_PROBE_COST * (2.0 * r + c * est.width)
        }
        Plan::IndexJoin { left, table, .. } => {
            // No build phase: each left row binary-searches the ordered
            // index, and every candidate pays the random-access penalty
            // before joining. Competes against HashJoin's build-n +
            // probe cost.
            let (l, lc) = cost_rec(db, left, target, m)?;
            let n = (db.table_stats(table)?.rows as f64).max(2.0);
            lc + l.rows * r * (1.0 + n.log2())
                + est.rows * INDEX_PROBE_COST * (r + c)
                + est.rows * (r + c * est.width)
        }
        Plan::Select { input, .. } => {
            let (in_est, in_cost) = cost_rec(db, input, target, m)?;
            // Streaming: predicate evaluation only (the row passes
            // through). Materializing: kept rows are cloned wholesale.
            in_cost
                + in_est.rows * r
                + if mat {
                    est.rows * (r + c * est.width)
                } else {
                    0.0
                }
        }
        Plan::Project { input, exprs } => {
            let (in_est, in_cost) = cost_rec(db, input, target, m)?;
            in_cost + in_est.rows * (r + c * exprs.len() as f64)
        }
        Plan::Product { left, right } => {
            let (l, lc) = cost_rec(db, left, target, m)?;
            let (rr, rc) = cost_rec(db, right, target, m)?;
            // Both executors visit every pair; output rows clone both
            // sides' cells.
            lc + rc + l.rows * rr.rows * r + est.rows * (r + c * est.width)
        }
        Plan::EquiJoin { left, right, .. } => {
            let (l, lc) = cost_rec(db, left, target, m)?;
            let (rr, rc) = cost_rec(db, right, target, m)?;
            let join = if mat {
                // product-then-select: the full cross product is
                // materialized before keys filter it.
                l.rows * rr.rows * (r + c * est.width)
            } else {
                // build (right) + probe (left) + output.
                rr.rows * (r + c) + l.rows * (r + c)
            };
            lc + rc + join + est.rows * (r + c * est.width)
        }
        Plan::Union { left, right } => {
            let (_, lc) = cost_rec(db, left, target, m)?;
            let (_, rc) = cost_rec(db, right, target, m)?;
            lc + rc + est.rows * r
        }
        Plan::Distinct(input) => {
            let (in_est, in_cost) = cost_rec(db, input, target, m)?;
            in_cost + in_est.rows * (r + c * est.width) * 2.0
        }
        Plan::Difference { left, right } => {
            let (l, lc) = cost_rec(db, left, target, m)?;
            let (rr, rc) = cost_rec(db, right, target, m)?;
            lc + rc + (l.rows + rr.rows) * (r + c * est.width) * 2.0
        }
        Plan::Sort { input, .. } => {
            let (in_est, in_cost) = cost_rec(db, input, target, m)?;
            let n = in_est.rows.max(2.0);
            in_cost + n * (r + c * est.width) + n * n.log2() * r
        }
        Plan::Limit { input, n } => {
            let (in_est, in_cost) = cost_rec(db, input, target, m)?;
            let frac = if mat {
                1.0 // the materializing interpreter drains its input
            } else {
                (*n as f64 / in_est.rows.max(1.0)).min(1.0)
            };
            in_cost * frac + est.rows * r
        }
        Plan::Aggregate { input, .. } | Plan::Conf(input) => {
            let (in_est, in_cost) = cost_rec(db, input, target, m)?;
            in_cost + in_est.rows * (r + c * in_est.width)
        }
    };
    Ok((est, cost))
}

/// Render the logical plan tree with per-node `est_rows` annotations
/// (the logical half of `EXPLAIN`).
pub fn explain_estimated(db: &Database, plan: &Plan) -> String {
    fn walk(db: &Database, plan: &Plan, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match estimate(db, plan) {
            Ok(e) => {
                let _ = writeln!(out, "{pad}{} (est_rows={:.0})", plan.label(), e.rows);
            }
            Err(_) => {
                let _ = writeln!(out, "{pad}{}", plan.label());
            }
        }
        for child in plan.children() {
            walk(db, child, depth + 1, out);
        }
    }
    let mut s = String::new();
    walk(db, plan, 0, &mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use pip_core::{tuple, Schema};
    use pip_ctable::CRow;
    use pip_expr::Equation;

    fn stats_db() -> Database {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::of(&[
                ("k", DataType::Int),
                ("v", DataType::Float),
                ("s", DataType::Symbolic),
            ]),
        )
        .unwrap();
        let mut rows = Vec::new();
        for i in 0..100i64 {
            let sym = db.create_variable("Normal", &[i as f64, 1.0]).unwrap();
            rows.push(CRow::unconditional(vec![
                Equation::val(i % 10),
                Equation::val(i as f64),
                Equation::from(sym),
            ]));
        }
        db.insert_rows("t", rows).unwrap();
        db.create_table(
            "d",
            Schema::of(&[("j", DataType::Int), ("w", DataType::Float)]),
        )
        .unwrap();
        db.insert_tuples(
            "d",
            &(0..10i64).map(|i| tuple![i, i as f64]).collect::<Vec<_>>(),
        )
        .unwrap();
        db
    }

    #[test]
    fn analyze_collects_column_shapes() {
        let db = stats_db();
        let stats = db.analyze_table("t").unwrap();
        assert_eq!(stats.rows, 100);
        assert_eq!(stats.conditional_rows, 0);
        let k = stats.column("k").unwrap();
        assert_eq!(k.n_deterministic, 100);
        assert_eq!(k.n_distinct, 10.0);
        assert_eq!((k.min, k.max), (Some(0.0), Some(9.0)));
        let s = stats.column("s").unwrap();
        assert_eq!(s.n_symbolic, 100);
        assert_eq!(s.symbolic_fraction(), 1.0);
        assert_eq!(s.n_distinct, 100.0);
    }

    #[test]
    fn stats_cache_invalidated_by_mutation() {
        let db = stats_db();
        let a = db.table_stats("t").unwrap();
        let b = db.table_stats("t").unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "second read hits the cache");
        db.insert_tuples("d", &[tuple![11i64, 11.0]]).unwrap();
        let c = db.table_stats("t").unwrap();
        assert!(!std::sync::Arc::ptr_eq(&a, &c), "mutation retires stats");
        assert_eq!(c.rows, 100);
    }

    #[test]
    fn equality_and_range_selectivity() {
        let db = stats_db();
        let scan = Plan::Scan("t".into());
        // k = 3 → 1/10 of rows.
        let eq = ScalarExpr::col("k").eq(ScalarExpr::lit(3i64));
        let sel = predicate_selectivity(&db, &scan, &eq);
        assert!((sel - 0.1).abs() < 1e-9, "{sel}");
        // v < 25 → about a quarter.
        let range = ScalarExpr::col("v").lt(ScalarExpr::lit(25.0));
        let sel = predicate_selectivity(&db, &scan, &range);
        assert!((sel - 0.25).abs() < 0.05, "{sel}");
        // Conjunction multiplies.
        let both = eq.clone().and(range);
        let sel = predicate_selectivity(&db, &scan, &both);
        assert!((sel - 0.025).abs() < 0.01, "{sel}");
    }

    #[test]
    fn symbolic_columns_are_conservative() {
        let db = stats_db();
        let scan = Plan::Scan("t".into());
        // s is fully symbolic: the predicate keeps every row (it only
        // conjoins condition atoms), so selectivity is 1.
        let p = ScalarExpr::col("s").gt(ScalarExpr::lit(100.0));
        assert_eq!(predicate_selectivity(&db, &scan, &p), 1.0);
    }

    #[test]
    fn join_estimate_uses_ndv_fanout() {
        let db = stats_db();
        let join = PlanBuilder::scan("t")
            .equi_join(PlanBuilder::scan("d"), vec![("k", "j")])
            .build();
        let e = estimate(&db, &join).unwrap();
        // 100 × 10 / max(ndv 10, 10) = 100.
        assert!((e.rows - 100.0).abs() < 1e-6, "{}", e.rows);
        let prod = PlanBuilder::scan("t")
            .product(PlanBuilder::scan("d"))
            .build();
        assert_eq!(estimate(&db, &prod).unwrap().rows, 1000.0);
    }

    #[test]
    fn aggregate_and_limit_estimates() {
        let db = stats_db();
        let agg = PlanBuilder::scan("t")
            .aggregate(vec!["k"], vec![crate::plan::AggFunc::ExpectedCount])
            .build();
        assert_eq!(estimate(&db, &agg).unwrap().rows, 10.0);
        let lim = PlanBuilder::scan("t").limit(7).build();
        assert_eq!(estimate(&db, &lim).unwrap().rows, 7.0);
    }

    #[test]
    fn hash_join_costs_below_product_select() {
        let db = stats_db();
        let m = CostModel::default();
        let join = PlanBuilder::scan("t")
            .equi_join(PlanBuilder::scan("d"), vec![("k", "j")])
            .build();
        let product = PlanBuilder::scan("t")
            .product(PlanBuilder::scan("d"))
            .select(ScalarExpr::col("k").eq(ScalarExpr::col("j")))
            .unwrap()
            .build();
        let cj = plan_cost(&db, &join, ExecTarget::Streaming, &m).unwrap();
        let cp = plan_cost(&db, &product, ExecTarget::Streaming, &m).unwrap();
        assert!(cj < cp, "hash join {cj} vs product+select {cp}");
        // The materializing join is product-then-select: far costlier.
        let cjm = plan_cost(&db, &join, ExecTarget::Materializing, &m).unwrap();
        assert!(cj < cjm, "streaming {cj} vs materializing {cjm}");
    }

    #[test]
    fn histogram_tracks_skew_where_uniform_interpolation_fails() {
        // 90 values at 0..9, 10 values spread over 1000..1009: uniform
        // min/max interpolation puts "v < 100" at ~10%, the histogram
        // knows it's 90%.
        let db = Database::new();
        db.create_table("skew", Schema::of(&[("v", DataType::Float)]))
            .unwrap();
        let mut vals = Vec::new();
        for i in 0..90i64 {
            vals.push(tuple![(i % 10) as f64]);
        }
        for i in 0..10i64 {
            vals.push(tuple![1000.0 + i as f64]);
        }
        db.insert_tuples("skew", &vals).unwrap();
        let scan = Plan::Scan("skew".into());
        let p = ScalarExpr::col("v").lt(ScalarExpr::lit(100.0));
        let sel = predicate_selectivity(&db, &scan, &p);
        assert!((sel - 0.9).abs() < 0.05, "histogram should see skew: {sel}");

        let stats = db.table_stats("skew").unwrap();
        let h = stats.column("v").unwrap().histogram.as_ref().unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.bounds.len(), h.counts.len() + 1);
        assert!((h.fraction_le(9.0) - 0.9).abs() < 1e-9);
        assert_eq!(h.fraction_le(1009.0), 1.0);
        assert_eq!(h.fraction_le(-1.0), 0.0);
    }

    #[test]
    fn apply_insert_maintains_histogram_and_reports_staleness() {
        let db = stats_db();
        let before = db.table_stats("t").unwrap();
        let h0 = before.column("v").unwrap().histogram.clone().unwrap();
        assert_eq!(h0.total(), 100);

        // Delta maintenance: new rows land in histogram buckets (edge
        // bounds widen for out-of-range values) without a rescan.
        let added: Vec<CRow> = (0..10i64)
            .map(|i| {
                CRow::unconditional(vec![
                    Equation::val(i % 10),
                    Equation::val(500.0 + i as f64),
                    Equation::val(0i64),
                ])
            })
            .collect();
        let after = before.apply_insert(&added, before.version + 1);
        assert_eq!(after.rows, 110);
        let v = after.column("v").unwrap();
        let h1 = v.histogram.as_ref().unwrap();
        assert_eq!(h1.total(), 110, "every inserted value is counted");
        assert_eq!(v.max, Some(509.0), "max widened by delta maintenance");
        assert_eq!(
            *h1.bounds.last().unwrap(),
            509.0,
            "edge bucket widened to cover out-of-range inserts"
        );
        assert!(!after.columns_stale(), "10% growth is under threshold");

        // Past the staleness threshold the columns stop being trusted.
        let mut lots = Vec::new();
        for _ in 0..3 {
            lots.extend(added.iter().cloned());
        }
        let stale = after.apply_insert(&lots, after.version + 1);
        assert!(stale.columns_stale(), "40% growth exceeds threshold");
    }

    #[test]
    fn histogram_survives_through_live_insert_path() {
        // The catalog's own insert path routes through apply_insert; the
        // cached stats entry must keep a consistent histogram.
        let db = stats_db();
        let _ = db.table_stats("t").unwrap();
        db.insert_tuples("d", &[tuple![42i64, 42.0]]).unwrap();
        let stats = db.table_stats("d").unwrap();
        let h = stats.column("w").unwrap().histogram.as_ref().unwrap();
        assert_eq!(h.total(), 11);
        assert_eq!(stats.rows, 11);
    }

    #[test]
    fn index_plan_estimates_match_logical_equivalents() {
        let db = stats_db();
        // IndexScan carries the same estimate as Select-over-Scan.
        let pred = ScalarExpr::col("v").lt(ScalarExpr::lit(25.0));
        let logical = PlanBuilder::scan("t").select(pred.clone()).unwrap().build();
        let index = Plan::IndexScan {
            table: "t".into(),
            index: "ix".into(),
            column: "v".into(),
            lo: None,
            hi: Some((pip_core::Value::Float(25.0), false)),
            predicate: pred,
        };
        let a = estimate(&db, &logical).unwrap();
        let b = estimate(&db, &index).unwrap();
        assert_eq!(a.rows.to_bits(), b.rows.to_bits(), "estimate parity");

        // IndexJoin carries the same estimate as the equi-join it replaces.
        let logical = PlanBuilder::scan("t")
            .equi_join(PlanBuilder::scan("d"), vec![("k", "j")])
            .build();
        let index = Plan::IndexJoin {
            left: Box::new(Plan::Scan("t".into())),
            table: "d".into(),
            index: "ix".into(),
            on: vec![("k".into(), "j".into())],
        };
        let a = estimate(&db, &logical).unwrap();
        let b = estimate(&db, &index).unwrap();
        assert_eq!(a.rows.to_bits(), b.rows.to_bits(), "estimate parity");
    }

    #[test]
    fn explain_estimated_annotates_every_node() {
        let db = stats_db();
        let plan = PlanBuilder::scan("t")
            .select(ScalarExpr::col("k").eq(ScalarExpr::lit(1i64)))
            .unwrap()
            .build();
        let text = explain_estimated(&db, &plan);
        assert!(text.contains("Select:"), "{text}");
        assert!(text.contains("(est_rows=10)"), "{text}");
        assert!(text.contains("Scan: t (est_rows=100)"), "{text}");
    }
}
