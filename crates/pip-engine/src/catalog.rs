//! The database catalog: named c-tables plus the distribution registry.
//!
//! Plays the role Postgres plays for the paper's plugin — a place to
//! create tables, insert (possibly symbolic) rows, and allocate random
//! variables via `CREATE_VARIABLE(distribution, params)` (Section V-A).
//!
//! ## Durability
//!
//! A catalog may be *durable*: [`Database::open`] binds it to a
//! [`pip_store::Store`] data directory, after which every logical
//! mutation (create/register/drop/insert, variable allocation) is
//! appended to the write-ahead log **before** it is applied, under the
//! same write lock that serializes the mutation itself — so WAL order,
//! apply order and the version counter always agree. Recovery loads the
//! newest valid snapshot, replays the WAL suffix (torn tails truncated),
//! restores the catalog version counter (version-keyed caches can never
//! confuse pre- and post-restart state) and re-reserves every recovered
//! variable id, which is what makes recovered query results
//! *bit-identical*: sampling seeds derive from variable ids, and both
//! ids and `f64` parameters round-trip exactly.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use pip_core::{DataType, PipError, Result, Schema, Tuple};
use pip_dist::DistributionRegistry;
use pip_expr::{RandomVar, VarId};
use pip_store::{
    CatalogRecord, Durability, Snapshot, SnapshotIndex, SnapshotTable, Store, WalCursor, WalEntry,
};

use pip_ctable::{CRow, CTable, OrderedIndex};

use crate::persist;
use crate::stats::TableStats;

/// What recovery found in a data directory ([`Database::recover`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Catalog version at the recovery point.
    pub version: u64,
    /// Snapshot generation recovery started from (0 = none, WAL only).
    pub snapshot_gen: u64,
    /// WAL records replayed on top of the snapshot.
    pub replayed: usize,
    /// True when a torn tail was truncated from the active WAL.
    pub torn_tail: bool,
}

/// A registered secondary index: its definition plus current contents.
///
/// The contents always reflect the owning table exactly — both are
/// updated under the same catalog write lock — so planners may take the
/// `(table, index)` pair from one catalog read and seek without
/// revalidation.
#[derive(Debug, Clone)]
pub struct IndexEntry {
    /// Table the index covers.
    pub table: String,
    /// Indexed column (by name; the [`OrderedIndex`] holds the position).
    pub column: String,
    /// The ordered `(key, row_id)` structure itself.
    pub index: Arc<OrderedIndex>,
}

/// An in-memory probabilistic database, optionally WAL-backed.
#[derive(Debug)]
pub struct Database {
    registry: DistributionRegistry,
    tables: RwLock<HashMap<String, Arc<CTable>>>,
    /// Secondary indexes by index name. Only the *definitions* are
    /// durable (WAL records, snapshot entries); contents are rebuilt
    /// from the owning table on recovery and snapshot install, and
    /// maintained incrementally on INSERT. Lock order: `tables` before
    /// `indexes`, always.
    indexes: RwLock<HashMap<String, IndexEntry>>,
    /// Monotonic catalog generation, bumped by every DDL/DML mutation.
    /// Cache layers (e.g. the server's sample-result cache) key on it so
    /// stale entries can never be served after a mutation — and it is
    /// persisted across checkpoint/recovery, so they can never be served
    /// across a restart either.
    version: AtomicU64,
    /// Optimizer statistics per table, keyed by the catalog version they
    /// were collected at — any mutation retires them (see
    /// [`Database::table_stats`]).
    stats: RwLock<HashMap<String, Arc<TableStats>>>,
    /// The durable store, when this catalog was opened from a data
    /// directory. Mutations append WAL records through it.
    store: OnceLock<Arc<Store>>,
    /// Read-only mode: every logical mutation (DDL/DML and variable
    /// allocation) is refused. A replication follower runs read-only —
    /// its catalog changes arrive exclusively through
    /// [`Database::apply_replicated`], which bypasses this flag —
    /// until a `PROMOTE` clears it.
    read_only: AtomicBool,
    /// When set, `SET DURABILITY OFF` is refused: a replicating primary
    /// feeds its followers from the WAL, and unlogged mutations would
    /// silently never reach them.
    durability_pinned: AtomicBool,
    /// Fenced mode: a deposed primary that heard a higher replication
    /// epoch. Like `read_only` it refuses every logical mutation, but
    /// with a distinguishable `fenced` error — a client write that
    /// raced a failover must learn it may have been lost, not just
    /// "this node is a follower". Reads keep working (stale is still
    /// useful); `apply_replicated` bypasses it so the node can rejoin
    /// the new primary's feed.
    fenced: AtomicBool,
    /// This database's observability registry: every layer that serves
    /// this catalog (store, replication, server) registers its metric
    /// families here, and the server's `METRICS` verb renders it.
    obs: Arc<pip_obs::Registry>,
    /// Engine-level metric handles registered in `obs`.
    metrics: crate::metrics::EngineMetrics,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// A fresh database with the built-in distribution classes.
    pub fn new() -> Self {
        Self::with_registry(DistributionRegistry::with_builtins())
    }

    /// Build with a custom registry (user-defined distribution classes).
    pub fn with_registry(registry: DistributionRegistry) -> Self {
        let obs = Arc::new(pip_obs::Registry::new());
        let metrics = crate::metrics::EngineMetrics::register(&obs);
        Database {
            registry,
            tables: RwLock::new(HashMap::new()),
            indexes: RwLock::new(HashMap::new()),
            version: AtomicU64::new(0),
            stats: RwLock::new(HashMap::new()),
            store: OnceLock::new(),
            read_only: AtomicBool::new(false),
            durability_pinned: AtomicBool::new(false),
            fenced: AtomicBool::new(false),
            obs,
            metrics,
        }
    }

    /// Open (creating if needed) a durable catalog in `dir`: recover
    /// whatever a previous process left there, then log every further
    /// mutation. See [`Database::recover`] for the recovery report.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Ok(Self::recover(dir)?.0)
    }

    /// [`Database::open`] plus the recovery report.
    pub fn recover(dir: impl AsRef<Path>) -> Result<(Database, RecoveryInfo)> {
        Self::recover_with(dir, DistributionRegistry::with_builtins())
    }

    /// Recover with a custom registry (stored variables referencing
    /// user-defined distribution classes need them present to decode).
    pub fn recover_with(
        dir: impl AsRef<Path>,
        registry: DistributionRegistry,
    ) -> Result<(Database, RecoveryInfo)> {
        let (store, recovered) = Store::open(dir.as_ref(), &registry)?;
        let db = Self::with_registry(registry);
        {
            let mut tables = db.tables.write();
            let mut stats = db.stats.write();
            for (name, table, stats_json) in recovered.tables {
                if let Some(blob) = &stats_json {
                    // Statistics are derived data: a blob that fails to
                    // decode (or mismatches the table) is dropped and
                    // recollected lazily, never an error. Surviving
                    // blobs are re-stamped at the recovered version —
                    // the store only hands back statistics for tables
                    // the WAL suffix never touched, so they describe
                    // the recovered contents exactly and would
                    // otherwise be discarded as stale by the
                    // version-freshness check in `table_stats`.
                    if let Ok(s) = persist::stats_from_json(blob) {
                        if s.table == name {
                            stats.insert(
                                name.clone(),
                                Arc::new(TableStats {
                                    version: recovered.version,
                                    ..s
                                }),
                            );
                        }
                    }
                }
                tables.insert(name, Arc::new(table));
            }
            // Index definitions recovered; contents are derived data,
            // rebuilt from the tables they cover. A definition whose
            // table or column no longer resolves means the log and the
            // catalog semantics disagree — corruption, never papered
            // over (the store already validated table existence).
            let mut indexes = db.indexes.write();
            for (name, table, column) in &recovered.indexes {
                let t = tables.get(table).ok_or_else(|| {
                    PipError::corrupt(format!("index '{name}' covers unknown table '{table}'"))
                })?;
                let entry = build_index_entry(name, table, column, t)
                    .map_err(|e| PipError::corrupt(format!("rebuilding index '{name}': {e}")))?;
                indexes.insert(name.clone(), entry);
            }
        }
        db.version.store(recovered.version, Ordering::Release);
        VarId::reserve_through(recovered.max_var_id);
        let info = RecoveryInfo {
            version: recovered.version,
            snapshot_gen: recovered.snapshot_gen,
            replayed: recovered.replayed,
            torn_tail: recovered.torn_tail,
        };
        let store = Arc::new(store);
        store.attach_metrics(&db.obs);
        {
            // Derived gauges read leaf state through a weak handle so the
            // registry (owned by this database) never keeps the store —
            // or transitively the database — alive.
            let weak = Arc::downgrade(&store);
            db.obs.gauge_fn(
                "pip_store_wal_bytes",
                "Record bytes in the active WAL generation.",
                move || weak.upgrade().map_or(0.0, |s| s.wal_bytes() as f64),
            );
        }
        db.store.set(store).expect("store attached exactly once");
        Ok((db, info))
    }

    /// The distribution registry (mutable access requires construction
    /// time registration via [`Database::with_registry`]).
    pub fn registry(&self) -> &DistributionRegistry {
        &self.registry
    }

    /// The durable store, if this catalog has one.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.get()
    }

    fn require_store(&self) -> Result<&Arc<Store>> {
        self.store.get().ok_or_else(|| {
            PipError::Unsupported("catalog has no data directory (open it with --data-dir)".into())
        })
    }

    /// Append one WAL record (no-op for memory-only catalogs; at
    /// durability OFF the store validates the record without writing
    /// it). Called with the tables write lock held, so log order always
    /// matches apply order.
    fn log(&self, version: u64, record: CatalogRecord) -> Result<()> {
        match self.store.get() {
            Some(store) => store.append(&WalEntry { version, record }),
            None => Ok(()),
        }
    }

    /// True when mutations must be materialized as catalog records —
    /// appended to the WAL at durability `WAL`/`SYNC`, or merely
    /// validated against the store's write contract at `OFF` (a durable
    /// catalog must refuse state it could never log or snapshot, or
    /// every later checkpoint would fail while that state exists).
    /// False only for memory-only catalogs, which skip record
    /// construction entirely.
    fn durable(&self) -> bool {
        self.store.get().is_some()
    }

    /// Flip read-only mode (see the `read_only` field). Used by the
    /// replication wiring: set on a follower before it serves traffic,
    /// cleared by `PROMOTE`.
    pub fn set_read_only(&self, read_only: bool) {
        self.read_only.store(read_only, Ordering::Release);
    }

    /// True when this catalog refuses mutations (replication follower).
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// Fence (or unfence) the catalog — see the `fenced` field. A
    /// fenced catalog refuses writes with [`PipError::Fenced`] even
    /// when not read-only.
    pub fn set_fenced(&self, fenced: bool) {
        self.fenced.store(fenced, Ordering::Release);
    }

    /// True when a higher replication epoch deposed this node.
    pub fn is_fenced(&self) -> bool {
        self.fenced.load(Ordering::Acquire)
    }

    fn check_writable(&self) -> Result<()> {
        if self.is_fenced() {
            return Err(PipError::fenced(
                "a newer replication epoch deposed this primary; \
                 writes go to the new primary",
            ));
        }
        if self.is_read_only() {
            return Err(PipError::Unsupported(
                "catalog is read-only (replication follower); writes go to the \
                 primary, or PROMOTE this node"
                    .into(),
            ));
        }
        Ok(())
    }

    /// Refuse `SET DURABILITY OFF` from here on (replicating primary:
    /// followers are fed from the WAL, so unlogged mutations would
    /// silently never reach them).
    pub fn pin_durability(&self) {
        self.durability_pinned.store(true, Ordering::Release);
    }

    /// `CREATE VARIABLE(distribution, params)` — allocate a fresh random
    /// variable of a registered class.
    pub fn create_variable(&self, class: &str, params: &[f64]) -> Result<RandomVar> {
        self.check_writable()?;
        if self.store.get().is_none() {
            return RandomVar::create_named(&self.registry, class, params);
        }
        // Allocation and append happen under the tables read lock so a
        // concurrent checkpoint (which holds the write lock) cannot
        // interleave: either it runs first — and this record lands in
        // the fresh generation — or it runs after — and its snapshot's
        // `VarId::watermark` already covers this id. Without the lock,
        // the record could land in a generation the checkpoint deletes
        // while the snapshot's watermark predates the allocation, and a
        // post-recovery variable could reuse the id.
        let _ordered_with_checkpoints = self.tables.read();
        let var = RandomVar::create_named(&self.registry, class, params)?;
        if self.durable() {
            self.log(
                self.version(),
                CatalogRecord::CreateVariable {
                    id: var.key.id.0,
                    class: class.to_string(),
                    params: params.to_vec(),
                },
            )?;
        }
        Ok(var)
    }

    /// Current catalog generation. Changes on every successful mutation
    /// (create/register/drop/insert); equal versions guarantee the same
    /// table contents for cache-key purposes.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Bump the catalog generation, returning the new version.
    fn bump_version(&self) -> u64 {
        self.metrics.mutations_total.inc();
        self.version.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// This database's observability registry (see the `obs` field).
    pub fn obs_registry(&self) -> &Arc<pip_obs::Registry> {
        &self.obs
    }

    /// Engine-level metric handles.
    pub fn metrics(&self) -> &crate::metrics::EngineMetrics {
        &self.metrics
    }

    /// Create an empty table. Errors if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        self.check_writable()?;
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(PipError::Schema(format!("table '{name}' already exists")));
        }
        let version = self.bump_version();
        if self.durable() {
            self.log(
                version,
                CatalogRecord::CreateTable {
                    name: name.to_string(),
                    schema: schema.clone(),
                },
            )?;
        }
        tables.insert(name.to_string(), Arc::new(CTable::empty(schema)));
        Ok(())
    }

    /// Register (or replace) a table with existing contents. A
    /// replacement may change the schema out from under dependent
    /// indexes, so their definitions die with the old contents.
    pub fn register_table(&self, name: &str, table: CTable) -> Result<()> {
        self.check_writable()?;
        let mut tables = self.tables.write();
        let version = self.bump_version();
        if self.durable() {
            self.log(
                version,
                CatalogRecord::RegisterTable {
                    name: name.to_string(),
                    table: table.clone(),
                },
            )?;
        }
        tables.insert(name.to_string(), Arc::new(table));
        self.indexes.write().retain(|_, e| e.table != name);
        Ok(())
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.check_writable()?;
        let mut tables = self.tables.write();
        if !tables.contains_key(name) {
            return Err(PipError::NotFound(format!("table '{name}'")));
        }
        let version = self.bump_version();
        if self.durable() {
            self.log(
                version,
                CatalogRecord::Drop {
                    name: name.to_string(),
                },
            )?;
        }
        tables.remove(name);
        self.indexes.write().retain(|_, e| e.table != name);
        Ok(())
    }

    /// `CREATE INDEX name ON table (column)` — build an ordered
    /// secondary index over a deterministic `Int`/`Float` column and
    /// register it. Errors if the name is taken or the table/column
    /// does not resolve.
    pub fn create_index(&self, name: &str, table: &str, column: &str) -> Result<()> {
        self.check_writable()?;
        let tables = self.tables.write();
        let t = tables
            .get(table)
            .ok_or_else(|| PipError::NotFound(format!("table '{table}'")))?;
        if self.indexes.read().contains_key(name) {
            return Err(PipError::Schema(format!("index '{name}' already exists")));
        }
        // Build (and thereby validate) before the WAL append — a logged
        // record must never fail to apply.
        let entry = build_index_entry(name, table, column, t)?;
        let version = self.bump_version();
        if self.durable() {
            self.log(
                version,
                CatalogRecord::CreateIndex {
                    name: name.to_string(),
                    table: table.to_string(),
                    column: column.to_string(),
                },
            )?;
        }
        self.indexes.write().insert(name.to_string(), entry);
        Ok(())
    }

    /// `DROP INDEX name`.
    pub fn drop_index(&self, name: &str) -> Result<()> {
        self.check_writable()?;
        let _tables = self.tables.write();
        if !self.indexes.read().contains_key(name) {
            return Err(PipError::NotFound(format!("index '{name}'")));
        }
        let version = self.bump_version();
        if self.durable() {
            self.log(
                version,
                CatalogRecord::DropIndex {
                    name: name.to_string(),
                },
            )?;
        }
        self.indexes.write().remove(name);
        Ok(())
    }

    /// The named index, if registered.
    pub fn index(&self, name: &str) -> Option<IndexEntry> {
        self.indexes.read().get(name).cloned()
    }

    /// Every index covering `table`, as `(name, entry)` sorted by index
    /// name — the optimizer's access-path candidates.
    pub fn indexes_on(&self, table: &str) -> Vec<(String, IndexEntry)> {
        let mut out: Vec<(String, IndexEntry)> = self
            .indexes
            .read()
            .iter()
            .filter(|(_, e)| e.table == table)
            .map(|(n, e)| (n.clone(), e.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Names of all indexes, sorted.
    pub fn index_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.indexes.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Shared snapshot of a table.
    pub fn table(&self, name: &str) -> Result<Arc<CTable>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PipError::NotFound(format!("table '{name}'")))
    }

    /// Append symbolic rows to a table.
    ///
    /// Optimizer statistics get cheap delta maintenance instead of
    /// retirement: the cached [`TableStats`] entry (if it was fresh at
    /// the pre-insert version) has its row counts bumped in place and is
    /// re-stamped at the new version, so an insert does not force a full
    /// rescan. Column-level statistics drift until `ANALYZE` or the
    /// staleness threshold triggers a recollection (see
    /// [`Database::table_stats`]).
    pub fn insert_rows(&self, name: &str, rows: Vec<CRow>) -> Result<()> {
        self.check_writable()?;
        let mut tables = self.tables.write();
        let table = tables
            .get(name)
            .ok_or_else(|| PipError::NotFound(format!("table '{name}'")))?;
        // Validate fully (arity checks in push) before the WAL append —
        // a logged record must never fail to apply. (At durability OFF
        // the record is built but only validated, never written; for a
        // memory-only catalog rows move straight into the table — the
        // pre-durability in-memory work exactly.)
        let old_len = table.len();
        let mut new = (**table).clone();
        let log_rows = if self.durable() {
            for r in &rows {
                new.push(r.clone())?;
            }
            Some(rows)
        } else {
            for r in rows {
                new.push(r)?;
            }
            None
        };
        // Dependent indexes extend incrementally over the appended
        // suffix — staged before the WAL append, alongside the arity
        // checks above, so a logged record can never leave an index
        // unbuildable.
        let staged_indexes: Vec<(String, Arc<OrderedIndex>)> = self
            .indexes
            .read()
            .iter()
            .filter(|(_, e)| e.table == name)
            .map(|(iname, e)| {
                Ok((
                    iname.clone(),
                    Arc::new(e.index.with_appended(&new, old_len)?),
                ))
            })
            .collect::<Result<_>>()?;
        let post_insert = self.bump_version();
        if let Some(rows) = log_rows {
            self.log(
                post_insert,
                CatalogRecord::Insert {
                    name: name.to_string(),
                    rows,
                },
            )?;
        }
        let new = Arc::new(new);
        tables.insert(name.to_string(), Arc::clone(&new));
        if !staged_indexes.is_empty() {
            let mut indexes = self.indexes.write();
            for (iname, idx) in staged_indexes {
                if let Some(e) = indexes.get_mut(&iname) {
                    e.index = idx;
                }
            }
        }
        drop(tables);
        // The bump's fetch_add pins this insert's exact (pre, post)
        // version pair — no separate load can interleave with another
        // mutation. The delta only applies when the cached entry was
        // fresh at exactly `pre`; any concurrent mutation breaks that
        // equality (either here or for the other inserter), and the
        // loser's entry simply goes stale and recollects on next use.
        let pre_insert = post_insert - 1;
        let mut stats = self.stats.write();
        if let Some(entry) = stats.get_mut(name) {
            if entry.version == pre_insert {
                *entry = Arc::new(entry.apply_insert(&new.rows()[old_len..], post_insert));
            }
        }
        Ok(())
    }

    /// Append deterministic tuples to a table.
    pub fn insert_tuples(&self, name: &str, tuples: &[Tuple]) -> Result<()> {
        self.insert_rows(name, tuples.iter().map(CRow::from_tuple).collect())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Write a checkpoint: serialize the entire catalog (fresh table
    /// statistics riding along) into a new snapshot generation and start
    /// a fresh WAL. Mutations are blocked only for the cheap part —
    /// capturing `Arc`s of every table and rotating to the fresh WAL
    /// generation; the snapshot itself (full-catalog serialization,
    /// fsync, rename) is written after the lock is released, with
    /// queries and mutations flowing. A crash (or write failure) before
    /// the snapshot lands is benign: recovery falls back to the previous
    /// snapshot and replays both WAL generations. Returns the new
    /// generation.
    pub fn checkpoint(&self) -> Result<u64> {
        let store = Arc::clone(self.require_store()?);
        let tables = self.tables.write();
        let captured = self.capture_checkpoint(&tables);
        let generation = store.begin_checkpoint()?;
        drop(tables);
        store.finish_checkpoint(generation, &captured.into_snapshot())?;
        Ok(generation)
    }

    /// Capture everything a checkpoint persists, under the tables write
    /// lock: version, variable-id watermark, and per-table `Arc` handles
    /// (contents and fresh statistics). Cheap — no serialization; that
    /// happens in [`CheckpointCapture::into_snapshot`] after the lock is
    /// gone.
    fn capture_checkpoint(&self, tables: &HashMap<String, Arc<CTable>>) -> CheckpointCapture {
        let version = self.version();
        let stats = self.stats.read();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        let indexes = self.indexes.read();
        let mut inames: Vec<&String> = indexes.keys().collect();
        inames.sort();
        CheckpointCapture {
            version,
            next_var_id: VarId::watermark(),
            tables: names
                .into_iter()
                .map(|name| {
                    (
                        name.clone(),
                        Arc::clone(&tables[name]),
                        stats
                            .get(name)
                            .filter(|s| s.version == version && !s.columns_stale())
                            .cloned(),
                    )
                })
                .collect(),
            indexes: inames
                .into_iter()
                .map(|name| SnapshotIndex {
                    name: name.clone(),
                    table: indexes[name].table.clone(),
                    column: indexes[name].column.clone(),
                })
                .collect(),
        }
    }

    /// Apply one entry from a replication feed, bypassing the read-only
    /// gate: the follower-side half of WAL shipping.
    ///
    /// The feed is the primary's WAL in log order, and log order ==
    /// apply order == version order is the replication invariant: entry
    /// versions must be non-decreasing (`CREATE_VARIABLE` records are
    /// stamped at the version they were allocated under, without a bump,
    /// so consecutive entries may share a version). An entry behind the
    /// catalog version means the feed re-sent history or skipped ahead —
    /// corruption, never papered over.
    ///
    /// On a durable follower the entry is appended to the *local* WAL
    /// with the primary's version stamp before the in-memory commit
    /// (same ordering as primary mutations), so a restart recovers to an
    /// exact prefix of the primary's history and can resume the feed
    /// from its applied version.
    pub fn apply_replicated(&self, entry: &WalEntry) -> Result<()> {
        let mut tables = self.tables.write();
        let current = self.version();
        if entry.version < current {
            return Err(PipError::corrupt(format!(
                "replication feed out of order: entry version {} behind catalog version {current}",
                entry.version
            )));
        }
        // Stage the apply fully — including arity validation — before
        // logging: a locally logged record must never fail to apply
        // (recovery replays it verbatim). Variable ids embedded in
        // shipped rows are reserved so a later PROMOTE can never hand
        // out a colliding fresh id.
        let mut staged: Option<(String, Arc<CTable>)> = None;
        let mut dropped: Option<String> = None;
        let mut staged_index: Option<(String, IndexEntry)> = None;
        let mut dropped_index: Option<String> = None;
        let mut retire_indexes_of: Option<String> = None;
        let mut index_updates: Vec<(String, Arc<OrderedIndex>)> = Vec::new();
        match &entry.record {
            CatalogRecord::CreateVariable { id, .. } => {
                VarId::reserve_through(*id);
            }
            CatalogRecord::CreateTable { name, schema } => {
                if tables.contains_key(name) {
                    return Err(PipError::corrupt(format!(
                        "replication feed creates table '{name}' twice"
                    )));
                }
                staged = Some((name.clone(), Arc::new(CTable::empty(schema.clone()))));
            }
            CatalogRecord::RegisterTable { name, table } => {
                for v in table.variables() {
                    VarId::reserve_through(v.key.id.0);
                }
                staged = Some((name.clone(), Arc::new(table.clone())));
                retire_indexes_of = Some(name.clone());
            }
            CatalogRecord::Insert { name, rows } => {
                let table = tables.get(name).ok_or_else(|| {
                    PipError::corrupt(format!(
                        "replication feed inserts into unknown table '{name}'"
                    ))
                })?;
                let old_len = table.len();
                let mut new = (**table).clone();
                for r in rows {
                    for v in r.variables() {
                        VarId::reserve_through(v.key.id.0);
                    }
                    new.push(r.clone())?;
                }
                for (iname, e) in self.indexes.read().iter().filter(|(_, e)| &e.table == name) {
                    index_updates.push((
                        iname.clone(),
                        Arc::new(e.index.with_appended(&new, old_len)?),
                    ));
                }
                staged = Some((name.clone(), Arc::new(new)));
            }
            CatalogRecord::Drop { name } => {
                if !tables.contains_key(name) {
                    return Err(PipError::corrupt(format!(
                        "replication feed drops unknown table '{name}'"
                    )));
                }
                dropped = Some(name.clone());
                retire_indexes_of = Some(name.clone());
            }
            CatalogRecord::CreateIndex {
                name,
                table,
                column,
            } => {
                if self.indexes.read().contains_key(name) {
                    return Err(PipError::corrupt(format!(
                        "replication feed creates index '{name}' twice"
                    )));
                }
                let t = tables.get(table).ok_or_else(|| {
                    PipError::corrupt(format!(
                        "replication feed creates index '{name}' on unknown table '{table}'"
                    ))
                })?;
                let e = build_index_entry(name, table, column, t).map_err(|e| {
                    PipError::corrupt(format!("replication feed index '{name}': {e}"))
                })?;
                staged_index = Some((name.clone(), e));
            }
            CatalogRecord::DropIndex { name } => {
                if !self.indexes.read().contains_key(name) {
                    return Err(PipError::corrupt(format!(
                        "replication feed drops unknown index '{name}'"
                    )));
                }
                dropped_index = Some(name.clone());
            }
        }
        self.log(entry.version, entry.record.clone())?;
        if let Some((name, table)) = staged {
            tables.insert(name, table);
        }
        if let Some(name) = dropped {
            tables.remove(&name);
        }
        if staged_index.is_some()
            || dropped_index.is_some()
            || retire_indexes_of.is_some()
            || !index_updates.is_empty()
        {
            let mut indexes = self.indexes.write();
            if let Some(table) = retire_indexes_of {
                indexes.retain(|_, e| e.table != table);
            }
            if let Some((name, e)) = staged_index {
                indexes.insert(name, e);
            }
            if let Some(name) = dropped_index {
                indexes.remove(&name);
            }
            for (iname, idx) in index_updates {
                if let Some(e) = indexes.get_mut(&iname) {
                    e.index = idx;
                }
            }
        }
        // Adopt the primary's stamp verbatim — version-keyed caches on
        // this node then agree with the primary's at the same version.
        self.version.store(entry.version, Ordering::Release);
        Ok(())
    }

    /// Replace the entire catalog with a replication snapshot (follower
    /// catch-up when the primary's retained WAL chain no longer reaches
    /// back to this node's applied version — including the empty-data-dir
    /// first attach). On a durable follower the snapshot is persisted as
    /// a local checkpoint, so a restart resumes from here instead of
    /// needing another bulk transfer.
    pub fn install_snapshot(&self, snapshot: Snapshot) -> Result<()> {
        let mut tables = self.tables.write();
        let mut stats = self.stats.write();
        tables.clear();
        stats.clear();
        self.indexes.write().clear();
        for t in &snapshot.tables {
            if let Some(blob) = &t.stats {
                // Same derived-data rules as recovery: undecodable or
                // mismatched statistics are dropped, never an error.
                if let Ok(s) = persist::stats_from_json(blob) {
                    if s.table == t.name {
                        stats.insert(
                            t.name.clone(),
                            Arc::new(TableStats {
                                version: snapshot.version,
                                ..s
                            }),
                        );
                    }
                }
            }
            tables.insert(t.name.clone(), Arc::clone(&t.table));
        }
        // Index contents are derived data, rebuilt from the shipped
        // tables — same resolution rules as recovery.
        {
            let mut indexes = self.indexes.write();
            for i in &snapshot.indexes {
                let t = tables.get(&i.table).ok_or_else(|| {
                    PipError::corrupt(format!(
                        "snapshot index '{}' covers unknown table '{}'",
                        i.name, i.table
                    ))
                })?;
                let entry = build_index_entry(&i.name, &i.table, &i.column, t).map_err(|e| {
                    PipError::corrupt(format!("rebuilding snapshot index '{}': {e}", i.name))
                })?;
                indexes.insert(i.name.clone(), entry);
            }
        }
        self.version.store(snapshot.version, Ordering::Release);
        VarId::reserve_through(snapshot.next_var_id.saturating_sub(1));
        // Belt and braces, exactly like recovery: ids embedded in rows
        // also pin the allocator floor.
        for t in tables.values() {
            for v in t.variables() {
                VarId::reserve_through(v.key.id.0);
            }
        }
        let local_checkpoint = match self.store.get() {
            Some(store) => Some((Arc::clone(store), store.begin_checkpoint()?)),
            None => None,
        };
        drop(stats);
        drop(tables);
        if let Some((store, gen)) = local_checkpoint {
            store.finish_checkpoint(gen, &snapshot)?;
        }
        Ok(())
    }

    /// Capture a consistent `(snapshot, WAL cursor)` pair for a follower
    /// that needs bulk catch-up: every mutation up to the snapshot's
    /// version is in the snapshot, every later one is readable from the
    /// cursor on.
    ///
    /// Runs under the tables *read* lock — enough, because every
    /// version-bumping mutation holds the write lock, and the one
    /// mutation legal under a concurrent read lock (`CREATE_VARIABLE`)
    /// commutes with the capture: the cursor is read *before* the
    /// variable-id watermark, so an allocation whose WAL frame lands
    /// before the cursor is already covered by the watermark, and one
    /// landing after the cursor is shipped as a frame (its stamp equals
    /// the snapshot version, which the follower's non-decreasing check
    /// accepts).
    pub fn capture_replication_snapshot(&self) -> Result<(Snapshot, WalCursor)> {
        let store = Arc::clone(self.require_store()?);
        let tables = self.tables.read();
        let cursor = store.wal_position();
        let captured = self.capture_checkpoint(&tables);
        drop(tables);
        Ok((captured.into_snapshot(), cursor))
    }

    /// Bytes in the active WAL generation (0 for memory-only catalogs);
    /// the server's background checkpointer polls this.
    pub fn wal_bytes(&self) -> u64 {
        self.store.get().map_or(0, |s| s.wal_bytes())
    }

    /// Current durability level (`None` for memory-only catalogs).
    pub fn durability(&self) -> Option<Durability> {
        self.store.get().map(|s| s.durability())
    }

    /// Switch the durability level (`SET DURABILITY OFF|WAL|SYNC`).
    ///
    /// Turning logging back on after `OFF` first checkpoints, because
    /// mutations made while off exist only in memory — the snapshot
    /// folds them in before the fresh WAL starts. Unlike
    /// [`Database::checkpoint`], this transition keeps *both* checkpoint
    /// phases under the catalog write lock: no mutation may slip between
    /// the snapshot and the level change, and the level must not flip on
    /// until the snapshot is durably down (a fresh-WAL record replayed
    /// on top of a base missing the OFF-period state would corrupt
    /// recovery).
    pub fn set_durability(&self, level: Durability) -> Result<()> {
        if level == Durability::Off && self.durability_pinned.load(Ordering::Acquire) {
            return Err(PipError::Unsupported(
                "SET DURABILITY OFF is unavailable while replication is active: \
                 followers are fed from the write-ahead log"
                    .into(),
            ));
        }
        let store = Arc::clone(self.require_store()?);
        let tables = self.tables.write();
        if store.durability() == Durability::Off && level != Durability::Off {
            let captured = self.capture_checkpoint(&tables);
            store.checkpoint(&captured.into_snapshot())?;
        }
        store.set_durability(level);
        Ok(())
    }

    /// Force-collect fresh optimizer statistics for one table (the
    /// `ANALYZE <table>` command).
    pub fn analyze_table(&self, name: &str) -> Result<Arc<TableStats>> {
        let version = self.version();
        let table = self.table(name)?;
        let stats = Arc::new(TableStats::analyze(name, &table, version));
        self.stats
            .write()
            .insert(name.to_string(), Arc::clone(&stats));
        Ok(stats)
    }

    /// Refresh statistics for every table (bare `ANALYZE`), sorted by
    /// table name.
    pub fn analyze_all(&self) -> Result<Vec<Arc<TableStats>>> {
        self.table_names()
            .iter()
            .map(|n| self.analyze_table(n))
            .collect()
    }

    /// Statistics for a table, auto-collected on first use and after any
    /// catalog mutation. An entry is fresh only if its recorded catalog
    /// version matches the current one — coarse for DDL (any such
    /// mutation retires every table's entry), but inserts keep entries
    /// alive through delta maintenance (see [`Database::insert_rows`])
    /// until their column statistics drift past
    /// [`TableStats::COLUMN_STALENESS`], at which point a full
    /// recollection runs here. Never serves statistics older than the
    /// catalog state at the time of this call (the version is read
    /// *after* the cache hit, so a concurrent mutation between the two
    /// reads forces a recollect instead of a stale hit).
    pub fn table_stats(&self, name: &str) -> Result<Arc<TableStats>> {
        if let Some(hit) = self.stats.read().get(name) {
            if hit.version == self.version() && !hit.columns_stale() {
                return Ok(Arc::clone(hit));
            }
        }
        self.analyze_table(name)
    }
}

/// Checkpoint state captured under the catalog write lock — `Arc`
/// handles only, so the lock is held for O(tables) pointer clones, not
/// for serialization or I/O.
struct CheckpointCapture {
    version: u64,
    next_var_id: u64,
    tables: Vec<(String, Arc<CTable>, Option<Arc<TableStats>>)>,
    indexes: Vec<SnapshotIndex>,
}

impl CheckpointCapture {
    /// Materialize the [`Snapshot`] to persist (statistics serialized
    /// here, after the lock is released).
    fn into_snapshot(self) -> Snapshot {
        Snapshot {
            version: self.version,
            next_var_id: self.next_var_id,
            tables: self
                .tables
                .into_iter()
                .map(|(name, table, stats)| SnapshotTable {
                    name,
                    table,
                    stats: stats.map(|s| persist::stats_to_json(&s)),
                })
                .collect(),
            indexes: self.indexes,
        }
    }
}

/// Validate an index definition against its table and build the
/// contents. The column must resolve and be `Int` or `Float`: ordered
/// deterministic keys (symbolic cells are tracked separately inside the
/// [`OrderedIndex`]; an index over a `Symbolic` column would degenerate
/// to a full-scan candidate list).
fn build_index_entry(
    name: &str,
    table_name: &str,
    column: &str,
    table: &CTable,
) -> Result<IndexEntry> {
    let pos = table.schema().index_of(column).map_err(|_| {
        PipError::Schema(format!(
            "index '{name}': table '{table_name}' has no column '{column}'"
        ))
    })?;
    let dtype = table.schema().columns()[pos].dtype;
    if !matches!(dtype, DataType::Int | DataType::Float) {
        return Err(PipError::Schema(format!(
            "index '{name}': column '{column}' has type {dtype:?}; \
             CREATE INDEX supports Int and Float columns"
        )));
    }
    Ok(IndexEntry {
        table: table_name.to_string(),
        column: column.to_string(),
        index: Arc::new(OrderedIndex::build(table, pos)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{tuple, DataType};

    #[test]
    fn create_insert_read() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        assert!(db.create_table("t", Schema::empty()).is_err());
        db.insert_tuples("t", &[tuple![1i64], tuple![2i64]])
            .unwrap();
        assert_eq!(db.table("t").unwrap().len(), 2);
        assert!(db.table("missing").is_err());
        assert_eq!(db.table_names(), vec!["t"]);
        db.drop_table("t").unwrap();
        assert!(db.drop_table("t").is_err());
    }

    #[test]
    fn create_variable_through_registry() {
        let db = Database::new();
        let v = db.create_variable("Normal", &[0.0, 1.0]).unwrap();
        assert_eq!(v.class.name(), "Normal");
        assert!(db.create_variable("Normal", &[0.0, -1.0]).is_err());
        assert!(db.create_variable("NoSuch", &[]).is_err());
    }

    #[test]
    fn snapshots_are_immutable() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        let before = db.table("t").unwrap();
        db.insert_tuples("t", &[tuple![1i64]]).unwrap();
        assert_eq!(before.len(), 0, "snapshot unaffected by later insert");
        assert_eq!(db.table("t").unwrap().len(), 1);
    }

    #[test]
    fn version_tracks_mutations() {
        let db = Database::new();
        let v0 = db.version();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        let v1 = db.version();
        assert!(v1 > v0);
        db.insert_tuples("t", &[tuple![1i64]]).unwrap();
        let v2 = db.version();
        assert!(v2 > v1);
        // Failed mutations leave the version unchanged.
        assert!(db.drop_table("nope").is_err());
        assert_eq!(db.version(), v2);
        db.drop_table("t").unwrap();
        assert!(db.version() > v2);
    }

    #[test]
    fn memory_only_catalog_has_no_store() {
        let db = Database::new();
        assert!(db.store().is_none());
        assert_eq!(db.wal_bytes(), 0);
        assert!(db.durability().is_none());
        assert!(db.checkpoint().is_err());
        assert!(db.set_durability(Durability::Wal).is_err());
    }

    #[test]
    fn insert_maintains_stats_incrementally() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        db.insert_tuples("t", &(0..10i64).map(|i| tuple![i]).collect::<Vec<_>>())
            .unwrap();
        let full = db.table_stats("t").unwrap();
        assert_eq!((full.rows, full.analyzed_rows), (10, 10));

        // A small insert bumps rows in place: same collection (analyzed
        // rows unchanged), fresh version stamp, and the per-column
        // min/max and histogram buckets absorb the new values without a
        // rescan (NDV stays as collected — drift is what staleness
        // tracks).
        db.insert_tuples("t", &[tuple![99i64]]).unwrap();
        let delta = db.table_stats("t").unwrap();
        assert_eq!(delta.rows, 11, "row count delta-maintained");
        assert_eq!(delta.analyzed_rows, 10, "no rescan happened");
        assert_eq!(delta.version, db.version());
        let a = delta.column("a").unwrap();
        assert_eq!(a.n_deterministic, 11, "cell split delta-maintained");
        assert_eq!(a.max, Some(99.0), "max widened by the insert");
        assert_eq!(a.n_distinct, 10.0, "NDV stays as collected");
        let h = a.histogram.as_ref().unwrap();
        assert_eq!(h.total(), 11, "histogram counted the new value");
        assert_eq!(
            full.column("a")
                .unwrap()
                .histogram
                .as_ref()
                .unwrap()
                .total(),
            10,
            "the cached pre-insert entry is untouched"
        );
        assert!(!delta.columns_stale());

        // ANALYZE forces the full recollection.
        let analyzed = db.analyze_table("t").unwrap();
        assert_eq!((analyzed.rows, analyzed.analyzed_rows), (11, 11));
        assert_eq!(analyzed.column("a").unwrap().n_distinct, 11.0);

        // Enough growth trips column-level staleness and recollects.
        db.insert_tuples("t", &(0..5i64).map(|i| tuple![100 + i]).collect::<Vec<_>>())
            .unwrap();
        let grown = db.table_stats("t").unwrap();
        assert_eq!(grown.analyzed_rows, 16, "staleness forced a rescan");
        assert_eq!(grown.column("a").unwrap().n_distinct, 16.0);

        // Non-insert mutations still retire the entry wholesale.
        db.create_table("other", Schema::empty()).unwrap();
        let after_ddl = db.table_stats("t").unwrap();
        assert_eq!(after_ddl.version, db.version());
        assert_eq!(after_ddl.analyzed_rows, 16);
    }

    #[test]
    fn insert_delta_counts_conditional_rows() {
        use pip_expr::{atoms, Conjunction, Equation};
        let db = Database::new();
        db.create_table("t", Schema::of(&[("v", DataType::Symbolic)]))
            .unwrap();
        db.insert_tuples("t", &[tuple![1.0]]).unwrap();
        let s0 = db.table_stats("t").unwrap();
        assert_eq!(s0.conditional_rows, 0);
        let y = db.create_variable("Normal", &[0.0, 1.0]).unwrap();
        db.insert_rows(
            "t",
            vec![CRow::new(
                vec![Equation::from(y.clone())],
                Conjunction::single(atoms::gt(Equation::from(y), 0.0)),
            )],
        )
        .unwrap();
        let s1 = db.table_stats("t").unwrap();
        assert_eq!(s1.rows, 2);
        // 2 rows vs 1 analyzed exceeds the 1.2x threshold → recollected.
        assert_eq!(s1.analyzed_rows, 2);
        assert_eq!(s1.conditional_rows, 1);
    }

    #[test]
    fn index_lifecycle_and_incremental_maintenance() {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::of(&[("k", DataType::Int), ("s", DataType::Str)]),
        )
        .unwrap();
        db.insert_tuples("t", &(0..10i64).map(|i| tuple![i, "x"]).collect::<Vec<_>>())
            .unwrap();
        db.create_index("idx_k", "t", "k").unwrap();
        // Validation paths.
        assert!(db.create_index("idx_k", "t", "k").is_err(), "duplicate");
        assert!(db.create_index("i2", "zzz", "k").is_err(), "no table");
        assert!(db.create_index("i2", "t", "zzz").is_err(), "no column");
        assert!(db.create_index("i2", "t", "s").is_err(), "non-numeric");
        let entry = db.index("idx_k").unwrap();
        assert_eq!((entry.table.as_str(), entry.column.as_str()), ("t", "k"));
        assert_eq!(entry.index.covered_rows(), 10);
        // Inserts extend the index in place.
        db.insert_tuples("t", &[tuple![42i64, "y"]]).unwrap();
        let entry = db.index("idx_k").unwrap();
        assert_eq!(entry.index.covered_rows(), 11);
        assert_eq!(
            entry.index.equal_candidates(&pip_core::Value::Int(42)),
            vec![10]
        );
        assert_eq!(db.indexes_on("t").len(), 1);
        assert_eq!(db.index_names(), vec!["idx_k"]);
        // Dropping the table takes its indexes with it.
        db.drop_table("t").unwrap();
        assert!(db.index("idx_k").is_none());
        assert!(db.drop_index("idx_k").is_err());
    }

    #[test]
    fn register_table_retires_dependent_indexes() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("k", DataType::Int)]))
            .unwrap();
        db.create_index("idx", "t", "k").unwrap();
        db.register_table("t", CTable::empty(Schema::of(&[("other", DataType::Str)])))
            .unwrap();
        assert!(db.index("idx").is_none(), "stale definition retired");
    }

    #[test]
    fn insert_arity_checked() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        assert!(db.insert_tuples("t", &[tuple![1i64, 2i64]]).is_err());
        assert!(db.insert_tuples("zzz", &[tuple![1i64]]).is_err());
    }

    mod durable {
        use super::*;
        use pip_expr::{atoms, Conjunction, Equation};
        use std::path::PathBuf;

        fn tmp_dir(tag: &str) -> PathBuf {
            let dir = std::env::temp_dir()
                .join(format!("pip-engine-catalog-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        }

        #[test]
        fn reopen_restores_tables_version_and_variables() {
            let dir = tmp_dir("reopen");
            let (v_key, version_before);
            {
                let db = Database::open(&dir).unwrap();
                db.create_table("t", Schema::of(&[("x", DataType::Symbolic)]))
                    .unwrap();
                let y = db.create_variable("Normal", &[10.0, 2.0]).unwrap();
                v_key = y.key;
                db.insert_rows(
                    "t",
                    vec![CRow::new(
                        vec![Equation::from(y.clone())],
                        Conjunction::single(atoms::gt(Equation::from(y), 8.0)),
                    )],
                )
                .unwrap();
                db.insert_tuples("t", &[tuple![5.0]]).unwrap();
                version_before = db.version();
                assert!(db.wal_bytes() > 0);
            }
            let (db, info) = Database::recover(&dir).unwrap();
            assert_eq!(info.version, version_before);
            assert_eq!(info.replayed, 4, "create + create_variable + 2 inserts");
            assert!(!info.torn_tail);
            assert_eq!(db.version(), version_before, "version survives restart");
            let t = db.table("t").unwrap();
            assert_eq!(t.len(), 2);
            let vars = t.variables();
            assert_eq!(vars.len(), 1);
            assert_eq!(vars[0].key, v_key, "variable identity round-trips");
            assert_eq!(&vars[0].params[..], &[10.0, 2.0]);
            // Fresh variables never collide with recovered ones.
            let fresh = db.create_variable("Normal", &[0.0, 1.0]).unwrap();
            assert!(fresh.key.id > v_key.id);
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn indexes_survive_recovery_checkpoint_and_replication() {
            let dir = tmp_dir("idx");
            {
                let db = Database::open(&dir).unwrap();
                db.create_table("t", Schema::of(&[("k", DataType::Int)]))
                    .unwrap();
                db.insert_tuples("t", &(0..6i64).map(|i| tuple![i % 3]).collect::<Vec<_>>())
                    .unwrap();
                db.create_index("idx_k", "t", "k").unwrap();
                db.insert_tuples("t", &[tuple![7i64]]).unwrap();
            }
            // WAL replay rebuilds both definition and contents.
            let (db, _) = Database::recover(&dir).unwrap();
            let entry = db.index("idx_k").unwrap();
            assert_eq!(entry.index.covered_rows(), 7);
            assert_eq!(
                entry.index.equal_candidates(&pip_core::Value::Int(7)),
                vec![6]
            );
            // ...and so does a snapshot after the WAL is compacted away.
            db.checkpoint().unwrap();
            drop(db);
            let (db, info) = Database::recover(&dir).unwrap();
            assert_eq!(info.replayed, 0);
            let entry = db.index("idx_k").unwrap();
            assert_eq!(entry.index.covered_rows(), 7);

            // A follower applying the shipped WAL builds the same index.
            let follower_dir = tmp_dir("idx-follower");
            let store = db.store().unwrap();
            let (snapshot, _cursor) = db.capture_replication_snapshot().unwrap();
            let _ = store; // frames are compacted away; ship the snapshot
            let follower = Database::open(&follower_dir).unwrap();
            follower.set_read_only(true);
            follower.install_snapshot(snapshot).unwrap();
            let fe = follower.index("idx_k").unwrap();
            assert_eq!(fe.index, db.index("idx_k").unwrap().index);
            // Replicated inserts and index DDL keep the follower in step.
            let v = follower.version();
            follower
                .apply_replicated(&WalEntry {
                    version: v + 1,
                    record: CatalogRecord::Insert {
                        name: "t".into(),
                        rows: vec![CRow::from_tuple(&tuple![9i64])],
                    },
                })
                .unwrap();
            assert_eq!(follower.index("idx_k").unwrap().index.covered_rows(), 8);
            follower
                .apply_replicated(&WalEntry {
                    version: v + 2,
                    record: CatalogRecord::DropIndex {
                        name: "idx_k".into(),
                    },
                })
                .unwrap();
            assert!(follower.index("idx_k").is_none());
            std::fs::remove_dir_all(&dir).unwrap();
            std::fs::remove_dir_all(&follower_dir).unwrap();
        }

        #[test]
        fn checkpoint_persists_stats_and_compacts_wal() {
            let dir = tmp_dir("ckpt");
            {
                let db = Database::open(&dir).unwrap();
                db.create_table("t", Schema::of(&[("a", DataType::Int)]))
                    .unwrap();
                db.insert_tuples("t", &(0..20i64).map(|i| tuple![i]).collect::<Vec<_>>())
                    .unwrap();
                let _ = db.table_stats("t").unwrap(); // collect fresh stats
                let generation = db.checkpoint().unwrap();
                assert_eq!(generation, 1);
                assert_eq!(db.wal_bytes(), 0);
            }
            let (db, info) = Database::recover(&dir).unwrap();
            assert_eq!(info.snapshot_gen, 1);
            assert_eq!(info.replayed, 0);
            // Persisted statistics are served without a rescan: the
            // entry is fresh at the recovered version.
            let s = db.table_stats("t").unwrap();
            assert_eq!(s.rows, 20);
            assert_eq!(s.version, db.version());

            // A WAL suffix that mutates *another* table must not retire
            // t's persisted statistics: recovery re-stamps surviving
            // blobs at the recovered version.
            db.create_table("other", Schema::of(&[("b", DataType::Int)]))
                .unwrap();
            db.insert_tuples("other", &[tuple![1i64]]).unwrap();
            drop(db);
            let (db, info) = Database::recover(&dir).unwrap();
            assert_eq!(info.replayed, 2, "the create + insert suffix");
            let s = db.table_stats("t").unwrap();
            assert_eq!(s.analyzed_rows, 20, "no rescan of the untouched table");
            assert_eq!(s.version, db.version(), "re-stamped at recovery");
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn durability_off_then_on_checkpoints_the_gap() {
            let dir = tmp_dir("offon");
            {
                let db = Database::open(&dir).unwrap();
                assert_eq!(db.durability(), Some(Durability::Wal));
                db.set_durability(Durability::Off).unwrap();
                // Mutations while off are not logged...
                db.create_table("t", Schema::of(&[("a", DataType::Int)]))
                    .unwrap();
                db.insert_tuples("t", &[tuple![1i64]]).unwrap();
                assert_eq!(db.wal_bytes(), 0);
                // ...but turning logging back on folds them into a
                // snapshot first, so nothing is lost.
                db.set_durability(Durability::Sync).unwrap();
                db.insert_tuples("t", &[tuple![2i64]]).unwrap();
            }
            let (db, _) = Database::recover(&dir).unwrap();
            assert_eq!(db.table("t").unwrap().len(), 2);
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn over_deep_symbolic_rows_fail_the_mutation_not_recovery() {
            let dir = tmp_dir("deep");
            {
                let db = Database::open(&dir).unwrap();
                db.create_table("t", Schema::of(&[("x", DataType::Symbolic)]))
                    .unwrap();
                db.insert_tuples("t", &[tuple![1.0]]).unwrap();
                // ~80 chained ops nest past the WAL payload's JSON depth
                // cap: the insert must be refused up front — were it
                // acknowledged, recovery would misread the frame and
                // silently truncate it and everything after it.
                let mut eq = Equation::val(1.0);
                for _ in 0..80 {
                    eq = eq + Equation::val(1.0);
                }
                assert!(db
                    .insert_rows("t", vec![CRow::unconditional(vec![eq])])
                    .is_err());
                assert_eq!(db.table("t").unwrap().len(), 1, "memory unchanged");
                // The log is still append-clean after the refusal.
                db.insert_tuples("t", &[tuple![2.0]]).unwrap();
            }
            let (db, info) = Database::recover(&dir).unwrap();
            assert!(!info.torn_tail);
            assert_eq!(db.table("t").unwrap().len(), 2);
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn durability_off_still_refuses_unpersistable_rows() {
            let dir = tmp_dir("deepoff");
            {
                let db = Database::open(&dir).unwrap();
                db.set_durability(Durability::Off).unwrap();
                db.create_table("t", Schema::of(&[("x", DataType::Symbolic)]))
                    .unwrap();
                // Unlogged, but the store's write contract still holds:
                // accepting this row would make every later checkpoint —
                // including this OFF→ON transition — fail while it
                // exists.
                let mut eq = Equation::val(1.0);
                for _ in 0..80 {
                    eq = eq + Equation::val(1.0);
                }
                assert!(db
                    .insert_rows("t", vec![CRow::unconditional(vec![eq])])
                    .is_err());
                db.insert_tuples("t", &[tuple![1.0]]).unwrap();
                db.set_durability(Durability::Sync).unwrap();
            }
            let (db, _) = Database::recover(&dir).unwrap();
            assert_eq!(db.table("t").unwrap().len(), 1);
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn read_only_refuses_every_mutation_but_not_reads() {
            let db = Database::new();
            db.create_table("t", Schema::of(&[("a", DataType::Int)]))
                .unwrap();
            db.insert_tuples("t", &[tuple![1i64]]).unwrap();
            db.set_read_only(true);
            assert!(db.is_read_only());
            assert!(db.create_table("u", Schema::empty()).is_err());
            assert!(db
                .register_table("u", CTable::empty(Schema::empty()))
                .is_err());
            assert!(db.drop_table("t").is_err());
            assert!(db.insert_tuples("t", &[tuple![2i64]]).is_err());
            assert!(db.create_variable("Normal", &[0.0, 1.0]).is_err());
            // Reads — and statistics collection — still work.
            assert_eq!(db.table("t").unwrap().len(), 1);
            assert!(db.table_stats("t").is_ok());
            // PROMOTE semantics: clearing the flag restores writes.
            db.set_read_only(false);
            db.insert_tuples("t", &[tuple![2i64]]).unwrap();
        }

        #[test]
        fn pinned_durability_refuses_off_but_not_other_levels() {
            let dir = tmp_dir("pin");
            let db = Database::open(&dir).unwrap();
            db.pin_durability();
            assert!(db.set_durability(Durability::Off).is_err());
            db.set_durability(Durability::Sync).unwrap();
            db.set_durability(Durability::Wal).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn apply_replicated_mirrors_the_primary_and_persists_locally() {
            let primary_dir = tmp_dir("repl-primary");
            let follower_dir = tmp_dir("repl-follower");
            let primary = Database::open(&primary_dir).unwrap();
            primary
                .create_table("t", Schema::of(&[("x", DataType::Symbolic)]))
                .unwrap();
            let y = primary.create_variable("Normal", &[3.0, 1.0]).unwrap();
            primary
                .insert_rows(
                    "t",
                    vec![CRow::new(
                        vec![Equation::from(y.clone())],
                        Conjunction::single(atoms::gt(Equation::from(y.clone()), 2.0)),
                    )],
                )
                .unwrap();
            primary.insert_tuples("t", &[tuple![5.0]]).unwrap();

            // Ship the primary's WAL to a durable follower, frame by
            // frame, through the apply path.
            let store = primary.store().unwrap();
            let frames = match store
                .read_wal_frames(pip_store::WalCursor::start(0), 64)
                .unwrap()
            {
                pip_store::TailRead::Frames { frames, .. } => frames,
                pip_store::TailRead::Gap => panic!("chain retired"),
            };
            assert_eq!(frames.len(), 4);
            let follower = Database::open(&follower_dir).unwrap();
            follower.set_read_only(true);
            for f in &frames {
                let entry = pip_store::codec::decode_entry(
                    &serde_json::from_str(std::str::from_utf8(&f.payload).unwrap()).unwrap(),
                    follower.registry(),
                )
                .unwrap();
                follower.apply_replicated(&entry).unwrap();
            }
            assert_eq!(follower.version(), primary.version());
            let (pt, ft) = (primary.table("t").unwrap(), follower.table("t").unwrap());
            assert_eq!(*pt, *ft, "tables bit-identical");
            assert_eq!(
                pt.variables()[0].key,
                ft.variables()[0].key,
                "variable identity preserved"
            );
            // An entry behind the applied version is a corrupt feed.
            let stale = WalEntry {
                version: 0,
                record: CatalogRecord::Drop { name: "t".into() },
            };
            assert!(matches!(
                follower.apply_replicated(&stale),
                Err(PipError::Corrupt(_))
            ));
            // The follower's local WAL holds the same history: a restart
            // recovers the same catalog at the same version.
            drop(follower);
            let (recovered, info) = Database::recover(&follower_dir).unwrap();
            assert_eq!(info.version, primary.version());
            assert_eq!(*recovered.table("t").unwrap(), *pt);
            // And fresh ids after recovery never collide with shipped
            // ones.
            recovered.set_read_only(false);
            let fresh = recovered.create_variable("Normal", &[0.0, 1.0]).unwrap();
            assert!(fresh.key.id > pt.variables()[0].key.id);
            std::fs::remove_dir_all(&primary_dir).unwrap();
            std::fs::remove_dir_all(&follower_dir).unwrap();
        }

        #[test]
        fn install_snapshot_replaces_the_catalog_and_checkpoints() {
            let primary_dir = tmp_dir("snap-primary");
            let follower_dir = tmp_dir("snap-follower");
            let primary = Database::open(&primary_dir).unwrap();
            primary
                .create_table("t", Schema::of(&[("a", DataType::Int)]))
                .unwrap();
            primary
                .insert_tuples("t", &(0..8i64).map(|i| tuple![i]).collect::<Vec<_>>())
                .unwrap();
            let _ = primary.table_stats("t").unwrap();
            let (snapshot, cursor) = primary.capture_replication_snapshot().unwrap();
            assert_eq!(snapshot.version, primary.version());
            assert_eq!(cursor, primary.store().unwrap().wal_position());

            let follower = Database::open(&follower_dir).unwrap();
            follower.set_read_only(true);
            // Pre-existing junk on the follower is replaced wholesale.
            follower.set_read_only(false);
            follower.create_table("junk", Schema::empty()).unwrap();
            follower.set_read_only(true);
            follower.install_snapshot(snapshot).unwrap();
            assert_eq!(follower.table_names(), vec!["t"]);
            assert_eq!(follower.version(), primary.version());
            assert_eq!(*follower.table("t").unwrap(), *primary.table("t").unwrap());
            // Shipped statistics serve without a rescan.
            let s = follower.table_stats("t").unwrap();
            assert_eq!(s.analyzed_rows, 8);
            // The install checkpointed locally: a restart recovers the
            // snapshot state with nothing to replay.
            drop(follower);
            let (recovered, info) = Database::recover(&follower_dir).unwrap();
            assert_eq!(info.replayed, 0, "snapshot persisted as a checkpoint");
            assert_eq!(recovered.version(), primary.version());
            assert_eq!(*recovered.table("t").unwrap(), *primary.table("t").unwrap());
            std::fs::remove_dir_all(&primary_dir).unwrap();
            std::fs::remove_dir_all(&follower_dir).unwrap();
        }

        #[test]
        fn failed_mutations_are_not_logged() {
            let dir = tmp_dir("failed");
            {
                let db = Database::open(&dir).unwrap();
                db.create_table("t", Schema::of(&[("a", DataType::Int)]))
                    .unwrap();
                assert!(db.create_table("t", Schema::empty()).is_err());
                assert!(db.insert_tuples("t", &[tuple![1i64, 2i64]]).is_err());
                assert!(db.drop_table("ghost").is_err());
            }
            let (db, info) = Database::recover(&dir).unwrap();
            assert_eq!(info.replayed, 1, "only the successful create");
            assert_eq!(db.table("t").unwrap().len(), 0);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
