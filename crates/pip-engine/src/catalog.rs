//! The database catalog: named c-tables plus the distribution registry.
//!
//! Plays the role Postgres plays for the paper's plugin — a place to
//! create tables, insert (possibly symbolic) rows, and allocate random
//! variables via `CREATE_VARIABLE(distribution, params)` (Section V-A).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use pip_core::{PipError, Result, Schema, Tuple};
use pip_dist::DistributionRegistry;
use pip_expr::RandomVar;

use pip_ctable::{CRow, CTable};

use crate::stats::TableStats;

/// An in-memory probabilistic database.
#[derive(Debug)]
pub struct Database {
    registry: DistributionRegistry,
    tables: RwLock<HashMap<String, Arc<CTable>>>,
    /// Monotonic catalog generation, bumped by every DDL/DML mutation.
    /// Cache layers (e.g. the server's sample-result cache) key on it so
    /// stale entries can never be served after a mutation.
    version: AtomicU64,
    /// Optimizer statistics per table, keyed by the catalog version they
    /// were collected at — any mutation retires them (see
    /// [`Database::table_stats`]).
    stats: RwLock<HashMap<String, Arc<TableStats>>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// A fresh database with the built-in distribution classes.
    pub fn new() -> Self {
        Database {
            registry: DistributionRegistry::with_builtins(),
            tables: RwLock::new(HashMap::new()),
            version: AtomicU64::new(0),
            stats: RwLock::new(HashMap::new()),
        }
    }

    /// The distribution registry (mutable access requires construction
    /// time registration via [`Database::with_registry`]).
    pub fn registry(&self) -> &DistributionRegistry {
        &self.registry
    }

    /// Build with a custom registry (user-defined distribution classes).
    pub fn with_registry(registry: DistributionRegistry) -> Self {
        Database {
            registry,
            tables: RwLock::new(HashMap::new()),
            version: AtomicU64::new(0),
            stats: RwLock::new(HashMap::new()),
        }
    }

    /// `CREATE VARIABLE(distribution, params)` — allocate a fresh random
    /// variable of a registered class.
    pub fn create_variable(&self, class: &str, params: &[f64]) -> Result<RandomVar> {
        RandomVar::create_named(&self.registry, class, params)
    }

    /// Current catalog generation. Changes on every successful mutation
    /// (create/register/drop/insert); equal versions guarantee the same
    /// table contents for cache-key purposes.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Bump the catalog generation, returning the new version.
    fn bump_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Create an empty table. Errors if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(PipError::Schema(format!("table '{name}' already exists")));
        }
        tables.insert(name.to_string(), Arc::new(CTable::empty(schema)));
        drop(tables);
        self.bump_version();
        Ok(())
    }

    /// Register (or replace) a table with existing contents.
    pub fn register_table(&self, name: &str, table: CTable) {
        self.tables
            .write()
            .insert(name.to_string(), Arc::new(table));
        self.bump_version();
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(name)
            .map(|_| {
                self.bump_version();
            })
            .ok_or_else(|| PipError::NotFound(format!("table '{name}'")))
    }

    /// Shared snapshot of a table.
    pub fn table(&self, name: &str) -> Result<Arc<CTable>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| PipError::NotFound(format!("table '{name}'")))
    }

    /// Append symbolic rows to a table.
    ///
    /// Optimizer statistics get cheap delta maintenance instead of
    /// retirement: the cached [`TableStats`] entry (if it was fresh at
    /// the pre-insert version) has its row counts bumped in place and is
    /// re-stamped at the new version, so an insert does not force a full
    /// rescan. Column-level statistics drift until `ANALYZE` or the
    /// staleness threshold triggers a recollection (see
    /// [`Database::table_stats`]).
    pub fn insert_rows(&self, name: &str, rows: Vec<CRow>) -> Result<()> {
        let added = rows.len() as u64;
        let added_conditional = rows
            .iter()
            .filter(|r| !r.condition.is_trivially_true())
            .count() as u64;
        let mut tables = self.tables.write();
        let table = tables
            .get(name)
            .ok_or_else(|| PipError::NotFound(format!("table '{name}'")))?;
        let mut new = (**table).clone();
        for r in rows {
            new.push(r)?;
        }
        tables.insert(name.to_string(), Arc::new(new));
        drop(tables);
        // The bump's fetch_add pins this insert's exact (pre, post)
        // version pair — no separate load can interleave with another
        // mutation. The delta only applies when the cached entry was
        // fresh at exactly `pre`; any concurrent mutation breaks that
        // equality (either here or for the other inserter), and the
        // loser's entry simply goes stale and recollects on next use.
        let post_insert = self.bump_version();
        let pre_insert = post_insert - 1;
        let mut stats = self.stats.write();
        if let Some(entry) = stats.get_mut(name) {
            if entry.version == pre_insert {
                *entry = Arc::new(entry.apply_insert(added, added_conditional, post_insert));
            }
        }
        Ok(())
    }

    /// Append deterministic tuples to a table.
    pub fn insert_tuples(&self, name: &str, tuples: &[Tuple]) -> Result<()> {
        self.insert_rows(name, tuples.iter().map(CRow::from_tuple).collect())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Force-collect fresh optimizer statistics for one table (the
    /// `ANALYZE <table>` command).
    pub fn analyze_table(&self, name: &str) -> Result<Arc<TableStats>> {
        let version = self.version();
        let table = self.table(name)?;
        let stats = Arc::new(TableStats::analyze(name, &table, version));
        self.stats
            .write()
            .insert(name.to_string(), Arc::clone(&stats));
        Ok(stats)
    }

    /// Refresh statistics for every table (bare `ANALYZE`), sorted by
    /// table name.
    pub fn analyze_all(&self) -> Result<Vec<Arc<TableStats>>> {
        self.table_names()
            .iter()
            .map(|n| self.analyze_table(n))
            .collect()
    }

    /// Statistics for a table, auto-collected on first use and after any
    /// catalog mutation. An entry is fresh only if its recorded catalog
    /// version matches the current one — coarse for DDL (any such
    /// mutation retires every table's entry), but inserts keep entries
    /// alive through delta maintenance (see [`Database::insert_rows`])
    /// until their column statistics drift past
    /// [`TableStats::COLUMN_STALENESS`], at which point a full
    /// recollection runs here. Never serves statistics older than the
    /// catalog state at the time of this call (the version is read
    /// *after* the cache hit, so a concurrent mutation between the two
    /// reads forces a recollect instead of a stale hit).
    pub fn table_stats(&self, name: &str) -> Result<Arc<TableStats>> {
        if let Some(hit) = self.stats.read().get(name) {
            if hit.version == self.version() && !hit.columns_stale() {
                return Ok(Arc::clone(hit));
            }
        }
        self.analyze_table(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pip_core::{tuple, DataType};

    #[test]
    fn create_insert_read() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        assert!(db.create_table("t", Schema::empty()).is_err());
        db.insert_tuples("t", &[tuple![1i64], tuple![2i64]])
            .unwrap();
        assert_eq!(db.table("t").unwrap().len(), 2);
        assert!(db.table("missing").is_err());
        assert_eq!(db.table_names(), vec!["t"]);
        db.drop_table("t").unwrap();
        assert!(db.drop_table("t").is_err());
    }

    #[test]
    fn create_variable_through_registry() {
        let db = Database::new();
        let v = db.create_variable("Normal", &[0.0, 1.0]).unwrap();
        assert_eq!(v.class.name(), "Normal");
        assert!(db.create_variable("Normal", &[0.0, -1.0]).is_err());
        assert!(db.create_variable("NoSuch", &[]).is_err());
    }

    #[test]
    fn snapshots_are_immutable() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        let before = db.table("t").unwrap();
        db.insert_tuples("t", &[tuple![1i64]]).unwrap();
        assert_eq!(before.len(), 0, "snapshot unaffected by later insert");
        assert_eq!(db.table("t").unwrap().len(), 1);
    }

    #[test]
    fn version_tracks_mutations() {
        let db = Database::new();
        let v0 = db.version();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        let v1 = db.version();
        assert!(v1 > v0);
        db.insert_tuples("t", &[tuple![1i64]]).unwrap();
        let v2 = db.version();
        assert!(v2 > v1);
        // Failed mutations leave the version unchanged.
        assert!(db.drop_table("nope").is_err());
        assert_eq!(db.version(), v2);
        db.drop_table("t").unwrap();
        assert!(db.version() > v2);
    }

    #[test]
    fn insert_maintains_stats_incrementally() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        db.insert_tuples("t", &(0..10i64).map(|i| tuple![i]).collect::<Vec<_>>())
            .unwrap();
        let full = db.table_stats("t").unwrap();
        assert_eq!((full.rows, full.analyzed_rows), (10, 10));

        // A small insert bumps rows in place: same collection (analyzed
        // rows unchanged, columns untouched), fresh version stamp.
        db.insert_tuples("t", &[tuple![99i64]]).unwrap();
        let delta = db.table_stats("t").unwrap();
        assert_eq!(delta.rows, 11, "row count delta-maintained");
        assert_eq!(delta.analyzed_rows, 10, "no rescan happened");
        assert_eq!(delta.version, db.version());
        assert_eq!(delta.columns, full.columns, "column stats carried over");
        assert!(!delta.columns_stale());

        // ANALYZE forces the full recollection.
        let analyzed = db.analyze_table("t").unwrap();
        assert_eq!((analyzed.rows, analyzed.analyzed_rows), (11, 11));
        assert_eq!(analyzed.column("a").unwrap().n_distinct, 11.0);

        // Enough growth trips column-level staleness and recollects.
        db.insert_tuples("t", &(0..5i64).map(|i| tuple![100 + i]).collect::<Vec<_>>())
            .unwrap();
        let grown = db.table_stats("t").unwrap();
        assert_eq!(grown.analyzed_rows, 16, "staleness forced a rescan");
        assert_eq!(grown.column("a").unwrap().n_distinct, 16.0);

        // Non-insert mutations still retire the entry wholesale.
        db.create_table("other", Schema::empty()).unwrap();
        let after_ddl = db.table_stats("t").unwrap();
        assert_eq!(after_ddl.version, db.version());
        assert_eq!(after_ddl.analyzed_rows, 16);
    }

    #[test]
    fn insert_delta_counts_conditional_rows() {
        use pip_expr::{atoms, Conjunction, Equation};
        let db = Database::new();
        db.create_table("t", Schema::of(&[("v", DataType::Symbolic)]))
            .unwrap();
        db.insert_tuples("t", &[tuple![1.0]]).unwrap();
        let s0 = db.table_stats("t").unwrap();
        assert_eq!(s0.conditional_rows, 0);
        let y = db.create_variable("Normal", &[0.0, 1.0]).unwrap();
        db.insert_rows(
            "t",
            vec![CRow::new(
                vec![Equation::from(y.clone())],
                Conjunction::single(atoms::gt(Equation::from(y), 0.0)),
            )],
        )
        .unwrap();
        let s1 = db.table_stats("t").unwrap();
        assert_eq!(s1.rows, 2);
        // 2 rows vs 1 analyzed exceeds the 1.2x threshold → recollected.
        assert_eq!(s1.analyzed_rows, 2);
        assert_eq!(s1.conditional_rows, 1);
    }

    #[test]
    fn insert_arity_checked() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        assert!(db.insert_tuples("t", &[tuple![1i64, 2i64]]).is_err());
        assert!(db.insert_tuples("zzz", &[tuple![1i64]]).is_err());
    }
}
