//! Persistence codecs for engine-owned catalog metadata.
//!
//! `pip-store` persists table *contents* itself; optimizer statistics
//! are an engine concept, so the store carries them as an opaque JSON
//! blob that this module encodes and decodes. Statistics are derived
//! data — a failed decode just means a lazy recollection on first use —
//! but persisting them lets a recovered catalog plan its first queries
//! without rescanning every table.

use pip_core::{PipError, Result};
use pip_store::codec::{decode_f64, dtype_from, dtype_name, encode_f64};
use serde_json::Value as Json;

use crate::stats::{ColumnStats, Histogram, TableStats};

fn opt_f64(x: Option<f64>) -> Json {
    match x {
        Some(v) => encode_f64(v),
        None => Json::Null,
    }
}

fn histogram_to_json(h: &Option<Histogram>) -> Json {
    match h {
        None => Json::Null,
        Some(h) => Json::Object(vec![
            (
                "bounds".into(),
                Json::Array(h.bounds.iter().map(|&b| encode_f64(b)).collect()),
            ),
            (
                "counts".into(),
                Json::Array(
                    h.counts
                        .iter()
                        .map(|&c| Json::Number(c.to_string()))
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Tolerant histogram decode: an absent or null slot (a blob written
/// before histograms existed) yields `None`, which just means the
/// estimator falls back to uniform interpolation until re-`ANALYZE`.
fn histogram_from_json(v: Option<&Json>) -> Result<Option<Histogram>> {
    let bad = |what: &str| PipError::corrupt(format!("stats histogram {what}"));
    let Some(v) = v else { return Ok(None) };
    if matches!(v, Json::Null) {
        return Ok(None);
    }
    let bounds = v
        .get("bounds")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("bounds"))?
        .iter()
        .map(decode_f64)
        .collect::<Result<Vec<f64>>>()?;
    let counts = v
        .get("counts")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("counts"))?
        .iter()
        .map(|c| c.as_u64().ok_or_else(|| bad("count")))
        .collect::<Result<Vec<u64>>>()?;
    if bounds.len() != counts.len() + 1 {
        return Err(bad("shape"));
    }
    Ok(Some(Histogram { bounds, counts }))
}

fn get_u64(v: &Json, key: &str) -> Result<u64> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| PipError::corrupt(format!("stats field '{key}'")))
}

/// Encode [`TableStats`] for the snapshot's per-table stats slot.
pub fn stats_to_json(s: &TableStats) -> Json {
    Json::Object(vec![
        ("table".into(), Json::String(s.table.clone())),
        ("rows".into(), Json::Number(s.rows.to_string())),
        (
            "conditional_rows".into(),
            Json::Number(s.conditional_rows.to_string()),
        ),
        ("version".into(), Json::Number(s.version.to_string())),
        (
            "analyzed_rows".into(),
            Json::Number(s.analyzed_rows.to_string()),
        ),
        (
            "columns".into(),
            Json::Array(
                s.columns
                    .iter()
                    .map(|c| {
                        Json::Object(vec![
                            ("name".into(), Json::String(c.name.clone())),
                            ("dtype".into(), Json::String(dtype_name(c.dtype).into())),
                            (
                                "n_deterministic".into(),
                                Json::Number(c.n_deterministic.to_string()),
                            ),
                            ("n_symbolic".into(), Json::Number(c.n_symbolic.to_string())),
                            ("n_distinct".into(), encode_f64(c.n_distinct)),
                            ("min".into(), opt_f64(c.min)),
                            ("max".into(), opt_f64(c.max)),
                            ("histogram".into(), histogram_to_json(&c.histogram)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decode [`stats_to_json`]'s output.
pub fn stats_from_json(v: &Json) -> Result<TableStats> {
    let bad = |what: &str| PipError::corrupt(format!("stats field '{what}'"));
    let mut columns = Vec::new();
    for c in v
        .get("columns")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("columns"))?
    {
        let opt = |key: &str| -> Result<Option<f64>> {
            match c.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(x) => decode_f64(x).map(Some),
            }
        };
        columns.push(ColumnStats {
            name: c
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("column name"))?
                .to_string(),
            dtype: c
                .get("dtype")
                .and_then(Json::as_str)
                .and_then(dtype_from)
                .ok_or_else(|| bad("column dtype"))?,
            n_deterministic: get_u64(c, "n_deterministic")?,
            n_symbolic: get_u64(c, "n_symbolic")?,
            n_distinct: decode_f64(c.get("n_distinct").ok_or_else(|| bad("n_distinct"))?)?,
            min: opt("min")?,
            max: opt("max")?,
            histogram: histogram_from_json(c.get("histogram"))?,
        });
    }
    Ok(TableStats {
        table: v
            .get("table")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("table"))?
            .to_string(),
        rows: get_u64(v, "rows")?,
        conditional_rows: get_u64(v, "conditional_rows")?,
        columns,
        version: get_u64(v, "version")?,
        analyzed_rows: get_u64(v, "analyzed_rows")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use pip_core::{tuple, DataType, Schema};

    #[test]
    fn stats_round_trip() {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::of(&[("a", DataType::Int), ("s", DataType::Symbolic)]),
        )
        .unwrap();
        db.insert_tuples("t", &[tuple![1i64, 2.0], tuple![5i64, 3.5]])
            .unwrap();
        let stats = db.table_stats("t").unwrap();
        let back = stats_from_json(&stats_to_json(&stats)).unwrap();
        assert_eq!(back, *stats);
    }

    #[test]
    fn pre_histogram_blob_decodes_with_none() {
        let db = Database::new();
        db.create_table("t", Schema::of(&[("a", DataType::Int)]))
            .unwrap();
        db.insert_tuples("t", &[tuple![1i64], tuple![2i64]])
            .unwrap();
        let stats = db.table_stats("t").unwrap();
        let mut json = stats_to_json(&stats);
        // Simulate a blob written before histograms existed.
        if let Json::Object(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "columns" {
                    if let Json::Array(cols) = v {
                        for col in cols {
                            if let Json::Object(cf) = col {
                                cf.retain(|(k, _)| k != "histogram");
                            }
                        }
                    }
                }
            }
        }
        let back = stats_from_json(&json).unwrap();
        assert!(back.columns.iter().all(|c| c.histogram.is_none()));
        assert_eq!(back.rows, stats.rows);
    }

    #[test]
    fn empty_and_malformed_blobs() {
        let db = Database::new();
        db.create_table("e", Schema::empty()).unwrap();
        let stats = db.table_stats("e").unwrap();
        let back = stats_from_json(&stats_to_json(&stats)).unwrap();
        assert_eq!(back, *stats);
        assert!(stats_from_json(&Json::Null).is_err());
        assert!(stats_from_json(&Json::Object(vec![])).is_err());
    }
}
