//! Supply-chain stress test: the Figure 7(b) model as an application,
//! built with the programmatic (plan-free) API to show the symbolic
//! layer directly.
//!
//! Per part: demand ~ Poisson(λ), supply ~ Exponential(mean 20λ). We ask
//! for the expected *underproduction* `E[demand − supply | demand >
//! supply]` and the probability of a shortfall. The condition compares
//! two random variables, so PIP's sampler falls back to rejection — but
//! it keeps drawing until it has the requested number of *useful*
//! samples, and its probability estimate comes free.
//!
//! Run with `cargo run --example supply_chain`.

use pip::prelude::*;

fn main() -> Result<()> {
    let cfg = SamplerConfig::fixed_samples(2000);
    let parts = [("widget", 4.0), ("gadget", 8.0), ("sprocket", 1.5)];

    println!("part       P[shortfall]   E[shortfall | shortfall]");
    for (name, lambda) in parts {
        // demand ~ Poisson(λ); supply ~ Exponential(rate 1/(20λ)).
        let demand = RandomVar::create(builtin::poisson(), &[lambda])?;
        let supply = RandomVar::create(builtin::exponential(), &[1.0 / (20.0 * lambda)])?;

        let shortfall = Equation::from(demand.clone()) - Equation::from(supply.clone());
        let condition =
            Conjunction::single(atoms::gt(Equation::from(demand), Equation::from(supply)));

        let r = expectation(&shortfall, &condition, true, &cfg, lambda as u64)?;
        println!(
            "{name:<10} {:>11.4}   {:>24.3}",
            r.probability, r.expectation
        );

        // The conditional shortfall is positive and below peak demand.
        assert!(r.expectation > 0.0 && r.expectation < lambda + 10.0 * lambda.sqrt() + 30.0);
        assert!(r.probability > 0.0 && r.probability < 0.2);
    }

    // Histogram of the widget shortfall, for visualization pipelines.
    let demand = RandomVar::create(builtin::poisson(), &[4.0])?;
    let supply = RandomVar::create(builtin::exponential(), &[1.0 / 80.0])?;
    let shortfall = Equation::from(demand.clone()) - Equation::from(supply.clone());
    let condition = Conjunction::single(atoms::gt(Equation::from(demand), Equation::from(supply)));
    let samples = expectation_samples(&shortfall, &condition, 2000, &cfg, 99)?;
    let hist = Histogram::from_samples(&samples, 10);
    println!("\nwidget shortfall histogram ({} samples):", hist.n);
    for i in 0..hist.counts.len() {
        let (lo, hi) = hist.edges(i);
        println!(
            "  [{lo:>6.2}, {hi:>6.2})  {}",
            "#".repeat((60.0 * hist.density(i)) as usize)
        );
    }
    Ok(())
}
