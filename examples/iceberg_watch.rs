//! Iceberg watch: the Figure 8 scenario as an application.
//!
//! 100 virtual ships in a synthetic North Atlantic; every iceberg's
//! position is Normal around its last sighting (drift grows with age)
//! and its danger decays exponentially. For each ship we sum
//! `danger × P[nearby]` over icebergs with `P[nearby] > 0.1%`.
//!
//! PIP evaluates the proximity probabilities **exactly** (each is a
//! product of two Normal interval probabilities — four CDF calls);
//! the Sample-First estimate at 1000 worlds is shown for contrast.
//!
//! Run with `cargo run --example iceberg_watch`.

use pip::prelude::*;
use pip::workloads::iceberg::{
    exact_threat, generate, relative_errors, threat_pip, threat_sf, IcebergConfig,
};

fn main() -> Result<()> {
    let cfg = IcebergConfig {
        n_ships: 40,
        n_icebergs: 150,
        ..Default::default()
    };
    let data = generate(&cfg);
    let sampler = SamplerConfig::default();
    let threshold = 0.001;

    let exact = exact_threat(&data, threshold);
    let pip = threat_pip(&data, threshold, &sampler)?;
    let sf = threat_sf(&data, threshold, 1000, 7)?;

    println!("ship   threat(PIP)   threat(SF@1000)   ground truth");
    for i in 0..8 {
        println!(
            "{:>4}   {:>11.4}   {:>15.4}   {:>12.4}",
            i, pip[i], sf[i], exact[i]
        );
    }

    let pip_err = relative_errors(&pip, &exact);
    let sf_err = relative_errors(&sf, &exact);
    let max = |v: &[f64]| v.iter().copied().fold(0.0, f64::max);
    println!(
        "\nmax relative error — PIP: {:.2e}, SF: {:.3}",
        max(&pip_err),
        max(&sf_err)
    );

    // PIP's answer is exact up to floating-point noise.
    assert!(max(&pip_err) < 1e-9);
    Ok(())
}
