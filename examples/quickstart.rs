//! Quickstart: the paper's running example (Examples 1.1–3.1) in SQL.
//!
//! Orders with uncertain prices, shipping with uncertain durations; the
//! query asks for the expected loss due to late deliveries to customers
//! named Joe (the product is free if not delivered within seven days).
//!
//! Run with `cargo run --example quickstart`.

use pip::prelude::*;

fn main() -> Result<()> {
    let db = Database::new();
    let cfg = SamplerConfig::default();

    // -- Schema: SYMBOLIC columns may hold random-variable equations.
    sql::run(
        &db,
        "CREATE TABLE orders (cust TEXT, ship_to TEXT, price SYMBOLIC)",
        &cfg,
    )?;
    sql::run(
        &db,
        "CREATE TABLE shipping (dest TEXT, duration SYMBOLIC)",
        &cfg,
    )?;

    // -- Uncertain data: create_variable allocates a fresh random
    //    variable per evaluation (CREATE_VARIABLE in the paper).
    sql::run(
        &db,
        "INSERT INTO orders VALUES \
         ('Joe', 'NY', create_variable('Normal', 100, 10)), \
         ('Bob', 'LA', create_variable('Normal', 50, 5))",
        &cfg,
    )?;
    sql::run(
        &db,
        "INSERT INTO shipping VALUES \
         ('NY', create_variable('Normal', 5, 2)), \
         ('LA', create_variable('Normal', 9, 2))",
        &cfg,
    )?;

    // -- The paper's headline query. The relational part is evaluated
    //    symbolically; sampling happens only inside expected_sum, with
    //    full knowledge of the expression being measured.
    let result = sql::run(
        &db,
        "SELECT expected_sum(price) FROM orders, shipping \
         WHERE ship_to = dest AND cust = 'Joe' AND duration >= 7",
        &cfg,
    )?;
    let loss = scalar_result(&result)?;
    println!("expected loss due to late deliveries to Joe: {loss:.2}");

    // -- Row confidences: P[duration >= 7] per destination, computed
    //    exactly via the Normal CDF (no sampling at all).
    let confs = sql::run(
        &db,
        "SELECT dest, conf() FROM shipping WHERE duration >= 7",
        &cfg,
    )?;
    println!("\nlate-shipping confidence per destination:");
    print!("{confs}");

    // Sanity: Joe ships to NY, P[N(5,2) >= 7] ≈ 0.159, so the loss is
    // roughly 100 × 0.159.
    assert!((loss - 15.87).abs() < 2.0, "loss {loss}");
    Ok(())
}
