//! Risk management: the paper's motivating application (Section I).
//!
//! A company encodes a revenue model — Poisson purchase growth per
//! customer — and a delivery-delay model in the database, then asks for
//! the profit lost to dissatisfied customers under a policy change
//! (cheaper but slower shipping). Queries *create* the correlation
//! between the two models; PIP's sampler detects that profit and
//! delivery are independent and integrates them separately.
//!
//! Run with `cargo run --example risk_management`.

use pip::prelude::*;
use pip::workloads::queries;
use pip::workloads::tpch::{generate, TpchConfig};

fn main() -> Result<()> {
    let data = generate(&TpchConfig {
        n_customers: 150,
        n_parts: 10,
        n_suppliers: 25,
        seed: 2026,
    });
    let cfg = SamplerConfig::default();

    // Expected revenue increase next year (Q1). The expression is affine
    // in Poisson variables with known means, so PIP computes it exactly
    // by linearity of expectation — zero samples.
    let q1 = queries::q1_pip(&data, &cfg)?;
    println!(
        "expected revenue increase:       {:>12.2}  (exact: {:.2})",
        q1.value,
        queries::q1_exact(&data)
    );

    // Policy change: slower shipping makes 10% of customers dissatisfied
    // on average. Lost profit = revenue of dissatisfied customers (Q3).
    for sel in [0.05, 0.10, 0.20] {
        let q3 = queries::q3_pip(&data, sel, &cfg)?;
        println!(
            "lost profit at {:>4.0}% dissatisfaction: {:>10.2}  (exact: {:.2})",
            sel * 100.0,
            q3.value,
            queries::q3_exact(&data, sel)
        );
    }

    // How long until all parts of an order arrive? (Q2: expected max of
    // per-supplier delivery dates.)
    let q2 = queries::q2_pip(&data, &cfg, 2000)?;
    println!("expected latest delivery (days): {:>10.2}", q2.value);

    // Sanity checks so the example doubles as a smoke test.
    let exact1 = queries::q1_exact(&data);
    assert!((q1.value - exact1).abs() / exact1 < 1e-9);
    Ok(())
}
